#include "engine/metrics.h"

#include <gtest/gtest.h>

#include "common/sim_time.h"

namespace pstore {
namespace {

TEST(WindowHistogramTest, EmptyQuantileIsZero) {
  WindowHistogram h;
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0);
  EXPECT_EQ(h.count(), 0);
}

TEST(WindowHistogramTest, SingleValue) {
  WindowHistogram h;
  h.Record(123 * kMillisecond);
  EXPECT_EQ(h.count(), 1);
  const SimTime p50 = h.ValueAtQuantile(0.5);
  EXPECT_LE(p50, 123 * kMillisecond);
  EXPECT_GE(p50, 100 * kMillisecond);
}

TEST(WindowHistogramTest, QuantileAccuracyWithinBucketResolution) {
  WindowHistogram h;
  for (int i = 0; i < 900; ++i) h.Record(10 * kMillisecond);
  for (int i = 0; i < 100; ++i) h.Record(800 * kMillisecond);
  const double p50_ms = ToSeconds(h.ValueAtQuantile(0.5)) * 1e3;
  const double p95_ms = ToSeconds(h.ValueAtQuantile(0.95)) * 1e3;
  EXPECT_NEAR(p50_ms, 10.0, 1.5);
  EXPECT_NEAR(p95_ms, 800.0, 100.0);
}

TEST(WindowHistogramTest, SubMillisecondLatenciesLandInFirstBucket) {
  WindowHistogram h;
  h.Record(50);  // 50 us
  EXPECT_LE(h.ValueAtQuantile(1.0), 100);
}

TEST(WindowHistogramTest, QuantileEdgeCases) {
  WindowHistogram empty;
  EXPECT_EQ(empty.ValueAtQuantile(0.0), 0);
  EXPECT_EQ(empty.ValueAtQuantile(1.0), 0);

  WindowHistogram h;
  h.Record(10 * kMillisecond);
  h.Record(400 * kMillisecond);
  // q = 0.0 still reports the smallest recorded sample's bucket (its
  // upper edge, within the ~9% bucket resolution), not 0.
  EXPECT_GT(h.ValueAtQuantile(0.0), 0);
  EXPECT_LE(h.ValueAtQuantile(0.0), 11 * kMillisecond);
  // q = 1.0 is capped at the true maximum, not the bucket's upper edge.
  EXPECT_EQ(h.ValueAtQuantile(1.0), 400 * kMillisecond);
  // Out-of-range quantiles clamp instead of reading out of bounds.
  EXPECT_EQ(h.ValueAtQuantile(-0.5), h.ValueAtQuantile(0.0));
  EXPECT_EQ(h.ValueAtQuantile(2.0), h.ValueAtQuantile(1.0));
}

TEST(WindowHistogramTest, BeyondTopBucketStaysBoundedAndMonotone) {
  WindowHistogram h;
  // ~28 hours: far past the top bucket's edge. The sample lands in the
  // last bucket; quantiles stay within [top-bucket range, observed max]
  // instead of overflowing or crashing.
  const SimTime huge = 100000 * kSecond;
  h.Record(huge);
  const SimTime p50 = h.ValueAtQuantile(0.5);
  EXPECT_EQ(p50, h.ValueAtQuantile(1.0));
  EXPECT_GT(p50, FromSeconds(5.0));
  EXPECT_LE(p50, huge);
}

TEST(WindowHistogramTest, BucketCountersSaturateInsteadOfWrapping) {
  WindowHistogram h;
  // Overfill one low-latency bucket past uint32_t range, then add a
  // smaller high-latency population. If the bucket wrapped (the pre-fix
  // behavior), the low bucket would hold ~1 sample and the median would
  // jump to the 800 ms population; saturation keeps it at the low edge.
  const int64_t kMax = 4294967295LL;  // UINT32_MAX
  h.Record(1 * kMillisecond, kMax);
  h.Record(1 * kMillisecond, 2);  // would wrap the bucket to 1
  h.Record(800 * kMillisecond, 100);
  EXPECT_EQ(h.count(), kMax + 2 + 100);
  EXPECT_LE(h.ValueAtQuantile(0.5), 2 * kMillisecond);
  // The true maximum is still reported even though its bucket is tiny
  // relative to the saturated one.
  EXPECT_EQ(h.ValueAtQuantile(1.0), 800 * kMillisecond);
}

TEST(WindowHistogramTest, QuantilesSurviveBucketSaturation) {
  // Regression: ValueAtQuantile derived its rank target from the exact
  // 64-bit count_ but accumulated `seen` over the saturating uint32
  // buckets. Once a bucket saturated, count_ > sum(buckets) and
  // mid-range quantile targets exceeded the total stored mass, so every
  // quantile silently collapsed to the observed maximum. The target must
  // clamp to the stored mass.
  WindowHistogram h;
  const int64_t kMax = 4294967295LL;  // UINT32_MAX
  h.Record(1 * kMillisecond, kMax);
  h.Record(1 * kMillisecond, kMax);  // bucket saturates; count_ = 2*kMax
  h.Record(800 * kMillisecond, 10);
  // p50's rank (~kMax + 5) exceeds the stored mass (kMax + 10); pre-fix
  // this returned 800 ms. The overwhelming majority of samples are 1 ms.
  EXPECT_LE(h.ValueAtQuantile(0.5), 2 * kMillisecond);
  EXPECT_LE(h.ValueAtQuantile(0.95), 2 * kMillisecond);
  // The true maximum is still reachable at the top.
  EXPECT_EQ(h.ValueAtQuantile(1.0), 800 * kMillisecond);
}

TEST(WindowHistogramTest, MergeMatchesSingleHistogram) {
  WindowHistogram merged;
  WindowHistogram a;
  WindowHistogram b;
  for (int i = 0; i < 300; ++i) {
    merged.Record(10 * kMillisecond);
    a.Record(10 * kMillisecond);
  }
  for (int i = 0; i < 100; ++i) {
    merged.Record(700 * kMillisecond);
    b.Record(700 * kMillisecond);
  }
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), merged.count());
  for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(a.ValueAtQuantile(q), merged.ValueAtQuantile(q)) << "q " << q;
  }
}

TEST(MetricsCollectorTest, MergeFromMatchesSingleCollector) {
  // The sharded engine's per-shard collectors fold into the main one;
  // the fold must be indistinguishable from having recorded everything
  // in one collector, including unavailable counts and window extension.
  MetricsCollector whole(1.0);
  MetricsCollector main_part(1.0);
  MetricsCollector shard_part(1.0);
  for (int i = 0; i < 40; ++i) {
    const SimTime at = i * 100 * kMillisecond;
    whole.RecordTxn(at, at + 20 * kMillisecond);
    if (i % 2 == 0) {
      main_part.RecordTxn(at, at + 20 * kMillisecond);
    } else {
      shard_part.RecordTxn(at, at + 20 * kMillisecond);
    }
  }
  whole.RecordUnavailable(4500 * kMillisecond);
  shard_part.RecordUnavailable(4500 * kMillisecond);
  main_part.MergeFrom(shard_part);
  const auto expected = whole.Finalize(5 * kSecond);
  const auto merged = main_part.Finalize(5 * kSecond);
  ASSERT_EQ(merged.size(), expected.size());
  for (size_t w = 0; w < expected.size(); ++w) {
    EXPECT_EQ(merged[w].submitted, expected[w].submitted) << "window " << w;
    EXPECT_EQ(merged[w].completed, expected[w].completed) << "window " << w;
    EXPECT_EQ(merged[w].unavailable, expected[w].unavailable) << "window " << w;
    EXPECT_EQ(merged[w].p50_ms, expected[w].p50_ms) << "window " << w;
    EXPECT_EQ(merged[w].p99_ms, expected[w].p99_ms) << "window " << w;
  }
}

TEST(WindowHistogramTest, NonPositiveWeightIsIgnored) {
  WindowHistogram h;
  h.Record(10 * kMillisecond, 0);
  h.Record(10 * kMillisecond, -5);
  EXPECT_EQ(h.count(), 0);
}

TEST(MetricsCollectorTest, ThroughputPerWindow) {
  MetricsCollector metrics(1.0);
  // Three txns complete in window 0, one in window 2.
  metrics.RecordTxn(0, 100 * kMillisecond);
  metrics.RecordTxn(0, 200 * kMillisecond);
  metrics.RecordTxn(kSecond - 1, kSecond - 1);
  metrics.RecordTxn(kSecond / 2, 2 * kSecond + 1);
  const auto windows = metrics.Finalize(3 * kSecond);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].completed, 3);
  EXPECT_EQ(windows[0].submitted, 4);
  EXPECT_EQ(windows[1].completed, 0);
  EXPECT_EQ(windows[2].completed, 1);
}

TEST(MetricsCollectorTest, LatencyLandsInCompletionWindow) {
  MetricsCollector metrics(1.0);
  // Submitted in window 0, completes in window 4 with 4.2 s latency.
  metrics.RecordTxn(800 * kMillisecond, 5 * kSecond);
  const auto windows = metrics.Finalize(6 * kSecond);
  ASSERT_EQ(windows.size(), 6u);
  EXPECT_EQ(windows[5].completed, 1);
  EXPECT_NEAR(windows[5].p99_ms, 4200.0, 400.0);
}

TEST(MetricsCollectorTest, MachineStepSeries) {
  MetricsCollector metrics(1.0);
  metrics.RecordMachines(0, 2);
  metrics.RecordMachines(2 * kSecond + kSecond / 2, 5);
  const auto windows = metrics.Finalize(5 * kSecond);
  ASSERT_EQ(windows.size(), 5u);
  EXPECT_EQ(windows[0].machines, 2);
  EXPECT_EQ(windows[1].machines, 2);
  EXPECT_EQ(windows[2].machines, 5);  // step within the window
  EXPECT_EQ(windows[4].machines, 5);
}

TEST(MetricsCollectorTest, AverageMachinesTimeWeighted) {
  MetricsCollector metrics(1.0);
  metrics.RecordMachines(0, 2);
  metrics.RecordMachines(6 * kSecond, 4);
  // 6 s at 2 machines + 4 s at 4 machines over 10 s = 2.8.
  EXPECT_NEAR(metrics.AverageMachines(10 * kSecond), 2.8, 1e-9);
}

TEST(MetricsCollectorTest, MigrationFlagPerWindow) {
  MetricsCollector metrics(1.0);
  metrics.RecordMigrationActive(kSecond, true);
  metrics.RecordMigrationActive(3 * kSecond, false);
  const auto windows = metrics.Finalize(5 * kSecond);
  EXPECT_FALSE(windows[0].migrating);
  EXPECT_TRUE(windows[1].migrating);
  EXPECT_TRUE(windows[2].migrating);
  EXPECT_FALSE(windows[4].migrating);
}

TEST(MetricsCollectorTest, SlaViolationCounting) {
  MetricsCollector metrics(1.0);
  // Window 0: fast txns. Window 1: p99 over 500 ms but p50 fine.
  for (int i = 0; i < 100; ++i) {
    metrics.RecordTxn(0, 10 * kMillisecond);
  }
  for (int i = 0; i < 98; ++i) {
    metrics.RecordTxn(kSecond, kSecond + 20 * kMillisecond);
  }
  for (int i = 0; i < 2; ++i) {
    metrics.RecordTxn(kSecond, kSecond + 900 * kMillisecond);
  }
  const auto windows = metrics.Finalize(2 * kSecond);
  const SlaViolations violations =
      MetricsCollector::CountViolations(windows, 500.0);
  EXPECT_EQ(violations.p50, 0);
  EXPECT_EQ(violations.p95, 0);
  EXPECT_EQ(violations.p99, 1);
}

TEST(MetricsCollectorTest, UnavailableTxnsCountedPerWindow) {
  MetricsCollector metrics(1.0);
  metrics.RecordTxn(0, 10 * kMillisecond);
  metrics.RecordUnavailable(100 * kMillisecond);
  metrics.RecordUnavailable(kSecond + 1);
  const auto windows = metrics.Finalize(2 * kSecond);
  ASSERT_EQ(windows.size(), 2u);
  // Fast-failed txns count as submitted but never complete, so they
  // leave the latency percentiles untouched.
  EXPECT_EQ(windows[0].submitted, 2);
  EXPECT_EQ(windows[0].completed, 1);
  EXPECT_EQ(windows[0].unavailable, 1);
  EXPECT_EQ(windows[1].unavailable, 1);
  EXPECT_EQ(windows[1].completed, 0);
}

TEST(MetricsCollectorTest, AttributionSplitsByFaultAndMigration) {
  MetricsCollector metrics(1.0);
  // Four windows, all violating at p99: 0 baseline, 1 migrating,
  // 2 fault-only, 3 fault AND migrating (fault wins).
  for (SimTime w = 0; w < 4; ++w) {
    for (int i = 0; i < 10; ++i) {
      metrics.RecordTxn(w * kSecond, w * kSecond + 900 * kMillisecond);
    }
  }
  metrics.RecordMigrationActive(kSecond, true);
  metrics.RecordMigrationActive(2 * kSecond, false);
  metrics.RecordMigrationActive(3 * kSecond, true);
  metrics.RecordFaultActive(2 * kSecond, true);
  const auto windows = metrics.Finalize(5 * kSecond);
  const SlaAttribution attribution =
      MetricsCollector::AttributeViolations(windows, 500.0);
  EXPECT_EQ(attribution.total.p99, 4);
  EXPECT_EQ(attribution.baseline.p99, 1);
  EXPECT_EQ(attribution.during_migration.p99, 1);
  EXPECT_EQ(attribution.during_fault.p99, 2);
  EXPECT_EQ(attribution.during_fault.p99 + attribution.during_migration.p99 +
                attribution.baseline.p99,
            attribution.total.p99);
}

TEST(MetricsCollectorTest, IntraWindowMigrationIsNotDropped) {
  // Regression: a migration that starts and finishes inside one metrics
  // window used to leave every window's `migrating` flag false, because
  // Finalize only sampled the step series at window boundaries. Table
  // 2's during_migration attribution then under-counted short moves.
  MetricsCollector metrics(1.0);
  metrics.RecordMigrationActive(kSecond + 200 * kMillisecond, true);
  metrics.RecordMigrationActive(kSecond + 800 * kMillisecond, false);
  const auto windows = metrics.Finalize(3 * kSecond);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_FALSE(windows[0].migrating);
  EXPECT_TRUE(windows[1].migrating);
  EXPECT_FALSE(windows[2].migrating);
}

TEST(MetricsCollectorTest, IntraWindowFaultIsNotDropped) {
  MetricsCollector metrics(1.0);
  metrics.RecordFaultActive(2 * kSecond + 100 * kMillisecond, true);
  metrics.RecordFaultActive(2 * kSecond + 900 * kMillisecond, false);
  const auto windows = metrics.Finalize(4 * kSecond);
  ASSERT_EQ(windows.size(), 4u);
  EXPECT_FALSE(windows[1].fault);
  EXPECT_TRUE(windows[2].fault);
  EXPECT_FALSE(windows[3].fault);
}

TEST(MetricsCollectorTest, IntraWindowTogglesFeedAttribution) {
  MetricsCollector metrics(1.0);
  // A violating window whose entire migration falls inside it must be
  // attributed to during_migration, not baseline.
  for (int i = 0; i < 10; ++i) {
    metrics.RecordTxn(0, 900 * kMillisecond);
  }
  metrics.RecordMigrationActive(200 * kMillisecond, true);
  metrics.RecordMigrationActive(700 * kMillisecond, false);
  const auto windows = metrics.Finalize(kSecond);
  const SlaAttribution attribution =
      MetricsCollector::AttributeViolations(windows, 500.0);
  EXPECT_EQ(attribution.total.p99, 1);
  EXPECT_EQ(attribution.during_migration.p99, 1);
  EXPECT_EQ(attribution.baseline.p99, 0);
}

TEST(MetricsCollectorTest, FullOutageWindowsViolateEveryPercentile) {
  // Regression: windows with completed == 0 used to be skipped by both
  // SLA counters even when they had submissions — a total outage (every
  // arrival rejected kUnavailable, e.g. the node owning all buckets is
  // down) was scored as zero violations, the best possible SLA. Such
  // windows have no latency samples because nothing completed, which is
  // worse than any latency, not better.
  MetricsCollector metrics(1.0);
  for (int i = 0; i < 50; ++i) {
    metrics.RecordUnavailable(100 * kMillisecond);
  }
  metrics.RecordFaultActive(0, true);
  const auto windows = metrics.Finalize(kSecond);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].submitted, 50);
  EXPECT_EQ(windows[0].unavailable, 50);
  EXPECT_EQ(windows[0].completed, 0);
  const SlaViolations violations =
      MetricsCollector::CountViolations(windows);
  EXPECT_EQ(violations.p50, 1);
  EXPECT_EQ(violations.p95, 1);
  EXPECT_EQ(violations.p99, 1);
  // The outage happened under an active fault, so attribution lands in
  // the fault bucket (not baseline).
  const SlaAttribution attribution =
      MetricsCollector::AttributeViolations(windows);
  EXPECT_EQ(attribution.total.p99, 1);
  EXPECT_EQ(attribution.during_fault.p99, 1);
  EXPECT_EQ(attribution.baseline.p99, 0);
}

TEST(MetricsCollectorTest, IdleWindowsAreStillSkipped) {
  // The outage rule only fires on submitted > 0: a window with no
  // arrivals at all (overnight lull) keeps not violating.
  MetricsCollector metrics(1.0);
  metrics.RecordTxn(2 * kSecond, 2 * kSecond + 10 * kMillisecond);
  const auto windows = metrics.Finalize(3 * kSecond);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].submitted, 0);
  const SlaViolations violations =
      MetricsCollector::CountViolations(windows);
  EXPECT_EQ(violations.p50 + violations.p95 + violations.p99, 0);
}

TEST(MetricsCollectorTest, AverageMachinesFirstStepAfterZero) {
  MetricsCollector metrics(1.0);
  // No sample at t=0: the first step's value extends back to the start
  // of the run, matching how Finalize fills early windows.
  metrics.RecordMachines(4 * kSecond, 2);
  metrics.RecordMachines(8 * kSecond, 4);
  // 8 s at 2 machines + 2 s at 4 machines over 10 s = 2.4.
  EXPECT_NEAR(metrics.AverageMachines(10 * kSecond), 2.4, 1e-9);
  const auto windows = metrics.Finalize(10 * kSecond);
  EXPECT_EQ(windows[0].machines, 2);
  EXPECT_EQ(windows[8].machines, 4);
}

TEST(MetricsCollectorTest, EmptyWindowsDoNotViolate) {
  MetricsCollector metrics(1.0);
  const auto windows = metrics.Finalize(10 * kSecond);
  const SlaViolations violations =
      MetricsCollector::CountViolations(windows);
  EXPECT_EQ(violations.p50 + violations.p95 + violations.p99, 0);
}

}  // namespace
}  // namespace pstore
