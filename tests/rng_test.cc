#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

namespace pstore {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedUniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, BoundedUniformCoversAllResidues) {
  Rng rng(7);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.NextUint64(8)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);   // expectation 1000, loose bound
    EXPECT_LT(c, 1200);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, DoubleRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, GaussianMomentsAreStandard) {
  Rng rng(42);
  const int n = 200000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(42);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double e = rng.NextExponential(2.5);
    EXPECT_GE(e, 0.0);
    sum += e;
  }
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, MeanAndNonNegativity) {
  const double mean = GetParam();
  Rng rng(99);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const int64_t v = rng.NextPoisson(mean);
    EXPECT_GE(v, 0);
    sum += static_cast<double>(v);
  }
  // Poisson sd is sqrt(mean); allow 6 standard errors.
  const double tolerance = 6.0 * std::sqrt(mean / n) + 1e-9;
  EXPECT_NEAR(sum / n, mean, tolerance);
}

INSTANTIATE_TEST_SUITE_P(SmallAndLargeMeans, PoissonMeanTest,
                         ::testing::Values(0.1, 1.0, 5.0, 29.0, 35.0, 120.0,
                                           1500.0));

TEST(RngTest, PoissonZeroMean) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextPoisson(0.0), 0);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(5);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

}  // namespace
}  // namespace pstore
