#include "controller/load_balancer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/time_series.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/metrics.h"
#include "engine/txn_executor.h"
#include "engine/workload_driver.h"
#include "migration/squall_migrator.h"
#include "ycsb/ycsb_workload.h"

namespace pstore {
namespace {

ClusterOptions BalancerCluster() {
  ClusterOptions options;
  options.partitions_per_node = 3;
  options.max_nodes = 2;
  options.initial_nodes = 2;
  options.num_buckets = 300;
  return options;
}

struct SkewRun {
  double imbalance = 0.0;   // hottest/mean access ratio at the end
  int64_t buckets_moved = 0;
  double worst_p99_ms = 0.0;
};

SkewRun RunSkewedWorkload(bool with_balancer, double theta,
                          double offered_rate) {
  Cluster cluster(BalancerCluster());
  MetricsCollector metrics(1.0);
  TxnExecutor executor(&cluster, &metrics, ExecutorOptions{});
  PSTORE_CHECK_OK(ycsb::Workload::RegisterProcedures(&executor));
  ycsb::YcsbWorkloadOptions workload_options;
  workload_options.record_count = 60000;
  workload_options.zipf_theta = theta;
  workload_options.mix = ycsb::Mix::kB;
  ycsb::Workload workload(workload_options);
  PSTORE_CHECK_OK(workload.LoadInitialData(&cluster));

  EventLoop loop;
  MigrationOptions migration_options;
  MigrationManager migration(&loop, &cluster, &metrics, migration_options);

  std::unique_ptr<HotSpotBalancer> balancer;
  if (with_balancer) {
    LoadBalancerOptions options;
    options.slot_sim_seconds = 1.0;
    options.sample_slots = 10;
    balancer = std::make_unique<HotSpotBalancer>(&loop, &cluster, &migration,
                                                 options);
    balancer->Start();
  }

  TimeSeries flat(1.0, std::vector<double>(300, offered_rate));
  DriverOptions driver_options;
  driver_options.slot_sim_seconds = 1.0;
  driver_options.rate_factor = 1.0;
  driver_options.seed = 77;
  WorkloadDriver driver(
      &loop, &executor, flat,
      [&workload](Rng& rng) { return workload.NextTransaction(rng); },
      driver_options);
  const SimTime end = FromSeconds(300.0);
  driver.Start(end);
  loop.RunUntil(end);

  SkewRun result;
  int64_t max_accesses = 0;
  int64_t total = 0;
  for (int p = 0; p < cluster.total_active_partitions(); ++p) {
    const int64_t a = cluster.partition(p).TotalAccesses();
    max_accesses = std::max(max_accesses, a);
    total += a;
  }
  // Note: access counters were reset at each balancer sample, so for the
  // balancer run this reflects the final window only — which is what we
  // want (post-balancing skew).
  result.imbalance = total == 0
                         ? 1.0
                         : static_cast<double>(max_accesses) /
                               (static_cast<double>(total) /
                                cluster.total_active_partitions());
  result.buckets_moved =
      balancer == nullptr ? 0 : balancer->buckets_moved();
  const auto windows = metrics.Finalize(end);
  for (size_t w = 30; w < windows.size(); ++w) {
    result.worst_p99_ms = std::max(result.worst_p99_ms, windows[w].p99_ms);
  }
  return result;
}

TEST(HotSpotBalancerTest, IdleOnUniformLoad) {
  const SkewRun run = RunSkewedWorkload(true, 0.0, 300.0);
  EXPECT_EQ(run.buckets_moved, 0);
}

TEST(HotSpotBalancerTest, MovesBucketsUnderSkew) {
  const SkewRun run = RunSkewedWorkload(true, 1.3, 300.0);
  EXPECT_GT(run.buckets_moved, 0);
}

TEST(HotSpotBalancerTest, ReducesTailLatencyUnderSkew) {
  // Offered rate near the 2-node knee: the hot partition saturates
  // without balancing; with balancing the load spreads and the tail
  // recovers. (2 nodes x 3 partitions at ~73 txn/s per partition.)
  const double rate = 270.0;
  const SkewRun without = RunSkewedWorkload(false, 1.2, rate);
  const SkewRun with = RunSkewedWorkload(true, 1.2, rate);
  EXPECT_GT(with.buckets_moved, 0);
  EXPECT_LT(with.worst_p99_ms, without.worst_p99_ms);
}

TEST(HotSpotBalancerTest, ImbalanceMetricTracked) {
  Cluster cluster(BalancerCluster());
  EventLoop loop;
  LoadBalancerOptions options;
  options.slot_sim_seconds = 1.0;
  options.sample_slots = 1;
  HotSpotBalancer balancer(&loop, &cluster, nullptr, options);
  // Partition 0 is 3x hotter than the mean.
  cluster.partition(0).RecordAccess(cluster.BucketsOnPartition(0)[0]);
  cluster.partition(0).RecordAccess(cluster.BucketsOnPartition(0)[0]);
  cluster.partition(0).RecordAccess(cluster.BucketsOnPartition(0)[1]);
  for (int p = 1; p < 6; ++p) {
    cluster.partition(p).RecordAccess(cluster.BucketsOnPartition(p)[0]);
  }
  balancer.Start();
  loop.RunUntil(FromSeconds(1.5));
  EXPECT_GT(balancer.last_imbalance(), 1.5);
}

}  // namespace
}  // namespace pstore
