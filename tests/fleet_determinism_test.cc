// Fleet determinism golden test: one simulated fleet must render
// byte-identical CSV no matter how many worker threads the forecast
// fan-out and per-tenant runs are spread over (the contract pstore_fleet
// advertises for --threads).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "fleet/fleet_simulator.h"
#include "fleet/tenant.h"

namespace pstore {
namespace fleet {
namespace {

std::vector<TenantSpec> GoldenMix() {
  TenantMixOptions mix;
  mix.b2w_tenants = 10;
  mix.wikipedia_tenants = 5;
  mix.ycsb_tenants = 5;
  mix.step_tenants = 5;
  mix.days = 2;
  mix.seed = 17;
  return MakeTenantMix(mix);
}

FleetOptions GoldenOptions() {
  FleetOptions options;
  options.eval_begin = 1440;  // evaluate the second day
  return options;
}

std::string RunCsv(FleetMode mode, int threads) {
  FleetSimulator simulator(GoldenOptions(), GoldenMix());
  ThreadPool pool(threads);
  const StatusOr<FleetResult> result = simulator.Simulate(mode, &pool);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return std::string();
  return FleetCsvRows(*result);
}

TEST(FleetDeterminismTest, FleetModeCsvIdenticalAcrossThreadCounts) {
  const std::string serial = RunCsv(FleetMode::kFleet, 1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(RunCsv(FleetMode::kFleet, 8), serial);
  EXPECT_EQ(RunCsv(FleetMode::kFleet, 3), serial);
}

TEST(FleetDeterminismTest, DedicatedModeCsvIdenticalAcrossThreadCounts) {
  const std::string serial = RunCsv(FleetMode::kDedicated, 1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(RunCsv(FleetMode::kDedicated, 8), serial);
}

TEST(FleetDeterminismTest, NullPoolMatchesThreadPool) {
  FleetSimulator simulator(GoldenOptions(), GoldenMix());
  const StatusOr<FleetResult> serial =
      simulator.Simulate(FleetMode::kFleet, nullptr);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  EXPECT_EQ(FleetCsvRows(*serial), RunCsv(FleetMode::kFleet, 8));
}

TEST(FleetDeterminismTest, CsvCarriesBothBlocks) {
  const std::string csv = RunCsv(FleetMode::kFleet, 2);
  EXPECT_NE(csv.find("mode,tenants"), std::string::npos);
  EXPECT_NE(csv.find("tenant,name,family"), std::string::npos);
  EXPECT_NE(csv.find("\n\n"), std::string::npos);  // blank separator line
}

}  // namespace
}  // namespace fleet
}  // namespace pstore
