#include "engine/sharded_loop.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "b2w/procedures.h"
#include "b2w/schema.h"
#include "b2w/workload.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/time_series.h"
#include "controller/predictive_controller.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/metrics.h"
#include "engine/partition.h"
#include "engine/table.h"
#include "engine/transaction.h"
#include "engine/txn_executor.h"
#include "engine/workload_driver.h"
#include "fault/fault_injector.h"
#include "fault/fault_schedule.h"
#include "migration/squall_migrator.h"
#include "prediction/naive_models.h"
#include "prediction/online_predictor.h"

namespace pstore {
namespace {

// ---- ShardedEngine mechanics -----------------------------------------------

TEST(ShardedEngineTest, PostedTasksRunFifoPerShard) {
  EventLoop loop;
  ShardedEngine engine(&loop, 3, 2);
  EXPECT_FALSE(engine.serial());
  std::vector<std::vector<int>> ran(3);
  for (int i = 0; i < 4; ++i) {
    for (int shard = 0; shard < 3; ++shard) {
      engine.Post(shard, i * kSecond,
                  [&ran, shard, i] { ran[static_cast<size_t>(shard)].push_back(i); });
    }
  }
  EXPECT_FALSE(engine.idle());
  engine.Flush();
  EXPECT_TRUE(engine.idle());
  for (int shard = 0; shard < 3; ++shard) {
    EXPECT_EQ(ran[static_cast<size_t>(shard)], (std::vector<int>{0, 1, 2, 3}))
        << "shard " << shard;
  }
  EXPECT_EQ(engine.tasks_run(), 12);
  EXPECT_EQ(engine.barriers(), 1);
}

TEST(ShardedEngineTest, SingleThreadEngineRunsInline) {
  EventLoop loop;
  ShardedEngine engine(&loop, 4, 1);
  EXPECT_TRUE(engine.serial());
  int ran = 0;
  engine.Post(2, 0, [&ran] { ++ran; });
  EXPECT_EQ(ran, 0);  // deferred until the barrier even when inline
  engine.Flush();
  EXPECT_EQ(ran, 1);
}

TEST(ShardedEngineTest, MailboxDeliversInTimeSourceSeqOrder) {
  EventLoop loop;
  ShardedEngine engine(&loop, 4, 2);
  std::vector<std::string> delivered;
  // Shard 2 sends (when=30, seq 0) then (when=10, seq 1); shard 1 sends
  // (when=10, seq 0) then (when=20, seq 1). The barrier must deliver by
  // (when, source, seq): s1@10, s2@10, s1@20, s2@30.
  engine.Post(2, 0, [&engine, &delivered] {
    engine.Send(2, ShardedEngine::kControlPlane, 30,
                [&delivered] { delivered.push_back("s2@30"); });
    engine.Send(2, ShardedEngine::kControlPlane, 10,
                [&delivered] { delivered.push_back("s2@10"); });
  });
  engine.Post(1, 0, [&engine, &delivered] {
    engine.Send(1, ShardedEngine::kControlPlane, 10,
                [&delivered] { delivered.push_back("s1@10"); });
    engine.Send(1, ShardedEngine::kControlPlane, 20,
                [&delivered] { delivered.push_back("s1@20"); });
  });
  engine.Flush();
  EXPECT_EQ(delivered,
            (std::vector<std::string>{"s1@10", "s2@10", "s1@20", "s2@30"}));
  EXPECT_EQ(engine.messages_delivered(), 4);
}

TEST(ShardedEngineTest, ShardToShardMessagesSettleWithinOneBarrier) {
  EventLoop loop;
  ShardedEngine engine(&loop, 3, 2);
  std::vector<std::string> hops;
  // One posted task triggers a two-hop relay (0 -> 1 -> 2); a single
  // Flush must run the fixpoint until both relayed tasks executed.
  engine.Post(0, 0, [&engine, &hops] {
    engine.Send(0, 1, 5, [&engine, &hops] {
      hops.push_back("hop1");
      engine.Send(1, 2, 6, [&hops] { hops.push_back("hop2"); });
    });
  });
  engine.Flush();
  EXPECT_EQ(hops, (std::vector<std::string>{"hop1", "hop2"}));
  EXPECT_TRUE(engine.idle());
  EXPECT_EQ(engine.tasks_run(), 3);  // the post plus two re-enqueued hops
  EXPECT_EQ(engine.messages_delivered(), 2);
  EXPECT_EQ(engine.barriers(), 1);
}

TEST(ShardedEngineTest, IdleFlushIsFree) {
  EventLoop loop;
  ShardedEngine engine(&loop, 2, 2);
  engine.Flush();
  engine.Flush();
  EXPECT_EQ(engine.barriers(), 0);
}

TEST(ShardedEngineTest, BarrierHookDrainsShardsBeforeControlEvents) {
  EventLoop loop;
  ShardedEngine engine(&loop, 2, 2);
  engine.InstallBarrierHook();
  std::vector<std::string> order;
  engine.Post(0, 5, [&order] { order.push_back("shard"); });
  loop.ScheduleAt(10, [&order] { order.push_back("control"); });
  loop.RunUntil(20);
  EXPECT_EQ(order, (std::vector<std::string>{"shard", "control"}));
  EXPECT_EQ(engine.barriers(), 1);
}

// ---- Full-stack byte equality ----------------------------------------------

FaultEvent MakeFault(double at_seconds, FaultKind kind, int node) {
  FaultEvent event;
  event.at = FromSeconds(at_seconds);
  event.kind = kind;
  event.node = node;
  return event;
}

// Serializes every window plus the executor/migration counters with full
// float precision, so two runs compare bit-for-bit.
std::string Snapshot(const std::vector<WindowStats>& windows,
                     const TxnExecutor& executor,
                     const MigrationManager& migration) {
  std::string out;
  char buf[256];
  for (const WindowStats& w : windows) {
    std::snprintf(buf, sizeof(buf),
                  "%lld/%lld/%lld %.17g/%.17g/%.17g m%d g%d f%d\n",
                  static_cast<long long>(w.submitted),
                  static_cast<long long>(w.completed),
                  static_cast<long long>(w.unavailable), w.p50_ms, w.p95_ms,
                  w.p99_ms, w.machines, w.migrating ? 1 : 0, w.fault ? 1 : 0);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "ctr %lld/%lld/%lld/%lld/%lld mig %lld/%lld/%lld\n",
                static_cast<long long>(executor.submitted_count()),
                static_cast<long long>(executor.committed_count()),
                static_cast<long long>(executor.aborted_count()),
                static_cast<long long>(executor.distributed_count()),
                static_cast<long long>(executor.unavailable_count()),
                static_cast<long long>(migration.reconfigurations_completed()),
                static_cast<long long>(migration.reconfigurations_failed()),
                static_cast<long long>(migration.chunk_retries().value()));
  out += buf;
  return out;
}

// Runs the full stack — B2W workload, oracle predictive controller,
// migration, a mid-run crash — with the engine sharded across `threads`
// workers (1 = the classic serial path, no ShardedEngine at all).
std::string RunStack(int threads) {
  ClusterOptions cluster_options;
  cluster_options.partitions_per_node = 6;
  cluster_options.max_nodes = 10;
  cluster_options.initial_nodes = 2;
  cluster_options.num_buckets = 1200;
  Cluster cluster(cluster_options);

  MetricsCollector metrics(1.0);
  TxnExecutor executor(&cluster, &metrics, ExecutorOptions{});
  PSTORE_CHECK_OK(b2w::RegisterProcedures(&executor));
  b2w::B2wWorkloadOptions workload_options;
  workload_options.cart_pool = 20000;
  workload_options.checkout_pool = 8000;
  b2w::Workload workload(workload_options);
  PSTORE_CHECK_OK(workload.LoadInitialData(&cluster));

  EventLoop loop;
  std::unique_ptr<ShardedEngine> engine;
  if (threads > 1) {
    engine = std::make_unique<ShardedEngine>(&loop, cluster_options.max_nodes,
                                             threads);
    executor.EnableSharding(engine.get());
    engine->InstallBarrierHook();
  }

  MigrationOptions migration_options;
  migration_options.net_rate_bytes_per_sec = 200e3;
  migration_options.chunk_spacing_seconds = 0.5;
  migration_options.chunk_bytes = 256 * 1024;
  migration_options.extract_rate_bytes_per_sec = 20e6;
  migration_options.max_chunk_retries = 3;
  migration_options.retry_backoff_seconds = 0.5;
  MigrationManager migration(&loop, &cluster, &metrics, migration_options);

  // 40 slots of 6 s: 300 txn/s stepping to 900 at t = 120 s.
  TimeSeries trace(6.0);
  for (int i = 0; i < 40; ++i) trace.Append(i < 20 ? 300.0 : 900.0);

  DriverOptions driver_options;
  driver_options.slot_sim_seconds = 6.0;
  driver_options.rate_factor = 1.0;
  driver_options.seed = 21;
  WorkloadDriver driver(
      &loop, &executor, trace,
      [&workload](Rng& rng) { return workload.NextTransaction(rng); },
      driver_options);
  metrics.RecordMachines(0, cluster.active_nodes());

  FaultInjector injector(&loop, &cluster, &metrics,
                         FaultSchedule::Scripted({
                             MakeFault(50.0, FaultKind::kNodeCrash, 1),
                             MakeFault(70.0, FaultKind::kNodeRecover, 1),
                         }));
  migration.set_fault_hook(&injector);
  injector.Arm();

  OnlinePredictorOptions predictor_options;
  predictor_options.inflation = 1.1;
  predictor_options.refit_interval = 1u << 30;
  predictor_options.training_window = 10;
  OnlinePredictor oracle(std::make_unique<OraclePredictor>(trace),
                         predictor_options);
  PSTORE_CHECK_OK(oracle.Warmup(trace.Slice(0, 1)));

  PredictiveControllerOptions controller_options;
  controller_options.slot_sim_seconds = 6.0;
  controller_options.plan_slot_factor = 5;
  controller_options.horizon_plan_slots = 20;
  controller_options.planner_params.target_rate_per_node = 285.0;
  controller_options.planner_params.max_rate_per_node = 350.0;
  controller_options.planner_params.partitions_per_node = 6;
  controller_options.planner_params.d_slots =
      SingleThreadFullMigrationSeconds(cluster.TotalDataBytes(),
                                       migration_options) /
      30.0;
  PredictiveController controller(&loop, &cluster, &executor, &migration,
                                  &oracle, controller_options);
  controller.Start();

  const SimTime end = 40 * 6 * kSecond;
  driver.Start(end);
  loop.RunUntil(end);
  if (engine != nullptr) {
    engine->Flush();
    executor.FoldShardStats();
  }
  return Snapshot(metrics.Finalize(end), executor, migration);
}

// The tentpole's contract: sharded execution reproduces the serial
// golden run bit-for-bit, for any worker count.
TEST(ShardedEngineEquivalenceTest, FullStackMatchesSerialGoldenRun) {
  const std::string serial = RunStack(1);
  const std::string two = RunStack(2);
  const std::string eight = RunStack(8);
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
  // Sanity: the run did real work (a scale-out and a fault window).
  EXPECT_NE(serial.find(" f1\n"), std::string::npos);
  EXPECT_NE(serial.find("mig "), std::string::npos);
}

// ---- Multi-key equivalence --------------------------------------------------

TxnResult TouchOne(const TxnContext& context) {
  Row row;
  row.payload_bytes = 64;
  row.f0 = static_cast<int64_t>(context.key);
  context.partition->Put(context.bucket, 0, context.key, row);
  TxnResult result;
  result.value = 1;
  return result;
}

TxnResult TouchMany(const TxnContext* contexts, int num_keys) {
  TxnResult result;
  for (int i = 0; i < num_keys; ++i) {
    Row row;
    row.payload_bytes = 64;
    row.f0 = static_cast<int64_t>(contexts[i].key);
    contexts[i].partition->Put(contexts[i].bucket, 0, contexts[i].key, row);
  }
  result.value = num_keys;
  return result;
}

// Mixed single-key, same-node multi-key, and cross-node multi-key
// traffic, with a node crash in the middle: every submit path (deferred
// shard body, flush-and-run-inline cross-node, unavailable fast-fail)
// must fold back to the serial counters and windows exactly.
std::string RunMultiKey(int threads) {
  ClusterOptions cluster_options;
  cluster_options.partitions_per_node = 2;
  cluster_options.max_nodes = 4;
  cluster_options.initial_nodes = 4;
  cluster_options.num_buckets = 256;
  Cluster cluster(cluster_options);
  MetricsCollector metrics(1.0);
  TxnExecutor executor(&cluster, &metrics, ExecutorOptions{});
  PSTORE_CHECK_OK(executor.RegisterProcedure(0, &TouchOne));
  PSTORE_CHECK_OK(executor.RegisterMultiProcedure(1, &TouchMany));

  EventLoop loop;
  std::unique_ptr<ShardedEngine> engine;
  if (threads > 1) {
    engine = std::make_unique<ShardedEngine>(&loop, cluster_options.max_nodes,
                                             threads);
    executor.EnableSharding(engine.get());
    engine->InstallBarrierHook();
  }

  auto rng = std::make_shared<Rng>(1234);
  for (int tick = 0; tick < 50; ++tick) {
    loop.ScheduleAt(tick * 100 * kMillisecond, [&, rng] {
      for (int i = 0; i < 20; ++i) {
        TxnRequest request;
        request.key = rng->NextUint64(100000);
        if (i % 3 == 0) {
          request.procedure = 1;
          request.num_extra_keys = 2;
          request.extra_keys[0] = rng->NextUint64(100000);
          request.extra_keys[1] = request.key;  // duplicate on purpose
        } else {
          request.procedure = 0;
        }
        if (executor.sharding_enabled()) {
          executor.SubmitSharded(request, loop.now());
        } else {
          executor.Submit(request, loop.now());
        }
      }
    });
  }
  loop.ScheduleAt(2 * kSecond, [&cluster] { cluster.MarkNodeDown(2); });
  loop.ScheduleAt(3 * kSecond, [&cluster] { cluster.MarkNodeUp(2); });
  loop.RunUntil(6 * kSecond);
  if (engine != nullptr) {
    engine->Flush();
    executor.FoldShardStats();
  }

  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "rows %lld bytes %lld\n",
                static_cast<long long>(cluster.TotalRowCount()),
                static_cast<long long>(cluster.TotalDataBytes()));
  out += buf;
  for (const WindowStats& w : metrics.Finalize(6 * kSecond)) {
    std::snprintf(buf, sizeof(buf), "%lld/%lld/%lld %.17g/%.17g\n",
                  static_cast<long long>(w.submitted),
                  static_cast<long long>(w.completed),
                  static_cast<long long>(w.unavailable), w.p50_ms, w.p99_ms);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "ctr %lld/%lld/%lld/%lld/%lld\n",
                static_cast<long long>(executor.submitted_count()),
                static_cast<long long>(executor.committed_count()),
                static_cast<long long>(executor.aborted_count()),
                static_cast<long long>(executor.distributed_count()),
                static_cast<long long>(executor.unavailable_count()));
  out += buf;
  return out;
}

TEST(ShardedEngineEquivalenceTest, MultiKeyTrafficMatchesSerial) {
  const std::string serial = RunMultiKey(1);
  const std::string four = RunMultiKey(4);
  EXPECT_EQ(serial, four);
  // Sanity: the scenario hit the interesting paths.
  EXPECT_NE(serial.find("ctr 1000/"), std::string::npos);
}

}  // namespace
}  // namespace pstore
