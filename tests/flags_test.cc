#include "common/flags.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace pstore {
namespace {

FlagParser ParseOk(std::vector<const char*> args) {
  FlagParser parser;
  EXPECT_TRUE(
      parser.Parse(static_cast<int>(args.size()), args.data()).ok());
  return parser;
}

TEST(FlagParserTest, EqualsSyntax) {
  FlagParser flags = ParseOk({"--days=30", "--out=trace.csv"});
  EXPECT_EQ(flags.GetString("out", ""), "trace.csv");
  ASSERT_TRUE(flags.GetInt("days", 0).ok());
  EXPECT_EQ(*flags.GetInt("days", 0), 30);
}

TEST(FlagParserTest, SpaceSyntax) {
  FlagParser flags = ParseOk({"--days", "30", "--out", "x.csv"});
  EXPECT_EQ(*flags.GetInt("days", 0), 30);
  EXPECT_EQ(flags.GetString("out", ""), "x.csv");
}

TEST(FlagParserTest, BareFlagIsTrue) {
  FlagParser flags = ParseOk({"--verbose", "--dry-run"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.GetBool("dry-run", false));
  EXPECT_FALSE(flags.GetBool("absent", false));
}

TEST(FlagParserTest, BoolFalseSpellings) {
  FlagParser flags = ParseOk({"--a=false", "--b=0", "--c=no", "--d=yes"});
  EXPECT_FALSE(flags.GetBool("a", true));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_FALSE(flags.GetBool("c", true));
  EXPECT_TRUE(flags.GetBool("d", false));
}

TEST(FlagParserTest, Positional) {
  FlagParser flags = ParseOk({"input.csv", "--days=3", "output.csv"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.csv");
  EXPECT_EQ(flags.positional()[1], "output.csv");
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  FlagParser flags = ParseOk({});
  EXPECT_EQ(flags.GetString("x", "def"), "def");
  EXPECT_EQ(*flags.GetInt("x", 7), 7);
  EXPECT_EQ(*flags.GetDouble("x", 2.5), 2.5);
}

TEST(FlagParserTest, MalformedNumbersAreErrors) {
  FlagParser flags = ParseOk({"--n=abc", "--d=1.2.3"});
  EXPECT_FALSE(flags.GetInt("n", 0).ok());
  EXPECT_FALSE(flags.GetDouble("d", 0.0).ok());
}

TEST(FlagParserTest, DoubleParsing) {
  FlagParser flags = ParseOk({"--rate=1.5e3"});
  ASSERT_TRUE(flags.GetDouble("rate", 0.0).ok());
  EXPECT_EQ(*flags.GetDouble("rate", 0.0), 1500.0);
}

TEST(FlagParserTest, BareDashDashRejected) {
  FlagParser parser;
  const char* args[] = {"--"};
  EXPECT_FALSE(parser.Parse(1, args).ok());
}

TEST(FlagParserTest, LastValueWins) {
  FlagParser flags = ParseOk({"--n=1", "--n=2"});
  EXPECT_EQ(*flags.GetInt("n", 0), 2);
}

TEST(FlagParserTest, GetStringsReturnsEveryOccurrenceInOrder) {
  FlagParser flags =
      ParseOk({"--rule=layering", "--x=1", "--rule", "includes",
               "--rule=status"});
  const std::vector<std::string> rules = flags.GetStrings("rule");
  ASSERT_EQ(rules.size(), 3u);
  EXPECT_EQ(rules[0], "layering");
  EXPECT_EQ(rules[1], "includes");
  EXPECT_EQ(rules[2], "status");
  // The scalar getter still sees only the last occurrence.
  EXPECT_EQ(flags.GetString("rule", ""), "status");
}

TEST(FlagParserTest, GetStringsEmptyWhenAbsent) {
  FlagParser flags = ParseOk({"--x=1"});
  EXPECT_TRUE(flags.GetStrings("rule").empty());
}

TEST(FlagParserTest, GetStringsSeesBareBooleanAsTrue) {
  FlagParser flags = ParseOk({"--verbose", "--verbose"});
  const std::vector<std::string> values = flags.GetStrings("verbose");
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], "true");
  EXPECT_EQ(values[1], "true");
}

}  // namespace
}  // namespace pstore
