#include "sim/capacity_simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/status.h"
#include "common/time_series.h"
#include "prediction/naive_models.h"
#include "prediction/spar_model.h"
#include "trace/b2w_trace_generator.h"

namespace pstore {
namespace {

// A 10-day trace in txn/s units (scaled from the req/min generator so
// q = 285 / q_hat = 350 match a handful of nodes).
TimeSeries TestTrace(int days, uint64_t seed = 11, int black_friday = -1) {
  B2wTraceOptions options;
  options.days = days;
  options.seed = seed;
  options.peak_requests_per_min = 10500.0;  // ~1750 txn/s at 10x replay
  options.black_friday_day = black_friday;
  // req/min -> txn/s at the paper's 10x acceleration.
  return GenerateB2wTrace(options).Scaled(10.0 / 60.0);
}

SimOptions TestOptions(size_t eval_begin_days) {
  SimOptions options;
  options.plan_slot_factor = 5;
  options.horizon_plan_slots = 36;
  options.q = 285.0;
  options.q_hat = 350.0;
  options.d_fine_slots = 77.0;
  options.partitions_per_node = 6;
  options.initial_nodes = 4;
  options.max_nodes = 40;
  options.eval_begin = eval_begin_days * 1440;
  return options;
}

TEST(CapacitySimTest, StaticPeakProvisioningHasFewViolationsHighCost) {
  const TimeSeries trace = TestTrace(9);
  const SimOptions options = TestOptions(7);
  const CapacitySimulator sim(options);
  StatusOr<SimResult> result = sim.RunStatic(trace, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reconfigurations, 0);
  EXPECT_LT(result->insufficient_fraction, 0.001);
  // Cost = 10 machines every slot.
  const double slots = static_cast<double>(trace.size() - options.eval_begin);
  EXPECT_NEAR(result->machine_slots, 10.0 * slots, 1e-6);
}

TEST(CapacitySimTest, StaticUnderProvisioningViolatesDaily) {
  const TimeSeries trace = TestTrace(9);
  const CapacitySimulator sim(TestOptions(7));
  StatusOr<SimResult> result = sim.RunStatic(trace, 4);
  ASSERT_TRUE(result.ok());
  // 4 * 350 = 1400 txn/s of capacity against ~1750 peaks: insufficient
  // around the top of every daily cycle.
  EXPECT_GT(result->insufficient_fraction, 0.02);
}

TEST(CapacitySimTest, OraclePredictiveNearZeroViolationsAtHalfCost) {
  const TimeSeries trace = TestTrace(9);
  SimOptions options = TestOptions(7);
  options.inflation = 1.0;
  const CapacitySimulator sim(options);
  const TimeSeries coarse = trace.DownsampleMean(5);
  OraclePredictor oracle(coarse);
  StatusOr<SimResult> result = sim.RunPredictive(trace, oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->reconfigurations, 2);
  // Violations come only from sub-planning-slot variance (paper §8.3:
  // "the percentage of time with insufficient capacity is not zero
  // because the predictions are at the granularity of five minutes").
  EXPECT_LT(result->insufficient_fraction, 0.02);

  StatusOr<SimResult> static10 = sim.RunStatic(trace, 10);
  ASSERT_TRUE(static10.ok());
  EXPECT_LT(result->machine_slots, 0.75 * static10->machine_slots);
}

TEST(CapacitySimTest, ReactiveCheaperButMoreViolationsThanStaticPeak) {
  const TimeSeries trace = TestTrace(9);
  const CapacitySimulator sim(TestOptions(7));
  StatusOr<SimResult> reactive = sim.RunReactive(trace, ReactiveSimParams{});
  StatusOr<SimResult> static10 = sim.RunStatic(trace, 10);
  ASSERT_TRUE(reactive.ok());
  ASSERT_TRUE(static10.ok());
  EXPECT_LT(reactive->machine_slots, static10->machine_slots);
  EXPECT_GT(reactive->insufficient_fraction,
            static10->insufficient_fraction);
  EXPECT_GT(reactive->reconfigurations, 2);
}

TEST(CapacitySimTest, PredictiveBeatsReactiveOnViolationsAtSimilarCost) {
  // The headline comparison of Fig. 12, on the simulator.
  const TimeSeries trace = TestTrace(16);
  SimOptions options = TestOptions(14);
  const CapacitySimulator sim(options);

  const TimeSeries coarse = trace.DownsampleMean(5);
  SparOptions spar_options;
  spar_options.period = 1440 / 5;
  spar_options.num_periods = 7;
  spar_options.num_recent = 6;
  spar_options.max_tau = options.horizon_plan_slots;
  SparPredictor spar(spar_options);
  ASSERT_TRUE(spar.Fit(coarse.Slice(0, 14 * 288)).ok());

  StatusOr<SimResult> predictive = sim.RunPredictive(trace, spar);
  StatusOr<SimResult> reactive = sim.RunReactive(trace, ReactiveSimParams{});
  ASSERT_TRUE(predictive.ok());
  ASSERT_TRUE(reactive.ok());
  EXPECT_LT(predictive->insufficient_fraction,
            reactive->insufficient_fraction);
  // And the cost advantage over peak provisioning holds.
  StatusOr<SimResult> static10 = sim.RunStatic(trace, 10);
  ASSERT_TRUE(static10.ok());
  EXPECT_LT(predictive->machine_slots, 0.8 * static10->machine_slots);
}

TEST(CapacitySimTest, SimpleStrategyBreaksOnDeviation) {
  // On a Black-Friday day the fixed schedule under-provisions badly.
  const TimeSeries normal = TestTrace(9, 11);
  const TimeSeries bf = TestTrace(9, 11, /*black_friday=*/8);
  const CapacitySimulator sim(TestOptions(7));
  SimpleSimParams params;
  params.day_nodes = 10;
  params.night_nodes = 3;
  StatusOr<SimResult> on_normal = sim.RunSimple(normal, params);
  StatusOr<SimResult> on_bf = sim.RunSimple(bf, params);
  ASSERT_TRUE(on_normal.ok());
  ASSERT_TRUE(on_bf.ok());
  EXPECT_GT(on_bf->insufficient_fraction,
            on_normal->insufficient_fraction * 2 + 0.001);
}

TEST(CapacitySimTest, SweepingQTradesCostForCapacity) {
  // The Fig. 12 x/y tradeoff: larger Q = fewer machines = cheaper but
  // more violations; smaller Q the reverse.
  const TimeSeries trace = TestTrace(9);
  const TimeSeries coarse = trace.DownsampleMean(5);
  OraclePredictor oracle(coarse);

  double prev_cost = 1e18;
  double prev_viol = -1.0;
  for (const double q : {200.0, 285.0, 340.0}) {
    SimOptions options = TestOptions(7);
    options.q = q;
    options.inflation = 1.0;
    const CapacitySimulator sim(options);
    StatusOr<SimResult> result = sim.RunPredictive(trace, oracle);
    ASSERT_TRUE(result.ok());
    EXPECT_LT(result->machine_slots, prev_cost) << "q=" << q;
    EXPECT_GE(result->insufficient_fraction, prev_viol - 1e-9) << "q=" << q;
    prev_cost = result->machine_slots;
    prev_viol = result->insufficient_fraction;
  }
}

TEST(CapacitySimTest, FaultWindowsDegradeEffectiveCapacity) {
  const TimeSeries trace = TestTrace(9);
  SimOptions options = TestOptions(7);
  const StatusOr<SimResult> clean = CapacitySimulator(options).RunStatic(
      trace, 10);
  ASSERT_TRUE(clean.ok());
  ASSERT_LT(clean->insufficient_fraction, 0.001);
  EXPECT_EQ(clean->fault_slots, 0);
  EXPECT_EQ(clean->insufficient_during_fault_slots, 0);

  // Capacity cut to 40% for the whole first evaluated day: 10 * 350 *
  // 0.4 = 1400 txn/s against ~1750 txn/s peaks must go insufficient.
  CapacityFault fault;
  fault.begin_fine_slot = options.eval_begin;
  fault.end_fine_slot = options.eval_begin + 1440;
  fault.capacity_multiplier = 0.4;
  options.faults.push_back(fault);
  const StatusOr<SimResult> faulted = CapacitySimulator(options).RunStatic(
      trace, 10);
  ASSERT_TRUE(faulted.ok());
  EXPECT_EQ(faulted->fault_slots, 1440);
  EXPECT_GT(faulted->insufficient_during_fault_slots, 0);
  EXPECT_GT(faulted->insufficient_slots, clean->insufficient_slots);
  // All the extra insufficiency is inside the fault window, and the
  // non-fault remainder of the run is unchanged.
  EXPECT_EQ(faulted->insufficient_slots - faulted->insufficient_during_fault_slots,
            clean->insufficient_slots);
  EXPECT_EQ(faulted->machine_slots, clean->machine_slots);

  // Overlapping windows compound by taking the minimum multiplier, so
  // stacking a milder fault on top changes nothing.
  CapacityFault milder = fault;
  milder.capacity_multiplier = 0.9;
  options.faults.push_back(milder);
  const StatusOr<SimResult> stacked = CapacitySimulator(options).RunStatic(
      trace, 10);
  ASSERT_TRUE(stacked.ok());
  EXPECT_EQ(stacked->insufficient_slots, faulted->insufficient_slots);
  EXPECT_EQ(stacked->fault_slots, faulted->fault_slots);
}

TEST(CapacitySimTest, EffectiveCapacitySeriesCoversEvalWindow) {
  const TimeSeries trace = TestTrace(9);
  const SimOptions options = TestOptions(7);
  const CapacitySimulator sim(options);
  StatusOr<SimResult> result = sim.RunStatic(trace, 6);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->effective_capacity.size(),
            trace.size() - options.eval_begin);
  EXPECT_EQ(result->machines.size(), trace.size() - options.eval_begin);
  for (double cap : result->effective_capacity) {
    EXPECT_NEAR(cap, 6 * 350.0, 1e-9);
  }
}

TEST(CapacitySimTest, RejectsTraceShorterThanEvalBegin) {
  const CapacitySimulator sim(TestOptions(7));
  TimeSeries tiny(60.0, std::vector<double>(100, 1.0));
  EXPECT_FALSE(sim.RunStatic(tiny, 4).ok());
  EXPECT_FALSE(sim.RunReactive(tiny, ReactiveSimParams{}).ok());
}

}  // namespace
}  // namespace pstore
