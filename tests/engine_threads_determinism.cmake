# Single-run determinism gate for the node-sharded engine: runs an
# engine-backed CLI tool once per --engine-threads value in {1, 2, 8}
# and fails unless every run's output is byte-identical to the serial
# golden run.
#
# Two fields are normalized before comparing, neither of which carries
# simulation state:
#  * "wall_us" trace attributes measure *host* wall-clock time inside
#    predictor/planner calls and differ between any two runs, including
#    two serial ones;
#  * output file names, which necessarily differ per thread count.
# Every simulated-time quantity — event timestamps, rates, counters,
# window percentiles, CSV rows — must match exactly.
#
# Usage:
#   cmake -DTOOL=<binary> -DMODE=<simulate|chaos> -DOUTDIR=<dir>
#         [-DTRACE=<csv>] -P engine_threads_determinism.cmake

if(NOT TOOL OR NOT MODE OR NOT OUTDIR)
  message(FATAL_ERROR "TOOL, MODE and OUTDIR are required")
endif()
file(MAKE_DIRECTORY "${OUTDIR}")

set(THREAD_COUNTS 1 2 8)

# Normalizes per-run noise: host wall-clock attributes and the
# per-thread-count output paths embedded in stdout.
function(normalize text out_var)
  string(REGEX REPLACE "\"wall_us\":[0-9]+" "\"wall_us\":0" text "${text}")
  string(REGEX REPLACE "_t[0-9]+\\.(jsonl|csv)" ".\\1" text "${text}")
  set(${out_var} "${text}" PARENT_SCOPE)
endfunction()

function(check_identical label serial candidate threads)
  if(NOT "${serial}" STREQUAL "${candidate}")
    message(FATAL_ERROR
      "${label}: --engine-threads=${threads} diverged from the serial run")
  endif()
  message(STATUS "${label}: threads=${threads} matches serial")
endfunction()

# Runs ${ARGN} plus --engine-threads=${threads}, normalizes stdout and
# the produced artifact, and exports run_stdout / run_artifact.
function(run_tool threads artifact)
  execute_process(
    COMMAND ${TOOL} ${ARGN} --engine-threads=${threads}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${TOOL} --engine-threads=${threads} failed "
                        "(rc=${rc}):\n${out}\n${err}")
  endif()
  normalize("${out}" out)
  set(run_stdout "${out}" PARENT_SCOPE)
  if(artifact)
    file(READ "${artifact}" content)
    normalize("${content}" content)
    set(run_artifact "${content}" PARENT_SCOPE)
  else()
    set(run_artifact "" PARENT_SCOPE)
  endif()
endfunction()

if(MODE STREQUAL "simulate")
  # The fig05/fig12 path: a P-Store sweep over the B2W trace with the
  # deterministic per-strategy CSV.
  if(NOT TRACE)
    message(FATAL_ERROR "MODE=simulate requires -DTRACE=<csv>")
  endif()
  foreach(t IN LISTS THREAD_COUNTS)
    run_tool(${t} "${OUTDIR}/sweep_t${t}.csv"
      --trace=${TRACE} --strategy=pstore --q=3400 --qhat=4200
      --train-days=28 --csv-out=${OUTDIR}/sweep_t${t}.csv)
    if(t EQUAL 1)
      set(serial_stdout "${run_stdout}")
      set(serial_csv "${run_artifact}")
    else()
      check_identical("simulate stdout" "${serial_stdout}" "${run_stdout}" ${t})
      check_identical("simulate csv" "${serial_csv}" "${run_artifact}" ${t})
    endif()
  endforeach()
elseif(MODE STREQUAL "chaos")
  # Two full drills per thread count: a scripted crash/recover and a
  # seeded random fault storm, both with the JSONL trace on.
  set(scripted --minutes=16 --crash-node=2 --crash-at=640 --recover-at=700)
  set(seeded --minutes=16 --seed=5 --crash-rate=20 --straggler-rate=20
      --chunk-abort-rate=40)
  foreach(drill scripted seeded)
    foreach(t IN LISTS THREAD_COUNTS)
      run_tool(${t} "${OUTDIR}/${drill}_t${t}.jsonl"
        ${${drill}} --trace-out=${OUTDIR}/${drill}_t${t}.jsonl)
      if(t EQUAL 1)
        set(serial_stdout "${run_stdout}")
        set(serial_trace "${run_artifact}")
      else()
        check_identical("chaos ${drill} stdout"
          "${serial_stdout}" "${run_stdout}" ${t})
        check_identical("chaos ${drill} trace"
          "${serial_trace}" "${run_artifact}" ${t})
      endif()
    endforeach()
  endforeach()
else()
  message(FATAL_ERROR "unknown MODE '${MODE}'")
endif()
