#include "fault/fault_injector.h"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "b2w/procedures.h"
#include "b2w/schema.h"
#include "b2w/workload.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/strong_id.h"
#include "common/time_series.h"
#include "controller/predictive_controller.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/metrics.h"
#include "engine/partition.h"
#include "engine/table.h"
#include "engine/txn_executor.h"
#include "engine/workload_driver.h"
#include "fault/fault_schedule.h"
#include "migration/squall_migrator.h"
#include "prediction/naive_models.h"
#include "prediction/online_predictor.h"
#include "sim/capacity_simulator.h"

namespace pstore {
namespace {

ClusterOptions TestCluster(int initial_nodes, int max_nodes = 16) {
  ClusterOptions options;
  options.partitions_per_node = 2;
  options.max_nodes = max_nodes;
  options.initial_nodes = initial_nodes;
  options.num_buckets = 512;
  return options;
}

MigrationOptions FastMigration() {
  MigrationOptions options;
  options.net_rate_bytes_per_sec = 10e6;
  options.chunk_spacing_seconds = 0.01;
  options.extract_rate_bytes_per_sec = 200e6;
  options.chunk_bytes = 256 * 1024;
  return options;
}

void LoadData(Cluster* cluster, uint64_t rows, uint32_t row_bytes) {
  Row row;
  row.payload_bytes = row_bytes;
  for (uint64_t key = 0; key < rows; ++key) {
    const BucketId bucket = cluster->BucketForKey(key);
    row.f0 = static_cast<int64_t>(key);
    cluster->partition(cluster->PartitionOfBucket(bucket))
        .Put(bucket, 0, key, row);
  }
}

FaultEvent MakeEvent(double at_seconds, FaultKind kind, int node = -1,
                     double multiplier = 1.0) {
  FaultEvent event;
  event.at = FromSeconds(at_seconds);
  event.kind = kind;
  event.node = node;
  event.multiplier = multiplier;
  return event;
}

// ---- FaultSchedule ---------------------------------------------------------

TEST(FaultScheduleTest, ScriptedSortsByTime) {
  const FaultSchedule schedule = FaultSchedule::Scripted({
      MakeEvent(5.0, FaultKind::kNodeRecover, 1),
      MakeEvent(1.0, FaultKind::kNodeCrash, 1),
      MakeEvent(3.0, FaultKind::kChunkAbort),
  });
  ASSERT_EQ(schedule.events().size(), 3u);
  EXPECT_EQ(schedule.events()[0].kind, FaultKind::kNodeCrash);
  EXPECT_EQ(schedule.events()[1].kind, FaultKind::kChunkAbort);
  EXPECT_EQ(schedule.events()[2].kind, FaultKind::kNodeRecover);
}

TEST(FaultScheduleTest, SeededRandomIsReproducible) {
  FaultScheduleOptions options;
  options.seed = 12345;
  options.horizon_seconds = 7200.0;
  options.max_node = 7;
  options.crash_rate_per_hour = 4.0;
  options.chunk_abort_rate_per_hour = 10.0;
  options.straggler_rate_per_hour = 6.0;
  options.degrade_rate_per_hour = 2.0;

  const FaultSchedule a = FaultSchedule::SeededRandom(options);
  const FaultSchedule b = FaultSchedule::SeededRandom(options);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.events().size(), b.events().size());
  for (size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].at, b.events()[i].at) << "event " << i;
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind) << "event " << i;
    EXPECT_EQ(a.events()[i].node, b.events()[i].node) << "event " << i;
    EXPECT_EQ(a.events()[i].multiplier, b.events()[i].multiplier)
        << "event " << i;
  }

  options.seed = 54321;
  const FaultSchedule c = FaultSchedule::SeededRandom(options);
  bool differs = c.events().size() != a.events().size();
  for (size_t i = 0; !differs && i < a.events().size(); ++i) {
    differs = a.events()[i].at != c.events()[i].at ||
              a.events()[i].kind != c.events()[i].kind;
  }
  EXPECT_TRUE(differs) << "different seeds produced identical streams";
}

TEST(FaultScheduleTest, SeededRandomPairsWindowedFaults) {
  FaultScheduleOptions options;
  options.seed = 99;
  options.horizon_seconds = 36000.0;
  options.max_node = 3;
  options.crash_rate_per_hour = 3.0;
  options.straggler_rate_per_hour = 3.0;
  options.degrade_rate_per_hour = 1.0;
  const FaultSchedule schedule = FaultSchedule::SeededRandom(options);

  int64_t counts[7] = {};
  for (const FaultEvent& event : schedule.events()) {
    ++counts[static_cast<int>(event.kind)];
    EXPECT_GE(event.at, 0);
    if (event.kind == FaultKind::kNodeCrash ||
        event.kind == FaultKind::kStragglerStart) {
      EXPECT_GE(event.node, 0);
      EXPECT_LE(event.node, options.max_node);
    }
  }
  EXPECT_GT(counts[static_cast<int>(FaultKind::kNodeCrash)], 0);
  EXPECT_EQ(counts[static_cast<int>(FaultKind::kNodeCrash)],
            counts[static_cast<int>(FaultKind::kNodeRecover)]);
  EXPECT_EQ(counts[static_cast<int>(FaultKind::kStragglerStart)],
            counts[static_cast<int>(FaultKind::kStragglerEnd)]);
  EXPECT_EQ(counts[static_cast<int>(FaultKind::kNetworkDegrade)],
            counts[static_cast<int>(FaultKind::kNetworkRestore)]);
}

TEST(FaultScheduleTest, ToCapacityFaultsBuildsWindows) {
  // One crash (60 s..120 s), one straggler at 0.25 (30 s..90 s); network
  // degradation has no serving-capacity footprint and must be dropped.
  const FaultSchedule schedule = FaultSchedule::Scripted({
      MakeEvent(60.0, FaultKind::kNodeCrash, 2),
      MakeEvent(120.0, FaultKind::kNodeRecover, 2),
      MakeEvent(30.0, FaultKind::kStragglerStart, 1, 0.25),
      MakeEvent(90.0, FaultKind::kStragglerEnd, 1),
      MakeEvent(10.0, FaultKind::kNetworkDegrade, -1, 0.5),
      MakeEvent(200.0, FaultKind::kNetworkRestore, -1),
  });
  const std::vector<CapacityFault> faults =
      ToCapacityFaults(schedule, 30.0, 4);
  ASSERT_EQ(faults.size(), 2u);
  // Sorted by event time: straggler first.
  EXPECT_EQ(faults[0].begin_fine_slot, 1u);  // 30 s / 30 s slots
  EXPECT_EQ(faults[0].end_fine_slot, 3u);
  EXPECT_NEAR(faults[0].capacity_multiplier, (4 - 1 + 0.25) / 4.0, 1e-12);
  EXPECT_EQ(faults[1].begin_fine_slot, 2u);
  EXPECT_EQ(faults[1].end_fine_slot, 4u);
  EXPECT_NEAR(faults[1].capacity_multiplier, 3.0 / 4.0, 1e-12);
}

// ---- FaultInjector ---------------------------------------------------------

TEST(FaultInjectorTest, CrashTogglesNodeHealthAndMetrics) {
  Cluster cluster(TestCluster(2, 4));
  EventLoop loop;
  MetricsCollector metrics(1.0);
  FaultInjector injector(&loop, &cluster, &metrics,
                         FaultSchedule::Scripted({
                             MakeEvent(1.0, FaultKind::kNodeCrash, 1),
                             MakeEvent(3.0, FaultKind::kNodeRecover, 1),
                         }));
  injector.Arm();

  EXPECT_TRUE(cluster.IsNodeUp(1));
  loop.RunUntil(FromSeconds(2.0));
  EXPECT_FALSE(cluster.IsNodeUp(1));
  loop.RunUntil(FromSeconds(4.0));
  EXPECT_TRUE(cluster.IsNodeUp(1));
  EXPECT_EQ(injector.stats().crashes, 1);
  EXPECT_EQ(injector.stats().recoveries, 1);

  // The fault window must be visible in the finalized window stats.
  const std::vector<WindowStats> windows = metrics.Finalize(FromSeconds(5.0));
  ASSERT_EQ(windows.size(), 5u);
  EXPECT_FALSE(windows[0].fault);
  EXPECT_TRUE(windows[1].fault);
  EXPECT_TRUE(windows[2].fault);
  EXPECT_TRUE(windows[3].fault);  // recovery toggles inside this window
  EXPECT_FALSE(windows[4].fault);
}

TEST(FaultInjectorTest, StragglerAndDegradeSlowChunkRate) {
  Cluster cluster(TestCluster(2, 4));
  EventLoop loop;
  FaultInjector injector(&loop, &cluster, nullptr,
                         FaultSchedule::Scripted({
                             MakeEvent(1.0, FaultKind::kStragglerStart, 0, 0.25),
                             MakeEvent(2.0, FaultKind::kNetworkDegrade, -1, 0.5),
                             MakeEvent(3.0, FaultKind::kStragglerEnd, 0),
                             MakeEvent(4.0, FaultKind::kNetworkRestore, -1),
                         }));
  injector.Arm();

  EXPECT_EQ(injector.ChunkRateMultiplier(NodeId(0), NodeId(1)), 1.0);
  loop.RunUntil(FromSeconds(1.5));
  EXPECT_DOUBLE_EQ(injector.ChunkRateMultiplier(NodeId(0), NodeId(1)), 0.25);
  EXPECT_DOUBLE_EQ(injector.ChunkRateMultiplier(NodeId(1), NodeId(2)), 1.0);  // other pair
  loop.RunUntil(FromSeconds(2.5));
  EXPECT_DOUBLE_EQ(injector.ChunkRateMultiplier(NodeId(0), NodeId(1)), 0.25 * 0.5);
  EXPECT_DOUBLE_EQ(injector.ChunkRateMultiplier(NodeId(1), NodeId(2)), 0.5);
  loop.RunUntil(FromSeconds(5.0));
  EXPECT_EQ(injector.ChunkRateMultiplier(NodeId(0), NodeId(1)), 1.0);
  EXPECT_EQ(injector.stats().stragglers, 1);
  EXPECT_EQ(injector.stats().degradations, 1);
}

TEST(FaultInjectorTest, ChunkAbortIsConsumedOnce) {
  Cluster cluster(TestCluster(2, 4));
  EventLoop loop;
  FaultInjector injector(&loop, &cluster, nullptr,
                         FaultSchedule::Scripted({
                             MakeEvent(1.0, FaultKind::kChunkAbort),
                         }));
  injector.Arm();
  EXPECT_FALSE(injector.TakeChunkAbort(NodeId(0), NodeId(1)));
  loop.RunUntil(FromSeconds(2.0));
  EXPECT_TRUE(injector.TakeChunkAbort(NodeId(0), NodeId(1)));
  EXPECT_FALSE(injector.TakeChunkAbort(NodeId(0), NodeId(1)));  // consumed
  EXPECT_EQ(injector.stats().chunk_aborts_armed, 1);
  EXPECT_EQ(injector.stats().chunk_aborts_consumed, 1);
}

// Regression for the SLA counters' outage blind spot, driven through the
// chaos-drill path (FaultInjector toggling node health, executor
// fast-failing kUnavailable): a full outage — every node down, every
// arrival rejected, nothing completing — must score as violated windows
// in the fault bucket. The counters used to skip completed == 0 windows
// entirely, scoring a dead cluster as a perfect SLA.
TEST(FaultInjectorTest, FullOutageWindowsCountAsFaultViolations) {
  Cluster cluster(TestCluster(2, 4));
  MetricsCollector metrics(1.0);
  TxnExecutor executor(&cluster, &metrics, ExecutorOptions{});
  PSTORE_CHECK_OK(b2w::RegisterProcedures(&executor));
  b2w::Workload workload(b2w::B2wWorkloadOptions{});
  PSTORE_CHECK_OK(workload.LoadInitialData(&cluster));
  EventLoop loop;
  FaultInjector injector(&loop, &cluster, &metrics,
                         FaultSchedule::Scripted({
                             MakeEvent(1.0, FaultKind::kNodeCrash, 0),
                             MakeEvent(1.0, FaultKind::kNodeCrash, 1),
                             MakeEvent(3.0, FaultKind::kNodeRecover, 0),
                             MakeEvent(3.0, FaultKind::kNodeRecover, 1),
                         }));
  injector.Arm();
  Rng rng(42);
  for (int tick = 0; tick < 50; ++tick) {
    loop.ScheduleAt(tick * 100 * kMillisecond, [&executor, &workload, &rng,
                                                &loop] {
      for (int i = 0; i < 5; ++i) {
        executor.Submit(workload.NextTransaction(rng), loop.now());
      }
    });
  }
  loop.RunUntil(5 * kSecond);

  EXPECT_GT(executor.unavailable_count(), 0);
  const auto windows = metrics.Finalize(5 * kSecond);
  ASSERT_EQ(windows.size(), 5u);
  // Windows 1 and 2 are total outages: arrivals, zero completions.
  for (const size_t w : {1u, 2u}) {
    EXPECT_GT(windows[w].submitted, 0) << "window " << w;
    EXPECT_EQ(windows[w].completed, 0) << "window " << w;
    EXPECT_TRUE(windows[w].fault) << "window " << w;
  }
  const SlaViolations violations =
      MetricsCollector::CountViolations(windows, 500.0);
  EXPECT_GE(violations.p50, 2);
  const SlaAttribution attribution =
      MetricsCollector::AttributeViolations(windows, 500.0);
  EXPECT_GE(attribution.during_fault.p99, 2);
}

// ---- Migration-level recovery ----------------------------------------------

// Acceptance scenario (a): a node crashes mid-migration and recovers.
// The in-flight chunks retry with backoff and the move still completes,
// with a duration inflated by the outage but bounded.
TEST(FaultRecoveryTest, CrashMidMigrationRetriesAndCompletes) {
  auto run = [](bool with_fault) {
    Cluster cluster(TestCluster(2));
    const uint64_t kRows = 3000;
    LoadData(&cluster, kRows, 2048);
    EventLoop loop;
    MigrationManager manager(&loop, &cluster, nullptr, FastMigration());
    std::unique_ptr<FaultInjector> injector;
    if (with_fault) {
      // Node 2 is a scale-out target: crash it shortly into the move,
      // bring it back 0.4 s later.
      injector = std::make_unique<FaultInjector>(
          &loop, &cluster, nullptr,
          FaultSchedule::Scripted({
              MakeEvent(0.05, FaultKind::kNodeCrash, 2),
              MakeEvent(0.45, FaultKind::kNodeRecover, 2),
          }));
      manager.set_fault_hook(injector.get());
      injector->Arm();
    }
    Status done = Status::Internal("never finished");
    SimTime finished_at = -1;
    PSTORE_CHECK_OK(manager.StartReconfiguration(NodeCount(4), 1.0, [&](const Status& s) {
      done = s;
      finished_at = loop.now();
    }));
    loop.RunToCompletion();
    PSTORE_CHECK(done.ok());
    PSTORE_CHECK(cluster.TotalRowCount() == static_cast<int64_t>(kRows));
    return std::make_tuple(finished_at, manager.chunk_retries());
  };

  const auto [clean_duration, clean_retries] = run(false);
  const auto [faulted_duration, faulted_retries] = run(true);
  EXPECT_EQ(clean_retries, ChunkCount(0));
  EXPECT_GT(faulted_retries, ChunkCount(0))
      << "crash did not intersect the migration";
  EXPECT_GT(faulted_duration, clean_duration);
  // Bounded: the outage (0.4 s) plus a couple of backoff steps, not a
  // runaway stall.
  EXPECT_LT(faulted_duration, clean_duration + FromSeconds(5.0));
}

// Acceptance scenario (b), migrator half: a crash that outlives the
// retry budget aborts the reconfiguration with kAborted and leaves the
// cluster routing every surviving row.
TEST(FaultRecoveryTest, RetryBudgetExhaustionAbortsMove) {
  Cluster cluster(TestCluster(2));
  const uint64_t kRows = 3000;
  LoadData(&cluster, kRows, 2048);
  EventLoop loop;
  MigrationOptions options = FastMigration();
  options.max_chunk_retries = 2;
  options.retry_backoff_seconds = 0.05;
  MigrationManager manager(&loop, &cluster, nullptr, options);
  FaultInjector injector(&loop, &cluster, nullptr,
                         FaultSchedule::Scripted({
                             MakeEvent(0.05, FaultKind::kNodeCrash, 2),
                             // never recovers
                         }));
  manager.set_fault_hook(&injector);
  injector.Arm();

  Status done = Status::OK();
  bool called = false;
  PSTORE_CHECK_OK(manager.StartReconfiguration(NodeCount(4), 1.0, [&](const Status& s) {
    done = s;
    called = true;
  }));
  loop.RunToCompletion();

  ASSERT_TRUE(called);
  EXPECT_EQ(done.code(), StatusCode::kAborted) << done.ToString();
  EXPECT_FALSE(manager.InProgress());
  EXPECT_EQ(manager.reconfigurations_failed(), 1);
  EXPECT_EQ(manager.reconfigurations_completed(), 0);
  EXPECT_EQ(manager.last_failure().code(), StatusCode::kAborted);
  EXPECT_GT(manager.chunk_retries(), ChunkCount(0));

  // Chunks commit atomically, so no row was lost or duplicated and
  // routing stays internally consistent.
  EXPECT_EQ(cluster.TotalRowCount(), static_cast<int64_t>(kRows));
  for (uint64_t key = 0; key < kRows; key += 13) {
    const BucketId bucket = cluster.BucketForKey(key);
    const Row* row = cluster.partition(cluster.PartitionOfBucket(bucket))
                         .Get(bucket, 0, key);
    ASSERT_NE(row, nullptr) << "key " << key;
  }

  // The abort leaves the cluster at the expanded machine count with
  // whatever buckets already landed on the new nodes; once the node is
  // back, a follow-up reconfiguration (here: scaling to 3) succeeds.
  cluster.MarkNodeUp(2);
  Status second = Status::Internal("never finished");
  PSTORE_CHECK_OK(manager.StartReconfiguration(
      NodeCount(3), 1.0, [&](const Status& s) { second = s; }));
  loop.RunToCompletion();
  EXPECT_TRUE(second.ok()) << second.ToString();
  EXPECT_EQ(cluster.TotalRowCount(), static_cast<int64_t>(kRows));
}

// ---- Controller-level recovery ---------------------------------------------

// Small B2W harness matching controller_test.cc.
struct Harness {
  explicit Harness(TimeSeries trace_txn_per_s, int initial_nodes)
      : trace(std::move(trace_txn_per_s)),
        cluster(MakeClusterOptions(initial_nodes)),
        metrics(1.0),
        executor(&cluster, &metrics, ExecutorOptions{}),
        migration(&loop, &cluster, &metrics, MakeMigrationOptions()),
        workload(MakeWorkloadOptions()) {
    PSTORE_CHECK_OK(b2w::RegisterProcedures(&executor));
    PSTORE_CHECK_OK(workload.LoadInitialData(&cluster));
    DriverOptions driver_options;
    driver_options.slot_sim_seconds = 6.0;
    driver_options.rate_factor = 1.0;
    driver_options.seed = 21;
    driver = std::make_unique<WorkloadDriver>(
        &loop, &executor, trace,
        [this](Rng& rng) { return workload.NextTransaction(rng); },
        driver_options);
    metrics.RecordMachines(0, cluster.active_nodes());
  }

  static ClusterOptions MakeClusterOptions(int initial_nodes) {
    ClusterOptions options;
    options.partitions_per_node = 6;
    options.max_nodes = 10;
    options.initial_nodes = initial_nodes;
    options.num_buckets = 1200;
    return options;
  }
  static MigrationOptions MakeMigrationOptions() {
    MigrationOptions options;
    options.net_rate_bytes_per_sec = 200e3;
    options.chunk_spacing_seconds = 0.5;
    options.chunk_bytes = 256 * 1024;
    options.extract_rate_bytes_per_sec = 20e6;
    // Keep recovery prompt at test scale.
    options.max_chunk_retries = 3;
    options.retry_backoff_seconds = 0.5;
    options.max_backoff_seconds = 4.0;
    return options;
  }
  static b2w::B2wWorkloadOptions MakeWorkloadOptions() {
    b2w::B2wWorkloadOptions options;
    options.cart_pool = 20000;
    options.checkout_pool = 8000;
    return options;
  }

  PredictiveControllerOptions MakePredictiveOptions() const {
    PredictiveControllerOptions options;
    options.slot_sim_seconds = 6.0;
    options.plan_slot_factor = 5;
    options.horizon_plan_slots = 20;
    options.planner_params.target_rate_per_node = 285.0;
    options.planner_params.max_rate_per_node = 350.0;
    options.planner_params.partitions_per_node = 6;
    options.planner_params.d_slots =
        SingleThreadFullMigrationSeconds(cluster.TotalDataBytes(),
                                         MakeMigrationOptions()) /
        30.0;
    return options;
  }

  std::unique_ptr<OnlinePredictor> MakeOracle(const TimeSeries& truth) {
    OnlinePredictorOptions options;
    options.inflation = 1.1;
    options.refit_interval = 1u << 30;
    options.training_window = 10;
    auto online = std::make_unique<OnlinePredictor>(
        std::make_unique<OraclePredictor>(truth), options);
    PSTORE_CHECK_OK(online->Warmup(truth.Slice(0, 1)));
    return online;
  }

  TimeSeries trace;
  EventLoop loop;
  Cluster cluster;
  MetricsCollector metrics;
  TxnExecutor executor;
  MigrationManager migration;
  b2w::Workload workload;
  std::unique_ptr<WorkloadDriver> driver;
};

TimeSeries StepTrace(size_t slots, size_t step_at, double before,
                     double after) {
  TimeSeries trace(6.0);
  for (size_t i = 0; i < slots; ++i) {
    trace.Append(i < step_at ? before : after);
  }
  return trace;
}

// Acceptance scenario (b), controller half: the scale-out target node
// crashes permanently, the move's retry budget runs out, and the
// controller must see the failure and re-plan immediately (not wait for
// operator intervention or a stuck in_progress flag).
TEST(FaultRecoveryTest, ControllerReplansAfterPermanentMoveFailure) {
  // Load steps 300 -> 800 txn/s at slot 120 (t = 720 s); the oracle
  // controller starts the 2 -> 3 scale-out around t = 610 s. Node 2 (the
  // scale-out target) goes down at t = 600 s and never comes back.
  const TimeSeries trace = StepTrace(240, 120, 300.0, 800.0);
  Harness harness(trace, 2);
  FaultInjector injector(&harness.loop, &harness.cluster, &harness.metrics,
                         FaultSchedule::Scripted({
                             MakeEvent(600.0, FaultKind::kNodeCrash, 2),
                         }));
  harness.migration.set_fault_hook(&injector);
  injector.Arm();

  auto oracle = harness.MakeOracle(trace);
  PredictiveController controller(&harness.loop, &harness.cluster,
                                  &harness.executor, &harness.migration,
                                  oracle.get(),
                                  harness.MakePredictiveOptions());
  controller.Start();

  harness.driver->Start(240 * 6 * kSecond);
  harness.loop.RunUntil(240 * 6 * kSecond);

  EXPECT_GT(harness.migration.reconfigurations_failed(), 0)
      << "the crash never made a move fail";
  EXPECT_GE(controller.move_failures(), 1);
  // Every failure triggers an immediate re-plan, within the same control
  // cycle.
  EXPECT_EQ(controller.replans_after_failure(), controller.move_failures());
  // The crashed node was a scale-out *target*: no bucket ever landed on
  // it (its chunks kept failing), so no transaction routed to it either.
  EXPECT_EQ(harness.executor.unavailable_count(), 0);
}

// ---- End-to-end determinism ------------------------------------------------

// Acceptance scenario (c): the same seed reproduces the identical fault
// stream and, run against the identical engine setup, the identical
// final window statistics.
TEST(FaultDeterminismTest, SameSeedSameWindows) {
  auto run = [](uint64_t seed) {
    FaultScheduleOptions fault_options;
    fault_options.seed = seed;
    fault_options.horizon_seconds = 600.0;
    fault_options.max_node = 3;
    fault_options.crash_rate_per_hour = 18.0;
    fault_options.mean_outage_seconds = 20.0;
    fault_options.straggler_rate_per_hour = 12.0;
    fault_options.chunk_abort_rate_per_hour = 30.0;
    const FaultSchedule schedule = FaultSchedule::SeededRandom(fault_options);

    Harness harness(StepTrace(100, 50, 300.0, 800.0), 2);
    FaultInjector injector(&harness.loop, &harness.cluster, &harness.metrics,
                           schedule);
    harness.migration.set_fault_hook(&injector);
    injector.Arm();
    auto oracle = harness.MakeOracle(harness.trace);
    PredictiveController controller(&harness.loop, &harness.cluster,
                                    &harness.executor, &harness.migration,
                                    oracle.get(),
                                    harness.MakePredictiveOptions());
    controller.Start();
    harness.driver->Start(100 * 6 * kSecond);
    harness.loop.RunUntil(100 * 6 * kSecond);

    return std::make_tuple(schedule.events(),
                           harness.metrics.Finalize(100 * 6 * kSecond),
                           harness.executor.committed_count(),
                           harness.executor.unavailable_count(),
                           harness.migration.chunk_retries());
  };

  const auto [events_a, windows_a, committed_a, unavailable_a, retries_a] =
      run(7);
  const auto [events_b, windows_b, committed_b, unavailable_b, retries_b] =
      run(7);

  ASSERT_FALSE(events_a.empty());
  ASSERT_EQ(events_a.size(), events_b.size());
  for (size_t i = 0; i < events_a.size(); ++i) {
    EXPECT_EQ(events_a[i].at, events_b[i].at);
    EXPECT_EQ(events_a[i].kind, events_b[i].kind);
    EXPECT_EQ(events_a[i].node, events_b[i].node);
  }

  EXPECT_EQ(committed_a, committed_b);
  EXPECT_EQ(unavailable_a, unavailable_b);
  EXPECT_EQ(retries_a, retries_b);
  ASSERT_EQ(windows_a.size(), windows_b.size());
  for (size_t i = 0; i < windows_a.size(); ++i) {
    EXPECT_EQ(windows_a[i].submitted, windows_b[i].submitted) << "window " << i;
    EXPECT_EQ(windows_a[i].completed, windows_b[i].completed) << "window " << i;
    EXPECT_EQ(windows_a[i].unavailable, windows_b[i].unavailable)
        << "window " << i;
    EXPECT_EQ(windows_a[i].p99_ms, windows_b[i].p99_ms) << "window " << i;
    EXPECT_EQ(windows_a[i].machines, windows_b[i].machines) << "window " << i;
    EXPECT_EQ(windows_a[i].fault, windows_b[i].fault) << "window " << i;
  }
}

}  // namespace
}  // namespace pstore
