// Predictor suite v2: spec grammar round-trips, the registry factory,
// the shift-aware wrapper, matrix factorization, the ensemble, refit
// policies, and the walk-forward backtest harness (including the
// idle-window MRE guard). The step-change tests pin the headline v2
// behavior: a shift-aware model re-fits within one epoch of a regime
// shift while the plain static model degrades.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/time_series.h"
#include "prediction/backtest.h"
#include "prediction/ensemble.h"
#include "prediction/matrix_factorization.h"
#include "prediction/naive_models.h"
#include "prediction/online_predictor.h"
#include "prediction/predictor.h"
#include "prediction/predictor_spec.h"
#include "prediction/refit_policy.h"
#include "prediction/residual_tracker.h"
#include "prediction/shift_aware.h"
#include "prediction/spar_model.h"

namespace pstore {
namespace {

constexpr size_t kPeriod = 48;

// Daily-periodic sinusoid: period 48 slots, optional noise, and a
// seasonal-shape change from `shift_at` onward (0 = no shift): the
// amplitude is scaled by `shift_factor`, so factor -1 inverts the daily
// pattern and 1.6 steepens it. A shape change (rather than a pure level
// scale) is what defeats a stale fit: SPAR's recent-lag terms absorb
// level shifts on their own, but a changed seasonal profile stays wrong
// until the model re-fits.
TimeSeries PeriodicSeries(int periods, double noise_sigma, uint64_t seed,
                          size_t shift_at = 0, double shift_factor = 1.0) {
  Rng rng(seed);
  TimeSeries out(60.0);
  for (int p = 0; p < periods; ++p) {
    for (size_t s = 0; s < kPeriod; ++s) {
      const double phase = 2.0 * M_PI * static_cast<double>(s) / kPeriod;
      const double amplitude =
          (shift_at > 0 && out.size() >= shift_at) ? 50.0 * shift_factor
                                                   : 50.0;
      double value = 100.0 + amplitude * std::sin(phase);
      value *= 1.0 + noise_sigma * rng.NextGaussian();
      out.Append(value);
    }
  }
  return out;
}

PredictorContext SmallContext() {
  PredictorContext context;
  context.period = kPeriod;
  context.max_tau = 8;
  return context;
}

// ---- Spec grammar ---------------------------------------------------------

TEST(PredictorSpecTest, ParsesBareKind) {
  const StatusOr<PredictorSpec> spec = ParsePredictorSpec("spar");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->kind, "spar");
  EXPECT_TRUE(spec->params.empty());
  EXPECT_TRUE(spec->children.empty());
}

TEST(PredictorSpecTest, ParsesParamsAndChildren) {
  const StatusOr<PredictorSpec> spec = ParsePredictorSpec(
      "ensemble(spar(n=7,m=6),ar(p=8),hw,epoch=36,window=72)");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->kind, "ensemble");
  ASSERT_EQ(spec->children.size(), 3u);
  EXPECT_EQ(spec->children[0].kind, "spar");
  EXPECT_EQ(spec->children[0].params.at("n"), "7");
  EXPECT_EQ(spec->children[2].kind, "hw");
  EXPECT_EQ(spec->params.at("epoch"), "36");
}

TEST(PredictorSpecTest, FormatRoundTrips) {
  const char* const inputs[] = {
      "spar",
      "spar(n=7,m=30)",
      "shift(spar(n=7,m=6),window=72,min_mre=0.08)",
      "ensemble(spar,ar(p=8),hw,epoch=36)",
  };
  for (const char* input : inputs) {
    const StatusOr<PredictorSpec> spec = ParsePredictorSpec(input);
    ASSERT_TRUE(spec.ok()) << input;
    const std::string canonical = FormatPredictorSpec(*spec);
    const StatusOr<PredictorSpec> reparsed = ParsePredictorSpec(canonical);
    ASSERT_TRUE(reparsed.ok()) << canonical;
    EXPECT_EQ(FormatPredictorSpec(*reparsed), canonical) << input;
  }
}

TEST(PredictorSpecTest, ParsesCommaSeparatedList) {
  const StatusOr<std::vector<PredictorSpec>> specs =
      ParsePredictorSpecList("spar(n=7,m=6), ar(p=8) ,hw");
  ASSERT_TRUE(specs.ok());
  ASSERT_EQ(specs->size(), 3u);
  EXPECT_EQ((*specs)[0].kind, "spar");
  EXPECT_EQ((*specs)[1].kind, "ar");
  EXPECT_EQ((*specs)[2].kind, "hw");
}

TEST(PredictorSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParsePredictorSpec("").ok());
  EXPECT_FALSE(ParsePredictorSpec("spar(n=7").ok());
  EXPECT_FALSE(ParsePredictorSpec("spar(n=7,n=8)").ok());
  EXPECT_FALSE(ParsePredictorSpec("spar)x").ok());
  EXPECT_FALSE(ParsePredictorSpec("spar(n=)").ok());
  EXPECT_FALSE(ParsePredictorSpecList("spar,,ar").ok());
}

TEST(PredictorSpecTest, MakeRejectsBadSpecs) {
  const PredictorContext context = SmallContext();
  EXPECT_FALSE(MakePredictor("no_such_model", context).ok());
  EXPECT_FALSE(MakePredictor("spar(bogus=1)", context).ok());
  EXPECT_FALSE(MakePredictor("ar(p=0)", context).ok());
  EXPECT_FALSE(MakePredictor("ar(p=abc)", context).ok());
  EXPECT_FALSE(MakePredictor("ensemble(ensemble(spar))", context).ok());
  EXPECT_FALSE(MakePredictor("shift(spar,ar)", context).ok());
}

TEST(PredictorSpecTest, RegistryBuildsEveryKind) {
  const PredictorContext context = SmallContext();
  const TimeSeries series = PeriodicSeries(10, 0.01, 3);
  for (const std::string& kind : RegisteredPredictorKinds()) {
    StatusOr<std::unique_ptr<LoadPredictor>> made =
        MakePredictor(kind, context);
    ASSERT_TRUE(made.ok()) << kind << ": " << made.status().ToString();
    EXPECT_TRUE((*made)->Fit(series).ok()) << kind;
    const StatusOr<double> prediction =
        (*made)->PredictAhead(series, 1);
    ASSERT_TRUE(prediction.ok()) << kind;
    EXPECT_GT(*prediction, 0.0) << kind;
  }
}

TEST(PredictorSpecTest, ContextSuppliesPeriodDefaults) {
  // A bare "spar" inherits period/max_tau from the context, so it fits a
  // period-48 series that the 1440-slot default could not.
  StatusOr<std::unique_ptr<LoadPredictor>> made =
      MakePredictor("spar(n=3,m=6)", SmallContext());
  ASSERT_TRUE(made.ok());
  EXPECT_TRUE((*made)->Fit(PeriodicSeries(6, 0.0, 1)).ok());
}

// ---- Matrix factorization -------------------------------------------------

TEST(MatrixFactorizationTest, RecoversPeriodicSignal) {
  MatrixFactorizationOptions options;
  options.period = kPeriod;
  options.rank = 3;
  MatrixFactorizationPredictor mf(options);
  const TimeSeries series = PeriodicSeries(10, 0.0, 1);
  ASSERT_TRUE(mf.Fit(series.Slice(0, 8 * kPeriod)).ok());
  for (size_t tau = 1; tau <= 4; ++tau) {
    const size_t t = 9 * kPeriod;
    const StatusOr<double> prediction =
        mf.PredictAhead(series.Slice(0, t), tau);
    ASSERT_TRUE(prediction.ok());
    const double actual = series[t + tau - 1];
    EXPECT_NEAR(*prediction, actual, 0.06 * actual) << "tau=" << tau;
  }
}

TEST(MatrixFactorizationTest, SlotFactorsHaveRankEntries) {
  MatrixFactorizationOptions options;
  options.period = kPeriod;
  options.rank = 4;
  MatrixFactorizationPredictor mf(options);
  ASSERT_TRUE(mf.Fit(PeriodicSeries(8, 0.0, 1)).ok());
  EXPECT_EQ(mf.SlotFactors(0).size(), 4u);
  EXPECT_EQ(mf.SlotFactors(kPeriod - 1).size(), 4u);
}

TEST(MatrixFactorizationTest, PredictBeforeFitFails) {
  MatrixFactorizationOptions options;
  options.period = kPeriod;
  MatrixFactorizationPredictor mf(options);
  EXPECT_FALSE(mf.PredictAhead(PeriodicSeries(4, 0.0, 1), 1).ok());
}

// ---- Shift-aware wrapper --------------------------------------------------

ShiftAwareOptions FastShiftOptions() {
  ShiftAwareOptions options;
  options.residual_window = 24;
  options.threshold = 1.5;
  options.min_mre = 0.05;
  options.cooldown = 96;
  options.refit_window = 5 * kPeriod;
  options.baseline_samples = 64;
  return options;
}

std::unique_ptr<LoadPredictor> SmallSpar() {
  SparOptions options;
  options.period = kPeriod;
  options.num_periods = 3;
  options.num_recent = 6;
  options.max_tau = 8;
  return std::make_unique<SparPredictor>(options);
}

// A regime-shift series that defeats stale *parameters* rather than
// stale features. Every model here reads its lag/seasonal features from
// the live history at prediction time, so shape or level changes heal
// themselves once the history rolls past the shift; what a stale model
// cannot fix without re-fitting is its fitted lag WEIGHTS. Pre-shift the
// series repeats one random 48-slot profile (every seasonal lag is
// equivalent, so the fit spreads weight across them); from `shift_at`
// onward two different random profiles alternate day-by-day (the true
// period becomes 96), so only the lag-2-periods weight is right and the
// stale spread-out weights average the two profiles — a persistent
// error that only a re-fit on post-shift data removes.
TimeSeries RandomProfileSeries(int periods, double noise_sigma,
                               uint64_t seed, size_t shift_at = 0) {
  Rng profile_rng(seed);
  std::vector<double> pre(kPeriod);
  std::vector<double> post_a(kPeriod);
  std::vector<double> post_b(kPeriod);
  for (size_t s = 0; s < kPeriod; ++s) {
    pre[s] = profile_rng.NextDouble(60.0, 140.0);
    post_a[s] = profile_rng.NextDouble(60.0, 140.0);
    post_b[s] = profile_rng.NextDouble(60.0, 140.0);
  }
  Rng noise(seed + 1);
  TimeSeries out(60.0);
  for (int p = 0; p < periods; ++p) {
    for (size_t s = 0; s < kPeriod; ++s) {
      double value;
      if (shift_at == 0 || out.size() < shift_at) {
        value = pre[s];
      } else {
        const size_t day = (out.size() - shift_at) / kPeriod;
        value = (day % 2 == 0) ? post_a[s] : post_b[s];
      }
      value *= 1.0 + noise_sigma * noise.NextGaussian();
      out.Append(value);
    }
  }
  return out;
}

TEST(ShiftAwareTest, RefitsWithinOneEpochOfStepChange) {
  // 10 pre-shift periods, then the level jumps 60%; the wrapper must
  // notice from rolling residuals and re-fit long before the weekly
  // interval cadence would.
  const size_t shift_at = 10 * kPeriod;
  const TimeSeries series =
      PeriodicSeries(20, 0.01, 7, shift_at, 1.6);
  ShiftAwarePredictor shift(SmallSpar(), FastShiftOptions());
  ASSERT_TRUE(shift.Fit(series.Slice(0, shift_at)).ok());
  EXPECT_GE(shift.baseline_mre(), 0.0);
  EXPECT_LT(shift.baseline_mre(), 0.05);

  size_t first_refit_slot = 0;
  for (size_t t = shift_at; t < series.size(); ++t) {
    const StatusOr<bool> changed = shift.Update(series.Slice(0, t + 1));
    ASSERT_TRUE(changed.ok());
    if (shift.refits() > 0 && first_refit_slot == 0) first_refit_slot = t;
  }
  ASSERT_GE(shift.refits(), 1u);
  // Detected within two periods of the shift — one "epoch" here, versus
  // the 7-day interval the static cadence would wait.
  EXPECT_LT(first_refit_slot, shift_at + 2 * kPeriod);
  EXPECT_GT(shift.recent_mre(), 0.0);
}

TEST(ShiftAwareTest, NoSpuriousRefitsOnStationarySeries) {
  const TimeSeries series = PeriodicSeries(20, 0.01, 7);
  ShiftAwarePredictor shift(SmallSpar(), FastShiftOptions());
  ASSERT_TRUE(shift.Fit(series.Slice(0, 10 * kPeriod)).ok());
  for (size_t t = 10 * kPeriod; t < series.size(); ++t) {
    ASSERT_TRUE(shift.Update(series.Slice(0, t + 1)).ok());
  }
  EXPECT_EQ(shift.refits(), 0u);
}

TEST(ResidualTrackerTest, RollingMeanAndIdleGuard) {
  RollingResidualTracker tracker(4);
  EXPECT_EQ(tracker.mean(), 0.0);
  EXPECT_FALSE(tracker.full());
  tracker.Add(100.0, 110.0);  // 10%
  tracker.Add(100.0, 90.0);   // 10%
  EXPECT_NEAR(tracker.mean(), 0.10, 1e-12);
  // Idle slots are skipped, mirroring the MRE guard.
  tracker.Add(0.0, 50.0);
  EXPECT_EQ(tracker.count(), 2u);
  tracker.Add(100.0, 100.0);
  tracker.Add(100.0, 100.0);
  EXPECT_TRUE(tracker.full());
  EXPECT_NEAR(tracker.mean(), 0.05, 1e-12);
  tracker.Reset();
  EXPECT_EQ(tracker.count(), 0u);
}

// ---- Ensemble -------------------------------------------------------------

TEST(EnsembleTest, StartsOnBestMemberAfterFit) {
  EnsembleOptions options;
  options.epoch_slots = kPeriod;
  options.score_window = kPeriod;
  EnsemblePredictor ensemble(options);
  ensemble.AddMember(SmallSpar());
  ensemble.AddMember(std::make_unique<LastValuePredictor>());
  ASSERT_EQ(ensemble.member_count(), 2u);

  // On a clean periodic series SPAR is near-exact while last-value lags
  // the sinusoid; the fit-time backtest must pick SPAR immediately.
  const TimeSeries series = PeriodicSeries(10, 0.0, 1);
  ASSERT_TRUE(ensemble.Fit(series).ok());
  EXPECT_EQ(ensemble.active_index(), 0u);
  EXPECT_EQ(ensemble.active_name(), "SPAR");

  // Inverse-error weights are maintained in both modes: near-exact SPAR
  // dwarfs the lagging last-value model.
  const std::vector<double> weights = ensemble.weights();
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_GT(weights[0], weights[1]);
  EXPECT_NEAR(weights[0] + weights[1], 1.0, 1e-9);
}

TEST(EnsembleTest, SwitchesWhenTheBestMemberChanges) {
  // After the periodicity doubles, the stale SPAR weights average the
  // two alternating profiles, while a 2-period seasonal-naive reads the
  // correct day straight from the history — the ensemble must re-select
  // within an epoch or two.
  EnsembleOptions options;
  options.epoch_slots = kPeriod / 2;
  options.score_window = kPeriod / 2;
  EnsemblePredictor ensemble(options);
  ensemble.AddMember(SmallSpar());
  ensemble.AddMember(
      std::make_unique<SeasonalNaivePredictor>(2 * kPeriod));

  const size_t shift_at = 10 * kPeriod;
  const TimeSeries series = RandomProfileSeries(14, 0.01, 1, shift_at);
  ASSERT_TRUE(ensemble.Fit(series.Slice(0, shift_at)).ok());
  ASSERT_EQ(ensemble.active_name(), "SPAR");
  for (size_t t = shift_at; t < series.size(); ++t) {
    ASSERT_TRUE(ensemble.Update(series.Slice(0, t + 1)).ok());
  }
  EXPECT_GE(ensemble.switches(), 1u);
  EXPECT_EQ(ensemble.active_name(), "SeasonalNaive");
}

TEST(EnsembleTest, WeightModeNormalizesWeights) {
  EnsembleOptions options;
  options.mode = EnsembleMode::kWeight;
  options.epoch_slots = kPeriod;
  options.score_window = kPeriod;
  EnsemblePredictor ensemble(options);
  ensemble.AddMember(SmallSpar());
  ensemble.AddMember(std::make_unique<LastValuePredictor>());
  const TimeSeries series = PeriodicSeries(10, 0.01, 2);
  ASSERT_TRUE(ensemble.Fit(series).ok());
  const std::vector<double> weights = ensemble.weights();
  ASSERT_EQ(weights.size(), 2u);
  double sum = 0.0;
  for (const double w : weights) {
    EXPECT_GT(w, 0.0);
    sum += w;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  const StatusOr<double> prediction = ensemble.PredictAhead(series, 1);
  ASSERT_TRUE(prediction.ok());
  EXPECT_GT(*prediction, 0.0);
}

// ---- Refit policies -------------------------------------------------------

TEST(RefitPolicyTest, IntervalPolicyKeepsCadence) {
  IntervalRefitPolicy policy(3);
  EXPECT_FALSE(policy.wants_residuals());
  size_t refits = 0;
  RefitSignal signal;
  signal.fitted = true;
  for (size_t slot = 1; slot <= 12; ++slot) {
    ++signal.slots_since_fit;
    if (policy.ShouldRefit(signal)) {
      policy.OnRefit(true);
      signal.slots_since_fit = 0;
      ++refits;
    }
  }
  EXPECT_EQ(refits, 4u);
}

TEST(RefitPolicyTest, ShiftPolicyTriggersOnResidualJump) {
  ShiftRefitPolicyOptions options;
  options.window = 16;
  options.threshold = 2.0;
  options.min_mre = 0.05;
  options.cooldown = 32;
  options.max_interval = 100000;
  ShiftRefitPolicy policy(options);
  EXPECT_TRUE(policy.wants_residuals());

  RefitSignal signal;
  signal.fitted = true;
  signal.has_residual = true;
  signal.actual = 100.0;
  // Calm phase: 2% residuals build the baseline, no triggers.
  signal.predicted = 102.0;
  for (size_t slot = 0; slot < 200; ++slot) {
    ++signal.slots_since_fit;
    ASSERT_FALSE(policy.ShouldRefit(signal)) << "slot " << slot;
  }
  EXPECT_EQ(policy.triggered_refits(), 0u);
  // Shift: 40% residuals push the rolling mean past 2x baseline.
  signal.predicted = 140.0;
  bool triggered = false;
  for (size_t slot = 0; slot < 64 && !triggered; ++slot) {
    ++signal.slots_since_fit;
    triggered = policy.ShouldRefit(signal);
    if (triggered) {
      // The degraded window is visible at trigger time; OnRefit resets
      // the tracker for the refreshed model.
      EXPECT_GT(policy.recent_mean(), 0.05);
      policy.OnRefit(true);
    }
  }
  EXPECT_TRUE(triggered);
  EXPECT_EQ(policy.triggered_refits(), 1u);
}

TEST(RefitPolicyTest, ParseRoundTripsAndRejectsUnknown) {
  StatusOr<std::unique_ptr<RefitPolicy>> interval =
      ParseRefitPolicy("interval(slots=10)");
  ASSERT_TRUE(interval.ok());
  EXPECT_EQ((*interval)->name(), "interval");
  StatusOr<std::unique_ptr<RefitPolicy>> shift =
      ParseRefitPolicy("shift(window=64,threshold=3.0)");
  ASSERT_TRUE(shift.ok());
  EXPECT_EQ((*shift)->name(), "shift");
  EXPECT_FALSE(ParseRefitPolicy("cron(daily)").ok());
  EXPECT_FALSE(ParseRefitPolicy("interval(slots=zero)").ok());
}

TEST(OnlinePredictorTest, CountsRefitsThroughThePolicy) {
  OnlinePredictorOptions options;
  options.refit_interval = kPeriod;
  options.training_window = 6 * kPeriod;
  options.inflation = 1.0;
  OnlinePredictor online(SmallSpar(), options);
  const TimeSeries series = PeriodicSeries(12, 0.01, 5);
  ASSERT_TRUE(online.Warmup(series.Slice(0, 8 * kPeriod)).ok());
  EXPECT_EQ(online.refits(), 1u);  // the warmup fit
  for (size_t t = 8 * kPeriod; t < series.size(); ++t) {
    online.Observe(series[t]);
  }
  // 4 periods observed at a 1-period cadence.
  EXPECT_EQ(online.refits(), 5u);
  EXPECT_TRUE(online.fitted());
}

// ---- Backtest harness -----------------------------------------------------

TEST(BacktestTest, RanksSparAboveLastValueOnPeriodicSeries) {
  const StatusOr<std::vector<PredictorSpec>> specs =
      ParsePredictorSpecList("last_value,spar(n=3,m=6)");
  ASSERT_TRUE(specs.ok());
  const TimeSeries series = PeriodicSeries(12, 0.01, 9);
  BacktestOptions options;
  options.eval_begin = 8 * kPeriod;
  options.horizon = 4;
  const StatusOr<BacktestResult> result =
      RunBacktest(*specs, series, SmallContext(), options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->models.size(), 2u);
  const BacktestModelResult& last_value = result->models[0];
  const BacktestModelResult& spar = result->models[1];
  ASSERT_TRUE(last_value.ok);
  ASSERT_TRUE(spar.ok);
  // All models score the same slots, so the errors are comparable.
  EXPECT_EQ(last_value.one_step_samples, spar.one_step_samples);
  EXPECT_EQ(last_value.horizon_samples, spar.horizon_samples);
  EXPECT_LT(spar.one_step_mre, last_value.one_step_mre);
  EXPECT_EQ(spar.rank, 1u);
  EXPECT_EQ(last_value.rank, 2u);
  EXPECT_GT(spar.horizon_samples, 0u);
}

TEST(BacktestTest, FailedSpecIsReportedNotFatal) {
  // ar(p=200) cannot fit 12 periods of data; the harness must carry the
  // error and still rank the healthy model.
  const StatusOr<std::vector<PredictorSpec>> specs =
      ParsePredictorSpecList("ar(p=2000),spar(n=3,m=6)");
  ASSERT_TRUE(specs.ok());
  const TimeSeries series = PeriodicSeries(12, 0.01, 9);
  BacktestOptions options;
  options.eval_begin = 8 * kPeriod;
  options.horizon = 4;
  const StatusOr<BacktestResult> result =
      RunBacktest(*specs, series, SmallContext(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->models[0].ok);
  EXPECT_FALSE(result->models[0].error.empty());
  EXPECT_EQ(result->models[0].rank, 0u);
  EXPECT_TRUE(result->models[1].ok);
  EXPECT_EQ(result->models[1].rank, 1u);
}

TEST(BacktestTest, ShiftAwareBeatsStaticSparAfterStepChange) {
  // The acceptance shape for fig. 13 in miniature: train both models on
  // pre-shift data, walk them through a swapped daily profile with no
  // harness re-fits, and score the post-shift focus window. The static
  // SPAR stays stale; the shift wrapper re-fits onto the new shape.
  const size_t shift_at = 10 * kPeriod;
  const TimeSeries series = RandomProfileSeries(20, 0.01, 11, shift_at);
  const StatusOr<std::vector<PredictorSpec>> specs = ParsePredictorSpecList(
      "spar(n=3,m=6),"
      "shift(spar(n=3,m=6),window=24,threshold=1.5,min_mre=0.05,"
      "cooldown=96,refit_window=240)");
  ASSERT_TRUE(specs.ok());
  BacktestOptions options;
  options.eval_begin = shift_at;
  options.horizon = 4;
  options.refit_epoch = 0;  // adaptivity must come from the model
  options.focus_begin = 15 * kPeriod;
  options.focus_end = 20 * kPeriod;
  const StatusOr<BacktestResult> result =
      RunBacktest(*specs, series, SmallContext(), options);
  ASSERT_TRUE(result.ok());
  const BacktestModelResult& spar = result->models[0];
  const BacktestModelResult& shift = result->models[1];
  ASSERT_TRUE(spar.ok);
  ASSERT_TRUE(shift.ok);
  ASSERT_GT(spar.focus_mre_samples, 0u);
  // The stale weights average the alternating profiles — a persistent
  // double-digit error; the shift-aware wrapper re-fitted
  // (updates_changed counts it) and recovered.
  EXPECT_GT(spar.focus_mre, 0.10);
  EXPECT_GE(shift.updates_changed, 1u);
  EXPECT_LT(shift.focus_mre, 0.5 * spar.focus_mre);
}

TEST(BacktestTest, CsvHasHeaderAndOneRowPerModel) {
  const StatusOr<std::vector<PredictorSpec>> specs =
      ParsePredictorSpecList("last_value,spar(n=3,m=6)");
  ASSERT_TRUE(specs.ok());
  const TimeSeries series = PeriodicSeries(10, 0.01, 9);
  BacktestOptions options;
  options.eval_begin = 8 * kPeriod;
  options.horizon = 2;
  const StatusOr<BacktestResult> result =
      RunBacktest(*specs, series, SmallContext(), options);
  ASSERT_TRUE(result.ok());
  const std::string csv = BacktestCsv(*result);
  size_t lines = 0;
  for (const char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3u);  // header + 2 models
  EXPECT_EQ(csv.rfind(BacktestCsvHeader(), 0), 0u);
  EXPECT_NE(csv.find("spar"), std::string::npos);
}

// ---- Idle-window MRE guard ------------------------------------------------

TEST(EvaluatePredictorTest, IdleWindowReportsZeroMreWithNoSamples) {
  // Load drops to zero over the whole evaluation window: MRE must come
  // back 0 with mre_samples == 0 instead of dividing by ~0 (regression
  // guard for the kMreMinActual fix); MAE still measures the miss.
  TimeSeries series(60.0);
  for (size_t t = 0; t < 100; ++t) series.Append(50.0);
  for (size_t t = 0; t < 20; ++t) series.Append(0.0);
  LastValuePredictor last_value;
  ASSERT_TRUE(last_value.Fit(series.Slice(0, 100)).ok());
  const StatusOr<EvaluationResult> eval =
      EvaluatePredictor(last_value, series, 105, 1);
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(eval->mre, 0.0);
  EXPECT_EQ(eval->mre_samples, 0u);
  EXPECT_GT(eval->actual.size(), 0u);
  EXPECT_GE(eval->mae, 0.0);
}

TEST(EvaluatePredictorTest, MixedWindowCountsOnlyNonIdleSlots) {
  TimeSeries series(60.0);
  for (size_t t = 0; t < 100; ++t) series.Append(50.0);
  for (size_t t = 0; t < 10; ++t) series.Append((t % 2 == 0) ? 50.0 : 0.0);
  LastValuePredictor last_value;
  ASSERT_TRUE(last_value.Fit(series.Slice(0, 100)).ok());
  const StatusOr<EvaluationResult> eval =
      EvaluatePredictor(last_value, series, 100, 1);
  ASSERT_TRUE(eval.ok());
  EXPECT_LT(eval->mre_samples, eval->actual.size());
  EXPECT_GT(eval->mre_samples, 0u);
}

}  // namespace
}  // namespace pstore
