#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "b2w/procedures.h"
#include "b2w/workload.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/time_series.h"
#include "controller/controller.h"
#include "controller/predictive_controller.h"
#include "controller/reactive_controller.h"
#include "controller/simple_controller.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/metrics.h"
#include "engine/txn_executor.h"
#include "engine/workload_driver.h"
#include "migration/squall_migrator.h"
#include "prediction/naive_models.h"
#include "prediction/online_predictor.h"

namespace pstore {
namespace {

// Shared harness: a small cluster running the B2W workload from an
// explicit txn/s trace, with a migration manager slow enough that
// proactive vs. reactive timing matters.
struct Harness {
  explicit Harness(TimeSeries trace_txn_per_s, int initial_nodes)
      : trace(std::move(trace_txn_per_s)),
        cluster(MakeClusterOptions(initial_nodes)),
        metrics(1.0),
        executor(&cluster, &metrics, ExecutorOptions{}),
        migration(&loop, &cluster, &metrics, MakeMigrationOptions()),
        workload(MakeWorkloadOptions()) {
    PSTORE_CHECK_OK(b2w::RegisterProcedures(&executor));
    PSTORE_CHECK_OK(workload.LoadInitialData(&cluster));
    DriverOptions driver_options;
    driver_options.slot_sim_seconds = 6.0;
    driver_options.rate_factor = 1.0;  // trace already in txn/s
    driver_options.seed = 21;
    driver = std::make_unique<WorkloadDriver>(
        &loop, &executor, trace,
        [this](Rng& rng) { return workload.NextTransaction(rng); },
        driver_options);
    metrics.RecordMachines(0, cluster.active_nodes());
  }

  static ClusterOptions MakeClusterOptions(int initial_nodes) {
    ClusterOptions options;
    options.partitions_per_node = 6;
    options.max_nodes = 10;
    options.initial_nodes = initial_nodes;
    options.num_buckets = 1200;
    return options;
  }
  static MigrationOptions MakeMigrationOptions() {
    MigrationOptions options;
    options.net_rate_bytes_per_sec = 200e3;
    options.chunk_spacing_seconds = 0.5;
    options.chunk_bytes = 256 * 1024;
    options.extract_rate_bytes_per_sec = 20e6;
    return options;
  }
  static b2w::B2wWorkloadOptions MakeWorkloadOptions() {
    b2w::B2wWorkloadOptions options;
    options.cart_pool = 20000;
    options.checkout_pool = 8000;
    return options;
  }

  PredictiveControllerOptions MakePredictiveOptions() const {
    PredictiveControllerOptions options;
    options.slot_sim_seconds = 6.0;
    options.plan_slot_factor = 5;       // plan on 30 s slots
    options.horizon_plan_slots = 20;    // 600 s lookahead
    options.planner_params.target_rate_per_node = 285.0;
    options.planner_params.max_rate_per_node = 350.0;
    options.planner_params.partitions_per_node = 6;
    options.planner_params.d_slots =
        SingleThreadFullMigrationSeconds(cluster.TotalDataBytes(),
                                         MakeMigrationOptions()) /
        30.0;
    return options;
  }

  // An oracle wrapped for the online interface: observes measurements
  // but forecasts from the reference trace.
  std::unique_ptr<OnlinePredictor> MakeOracle(const TimeSeries& truth,
                                              double inflation = 1.1) {
    OnlinePredictorOptions options;
    options.inflation = inflation;
    options.refit_interval = 1u << 30;
    options.training_window = 10;
    auto online = std::make_unique<OnlinePredictor>(
        std::make_unique<OraclePredictor>(truth), options);
    PSTORE_CHECK_OK(online->Warmup(truth.Slice(0, 1)));
    return online;
  }

  void RunFor(SimTime duration) {
    driver->Start(loop.now() + duration);
    loop.RunUntil(loop.now() + duration);
  }

  TimeSeries trace;
  EventLoop loop;
  Cluster cluster;
  MetricsCollector metrics;
  TxnExecutor executor;
  MigrationManager migration;
  b2w::Workload workload;
  std::unique_ptr<WorkloadDriver> driver;
};

TimeSeries StepTrace(size_t slots, size_t step_at, double before,
                     double after) {
  TimeSeries trace(6.0);
  for (size_t i = 0; i < slots; ++i) {
    trace.Append(i < step_at ? before : after);
  }
  return trace;
}

TEST(PredictiveControllerTest, ScalesOutBeforePredictedRamp) {
  // Load steps 300 -> 800 txn/s at slot 120 (t = 720 s): 2 nodes
  // suffice before, 3 are needed after. With an oracle predictor the
  // controller must complete the scale-out before the ramp arrives.
  const TimeSeries trace = StepTrace(240, 120, 300.0, 800.0);
  Harness harness(trace, 2);
  auto oracle = harness.MakeOracle(trace);
  PredictiveController controller(&harness.loop, &harness.cluster,
                                  &harness.executor, &harness.migration,
                                  oracle.get(),
                                  harness.MakePredictiveOptions());
  controller.Start();

  harness.driver->Start(240 * 6 * kSecond);
  // Run right up to the ramp: the scale-out must at least be underway
  // (machines for a small move come up at the start of the move), and
  // the Q-hat - Q slack covers any residual migration overlap.
  harness.loop.RunUntil(119 * 6 * kSecond);
  EXPECT_GE(harness.cluster.active_nodes(), 3)
      << "controller failed to scale out ahead of the predicted ramp";
  // Shortly after the ramp the move must have completed.
  harness.loop.RunUntil(130 * 6 * kSecond);
  EXPECT_FALSE(harness.migration.InProgress());
  EXPECT_GE(harness.cluster.active_nodes(), 3);
  harness.loop.RunUntil(240 * 6 * kSecond);

  EXPECT_GE(controller.reconfigurations_started(), 1);
  const auto windows = harness.metrics.Finalize(240 * 6 * kSecond);
  const SlaViolations violations =
      MetricsCollector::CountViolations(windows);
  EXPECT_EQ(violations.p50, 0);
  EXPECT_LE(violations.p99, 3);
}

TEST(PredictiveControllerTest, ScaleInWaitsForConfirmation) {
  // Load drops 700 -> 150 at slot 40 (700 * 1.1 inflation still fits in
  // 3 nodes). With a huge confirmation requirement the controller must
  // never scale in; with the default (3 cycles) it must.
  const TimeSeries trace = StepTrace(200, 40, 700.0, 150.0);
  for (const int confirm_cycles : {1000, 3}) {
    Harness harness(trace, 3);
    auto oracle = harness.MakeOracle(trace);
    PredictiveControllerOptions options = harness.MakePredictiveOptions();
    options.scale_in_confirm_cycles = confirm_cycles;
    PredictiveController controller(&harness.loop, &harness.cluster,
                                    &harness.executor, &harness.migration,
                                    oracle.get(), options);
    controller.Start();
    harness.RunFor(200 * 6 * kSecond);
    if (confirm_cycles == 1000) {
      EXPECT_EQ(harness.cluster.active_nodes(), 3);
    } else {
      EXPECT_LT(harness.cluster.active_nodes(), 3);
    }
  }
}

TEST(PredictiveControllerTest, FallsBackWhenSpikeUnpredicted) {
  // The oracle believes load stays at 300 txn/s, but the actual driver
  // ramps to 900 at slot 60: no feasible plan exists once the spike is
  // measured, so the reactive fallback must kick in (§4.3.1).
  const TimeSeries believed = StepTrace(300, 300, 300.0, 300.0);
  const TimeSeries actual = StepTrace(300, 60, 300.0, 900.0);
  Harness harness(actual, 2);
  auto oracle = harness.MakeOracle(believed, /*inflation=*/1.0);
  PredictiveController controller(&harness.loop, &harness.cluster,
                                  &harness.executor, &harness.migration,
                                  oracle.get(),
                                  harness.MakePredictiveOptions());
  controller.Start();
  harness.RunFor(300 * 6 * kSecond);
  EXPECT_GE(controller.infeasible_plans(), 1);
  EXPECT_GE(harness.cluster.active_nodes(), 4);  // ceil(900/285) = 4
}


TEST(PredictiveControllerTest, PegsAtMaxNodesWhenDemandExceedsCluster) {
  // The oracle predicts demand needing ~14 machines but the cluster has
  // only 10: the controller must scale to the ceiling and stay there,
  // not stall retrying an impossible target.
  const TimeSeries trace = StepTrace(240, 60, 300.0, 3800.0);
  Harness harness(trace, 3);
  auto oracle = harness.MakeOracle(trace);
  PredictiveController controller(&harness.loop, &harness.cluster,
                                  &harness.executor, &harness.migration,
                                  oracle.get(),
                                  harness.MakePredictiveOptions());
  controller.Start();
  harness.RunFor(240 * 6 * kSecond);
  EXPECT_EQ(harness.cluster.active_nodes(),
            harness.cluster.options().max_nodes);
  EXPECT_GE(controller.reconfigurations_started(), 1);
}

TEST(ReactiveControllerTest, ReconfiguresOnlyAfterOverload) {
  const TimeSeries trace = StepTrace(240, 120, 300.0, 800.0);
  Harness harness(trace, 2);
  ReactiveControllerOptions options;
  options.slot_sim_seconds = 6.0;
  options.planner_params.target_rate_per_node = 285.0;
  options.planner_params.max_rate_per_node = 350.0;
  options.planner_params.partitions_per_node = 6;
  ReactiveController controller(&harness.loop, &harness.cluster,
                                &harness.executor, &harness.migration,
                                options);
  controller.Start();

  harness.driver->Start(240 * 6 * kSecond);
  harness.loop.RunUntil(119 * 6 * kSecond);
  // Before the ramp there is nothing to react to.
  EXPECT_EQ(harness.cluster.active_nodes(), 2);
  harness.loop.RunUntil(240 * 6 * kSecond);
  EXPECT_GE(harness.cluster.active_nodes(), 3);
  EXPECT_GE(controller.scale_outs(), 1);

  // Reacting late causes SLA violations around the ramp (the paper's
  // core observation about reactive systems).
  const auto windows = harness.metrics.Finalize(240 * 6 * kSecond);
  const SlaViolations violations =
      MetricsCollector::CountViolations(windows);
  EXPECT_GE(violations.p99, 1);
}

TEST(ReactiveControllerTest, ScalesInAfterSustainedLowLoad) {
  const TimeSeries trace = StepTrace(200, 20, 800.0, 120.0);
  Harness harness(trace, 3);
  ReactiveControllerOptions options;
  options.slot_sim_seconds = 6.0;
  options.low_slots_required = 5;
  options.planner_params.target_rate_per_node = 285.0;
  options.planner_params.max_rate_per_node = 350.0;
  options.planner_params.partitions_per_node = 6;
  ReactiveController controller(&harness.loop, &harness.cluster,
                                &harness.executor, &harness.migration,
                                options);
  controller.Start();
  harness.RunFor(200 * 6 * kSecond);
  EXPECT_LT(harness.cluster.active_nodes(), 3);
  EXPECT_GE(controller.scale_ins(), 1);
}

TEST(SimpleControllerTest, FollowsTimeOfDaySchedule) {
  // Flat tiny load; the simple controller reconfigures purely by clock.
  TimeSeries trace(6.0, std::vector<double>(400, 50.0));
  Harness harness(trace, 2);
  SimpleControllerOptions options;
  options.slot_sim_seconds = 6.0;
  options.slots_per_day = 100;  // compressed "day"
  options.up_slot = 30;
  options.down_slot = 70;
  options.day_nodes = 4;
  options.night_nodes = 2;
  SimpleController controller(&harness.loop, &harness.cluster,
                              &harness.migration, options);
  EXPECT_EQ(controller.DesiredNodes(0), 2);
  EXPECT_EQ(controller.DesiredNodes(30), 4);
  EXPECT_EQ(controller.DesiredNodes(69), 4);
  EXPECT_EQ(controller.DesiredNodes(70), 2);

  controller.Start();
  harness.driver->Start(400 * 6 * kSecond);
  // Mid-"day" of the first day.
  harness.loop.RunUntil(55 * 6 * kSecond);
  EXPECT_EQ(harness.cluster.active_nodes(), 4);
  // "Night" of the first day.
  harness.loop.RunUntil(95 * 6 * kSecond);
  EXPECT_EQ(harness.cluster.active_nodes(), 2);
  // "Day" again on day 2.
  harness.loop.RunUntil(155 * 6 * kSecond);
  EXPECT_EQ(harness.cluster.active_nodes(), 4);
}

TEST(LoadMonitorTest, RatesAreDeltas) {
  Cluster cluster(Harness::MakeClusterOptions(1));
  TxnExecutor executor(&cluster, nullptr, ExecutorOptions{});
  ASSERT_TRUE(b2w::RegisterProcedures(&executor).ok());
  LoadMonitor monitor(&executor, 10.0);
  b2w::Workload workload(b2w::B2wWorkloadOptions{});
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    executor.Submit(workload.NextTransaction(rng), 0);
  }
  EXPECT_NEAR(monitor.SampleSlotRate(), 5.0, 1e-9);
  EXPECT_NEAR(monitor.SampleSlotRate(), 0.0, 1e-9);
}

}  // namespace
}  // namespace pstore
