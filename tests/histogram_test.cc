#include "common/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace pstore {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_EQ(h.mean(), 42.0);
  EXPECT_EQ(h.ValueAtQuantile(0.0), 42);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 42);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 42);
}

TEST(HistogramTest, SmallValuesAreExact) {
  // Values below 64 get their own buckets, so quantiles are exact.
  Histogram h;
  for (int64_t v = 0; v < 64; ++v) h.Record(v);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 31);
  EXPECT_EQ(h.ValueAtQuantile(0.25), 15);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 63);
}

TEST(HistogramTest, NegativeClampsToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 0);
}

TEST(HistogramTest, RecordMultiple) {
  Histogram h;
  h.RecordMultiple(10, 5);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.mean(), 10.0);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  a.Record(5);
  a.Record(1000);
  b.Record(7);
  b.Record(1u << 20);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4);
  EXPECT_EQ(a.min(), 5);
  EXPECT_EQ(a.max(), 1 << 20);
}

TEST(HistogramTest, MergeIntoEmpty) {
  Histogram a;
  Histogram b;
  b.Record(123);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1);
  EXPECT_EQ(a.min(), 123);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(77);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0);
}

TEST(HistogramTest, QuantileNeverBelowTrueQuantileBucketBound) {
  // The returned value is the upper edge of the containing bucket, so it
  // must be >= the exact quantile and within ~2x relative error.
  Rng rng(3);
  Histogram h;
  std::vector<int64_t> values;
  for (int i = 0; i < 20000; ++i) {
    const int64_t v = static_cast<int64_t>(rng.NextExponential(50000.0));
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const int64_t exact = values[static_cast<size_t>(q * values.size())];
    const int64_t approx = h.ValueAtQuantile(q);
    EXPECT_GE(approx, static_cast<int64_t>(exact * 0.95));
    EXPECT_LE(approx, static_cast<int64_t>(exact * 1.06) + 1);
  }
}

class HistogramRelativeErrorTest
    : public ::testing::TestWithParam<int64_t> {};

TEST_P(HistogramRelativeErrorTest, SingleValueRoundTripsWithinBucketError) {
  const int64_t value = GetParam();
  Histogram h;
  h.Record(value);
  const int64_t got = h.ValueAtQuantile(1.0);
  // Upper edge is capped at max() == value, so exact here.
  EXPECT_EQ(got, value);
  // And the mean is tracked exactly regardless of bucketing.
  EXPECT_EQ(h.mean(), static_cast<double>(value));
}

INSTANTIATE_TEST_SUITE_P(AcrossMagnitudes, HistogramRelativeErrorTest,
                         ::testing::Values(0, 1, 63, 64, 65, 127, 128, 1000,
                                           4095, 65536, 1000000,
                                           int64_t{1} << 40));

TEST(HistogramTest, MixedMagnitudesKeepOrdering) {
  Histogram h;
  for (int i = 0; i < 900; ++i) h.Record(100);
  for (int i = 0; i < 100; ++i) h.Record(1000000);
  EXPECT_LE(h.ValueAtQuantile(0.5), 105);
  EXPECT_GE(h.ValueAtQuantile(0.95), 1000000 * 0.9);
}

}  // namespace
}  // namespace pstore
