#include "engine/event_loop.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/sim_time.h"

namespace pstore {
namespace {

TEST(EventLoopTest, StartsAtZero) {
  EventLoop loop;
  EXPECT_EQ(loop.now(), 0);
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(EventLoopTest, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(30, [&] { order.push_back(3); });
  loop.ScheduleAt(10, [&] { order.push_back(1); });
  loop.ScheduleAt(20, [&] { order.push_back(2); });
  loop.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoopTest, TiesBreakInSchedulingOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(10, [&] { order.push_back(1); });
  loop.ScheduleAt(10, [&] { order.push_back(2); });
  loop.ScheduleAt(10, [&] { order.push_back(3); });
  loop.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoopTest, RunUntilStopsAtBoundary) {
  EventLoop loop;
  std::vector<int> fired;
  loop.ScheduleAt(10, [&] { fired.push_back(10); });
  loop.ScheduleAt(20, [&] { fired.push_back(20); });
  loop.ScheduleAt(30, [&] { fired.push_back(30); });
  loop.RunUntil(20);
  EXPECT_EQ(fired, (std::vector<int>{10, 20}));
  EXPECT_EQ(loop.now(), 20);
  EXPECT_EQ(loop.pending_events(), 1u);
  loop.RunUntil(100);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_EQ(loop.now(), 100);
}

TEST(EventLoopTest, EventsScheduleMoreEvents) {
  EventLoop loop;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 5) loop.ScheduleAfter(10, chain);
  };
  loop.ScheduleAt(0, chain);
  loop.RunToCompletion();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(loop.now(), 40);
}

TEST(EventLoopTest, SchedulingInThePastClampsToNow) {
  EventLoop loop;
  SimTime fired_at = -1;
  loop.ScheduleAt(50, [&] {
    loop.ScheduleAt(10, [&] { fired_at = loop.now(); });
  });
  loop.RunToCompletion();
  EXPECT_EQ(fired_at, 50);
}

TEST(EventLoopTest, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  SimTime fired_at = -1;
  loop.ScheduleAt(100, [&] {
    loop.ScheduleAfter(25, [&] { fired_at = loop.now(); });
  });
  loop.RunToCompletion();
  EXPECT_EQ(fired_at, 125);
}

TEST(EventLoopTest, RunUntilWithEmptyQueueAdvancesTime) {
  EventLoop loop;
  loop.RunUntil(1000);
  EXPECT_EQ(loop.now(), 1000);
}

TEST(EventLoopTest, RunUntilAdvancesToEndWhenQueueDrainsEarly) {
  // The queue empties mid-run (last event at 40), but the clock must
  // still land exactly on the requested boundary.
  EventLoop loop;
  std::vector<int> fired;
  loop.ScheduleAt(10, [&] { fired.push_back(10); });
  loop.ScheduleAt(40, [&] { fired.push_back(40); });
  loop.RunUntil(500);
  EXPECT_EQ(fired, (std::vector<int>{10, 40}));
  EXPECT_EQ(loop.now(), 500);
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(EventLoopTest, ScheduleAfterAnEarlyDrainAnchorsAtTheBoundary) {
  // Companion to the test above, pinning the documented contract: after
  // RunUntil(end) the clock is `end` even if the queue drained earlier,
  // so a relative ScheduleAfter(d) fires at end + d — NOT at
  // last-event-time + d, which is what the header used to claim.
  EventLoop loop;
  loop.ScheduleAt(40, [] {});
  loop.RunUntil(500);
  ASSERT_EQ(loop.now(), 500);
  SimTime fired_at = -1;
  loop.ScheduleAfter(10, [&] { fired_at = loop.now(); });
  loop.RunToCompletion();
  EXPECT_EQ(fired_at, 510);
}

TEST(EventLoopTest, PreEventHookRunsBeforeEveryEvent) {
  // The sharded engine installs its window barrier as the pre-event
  // hook: it must run once per event, after the clock has advanced to
  // the event's time but before its callback, in both run modes.
  EventLoop loop;
  std::vector<SimTime> hook_times;
  std::vector<int> order;
  loop.set_pre_event_hook([&] {
    hook_times.push_back(loop.now());
    order.push_back(0);
  });
  loop.ScheduleAt(10, [&] { order.push_back(1); });
  loop.ScheduleAt(20, [&] { order.push_back(2); });
  loop.RunUntil(15);
  loop.RunToCompletion();
  EXPECT_EQ(hook_times, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 2}));
  // An empty-queue time advance has no events, hence no hook firing.
  loop.RunUntil(100);
  EXPECT_EQ(hook_times.size(), 2u);
}

TEST(EventLoopTest, TiesScheduledFromRunningEventsStayFifo) {
  // Events scheduled for an already-reached timestamp from inside a
  // running event run after earlier same-timestamp events, in the order
  // they were scheduled.
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(10, [&] {
    order.push_back(1);
    loop.ScheduleAt(10, [&] { order.push_back(3); });
    loop.ScheduleAt(10, [&] { order.push_back(4); });
  });
  loop.ScheduleAt(10, [&] { order.push_back(2); });
  loop.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(loop.now(), 10);
}

TEST(EventLoopTest, PastClampedEventsKeepFifoWithPresentEvents) {
  // A past-clamped event lands at now() and runs after events already
  // queued for now(), preserving scheduling order among the clamped.
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(50, [&] {
    order.push_back(1);
    loop.ScheduleAt(7, [&] { order.push_back(3); });   // clamped to 50
    loop.ScheduleAt(0, [&] { order.push_back(4); });   // clamped to 50
    loop.ScheduleAt(50, [&] { order.push_back(5); });
  });
  loop.ScheduleAt(50, [&] { order.push_back(2); });
  loop.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(loop.now(), 50);
}

TEST(EventLoopTest, ScheduleAtNowRunsInsideCurrentRun) {
  EventLoop loop;
  SimTime fired_at = -1;
  loop.ScheduleAt(20, [&] {
    loop.ScheduleAt(loop.now(), [&] { fired_at = loop.now(); });
  });
  loop.RunUntil(20);
  EXPECT_EQ(fired_at, 20);
  EXPECT_EQ(loop.pending_events(), 0u);
}

}  // namespace
}  // namespace pstore
