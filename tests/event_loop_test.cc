#include "engine/event_loop.h"

#include <gtest/gtest.h>

#include <vector>

namespace pstore {
namespace {

TEST(EventLoopTest, StartsAtZero) {
  EventLoop loop;
  EXPECT_EQ(loop.now(), 0);
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(EventLoopTest, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(30, [&] { order.push_back(3); });
  loop.ScheduleAt(10, [&] { order.push_back(1); });
  loop.ScheduleAt(20, [&] { order.push_back(2); });
  loop.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoopTest, TiesBreakInSchedulingOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(10, [&] { order.push_back(1); });
  loop.ScheduleAt(10, [&] { order.push_back(2); });
  loop.ScheduleAt(10, [&] { order.push_back(3); });
  loop.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoopTest, RunUntilStopsAtBoundary) {
  EventLoop loop;
  std::vector<int> fired;
  loop.ScheduleAt(10, [&] { fired.push_back(10); });
  loop.ScheduleAt(20, [&] { fired.push_back(20); });
  loop.ScheduleAt(30, [&] { fired.push_back(30); });
  loop.RunUntil(20);
  EXPECT_EQ(fired, (std::vector<int>{10, 20}));
  EXPECT_EQ(loop.now(), 20);
  EXPECT_EQ(loop.pending_events(), 1u);
  loop.RunUntil(100);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_EQ(loop.now(), 100);
}

TEST(EventLoopTest, EventsScheduleMoreEvents) {
  EventLoop loop;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 5) loop.ScheduleAfter(10, chain);
  };
  loop.ScheduleAt(0, chain);
  loop.RunToCompletion();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(loop.now(), 40);
}

TEST(EventLoopTest, SchedulingInThePastClampsToNow) {
  EventLoop loop;
  SimTime fired_at = -1;
  loop.ScheduleAt(50, [&] {
    loop.ScheduleAt(10, [&] { fired_at = loop.now(); });
  });
  loop.RunToCompletion();
  EXPECT_EQ(fired_at, 50);
}

TEST(EventLoopTest, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  SimTime fired_at = -1;
  loop.ScheduleAt(100, [&] {
    loop.ScheduleAfter(25, [&] { fired_at = loop.now(); });
  });
  loop.RunToCompletion();
  EXPECT_EQ(fired_at, 125);
}

TEST(EventLoopTest, RunUntilWithEmptyQueueAdvancesTime) {
  EventLoop loop;
  loop.RunUntil(1000);
  EXPECT_EQ(loop.now(), 1000);
}

}  // namespace
}  // namespace pstore
