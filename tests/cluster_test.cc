#include "engine/cluster.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "engine/murmur_hash.h"
#include "engine/partition.h"
#include "engine/table.h"

namespace pstore {
namespace {

ClusterOptions SmallCluster() {
  ClusterOptions options;
  options.partitions_per_node = 2;
  options.max_nodes = 6;
  options.initial_nodes = 2;
  options.num_buckets = 64;
  return options;
}

// ---- MurmurHash ------------------------------------------------------------

TEST(MurmurHashTest, Deterministic) {
  EXPECT_EQ(MurmurHash64(12345), MurmurHash64(12345));
  EXPECT_NE(MurmurHash64(12345), MurmurHash64(12346));
}

TEST(MurmurHashTest, SeedMatters) {
  EXPECT_NE(MurmurHash64(1, 10), MurmurHash64(1, 11));
}

TEST(MurmurHashTest, KnownVectorStability) {
  // Pin the value so accidental algorithm changes are caught: this is
  // the routing function, and changing it silently would reshuffle every
  // bucket.
  const uint64_t h = MurmurHash64A("hello world", 11, 0);
  EXPECT_EQ(h, MurmurHash64A("hello world", 11, 0));
  EXPECT_NE(h, MurmurHash64A("hello worle", 11, 0));
  EXPECT_NE(h, 0u);
}

TEST(MurmurHashTest, UniformityAcrossBuckets) {
  // The paper relies on MurmurHash smoothing skew across partitions
  // (§8.1). Sequential keys must spread near-uniformly over buckets.
  const int buckets = 64;
  std::vector<int> counts(buckets, 0);
  const int n = 64000;
  for (int i = 0; i < n; ++i) {
    ++counts[MurmurHash64(i) % buckets];
  }
  const double expected = static_cast<double>(n) / buckets;
  for (int c : counts) {
    EXPECT_GT(c, expected * 0.85);
    EXPECT_LT(c, expected * 1.15);
  }
}

// ---- Routing ----------------------------------------------------------------

TEST(ClusterTest, InitialBucketLayoutIsEven) {
  Cluster cluster(SmallCluster());
  // 64 buckets over 4 active partitions: 16 each.
  for (int p = 0; p < cluster.total_active_partitions(); ++p) {
    EXPECT_EQ(cluster.BucketsOnPartition(p).size(), 16u);
  }
}

TEST(ClusterTest, RoutingIsConsistent) {
  Cluster cluster(SmallCluster());
  for (uint64_t key = 0; key < 1000; ++key) {
    const BucketId bucket = cluster.BucketForKey(key);
    EXPECT_GE(bucket, 0);
    EXPECT_LT(bucket, 64);
    EXPECT_EQ(cluster.PartitionForKey(key),
              cluster.PartitionOfBucket(bucket));
  }
}

TEST(ClusterTest, NodeOfPartition) {
  Cluster cluster(SmallCluster());
  EXPECT_EQ(cluster.NodeOfPartition(0), 0);
  EXPECT_EQ(cluster.NodeOfPartition(1), 0);
  EXPECT_EQ(cluster.NodeOfPartition(2), 1);
  EXPECT_EQ(cluster.NodeOfPartition(3), 1);
}

// ---- Node lifecycle -------------------------------------------------------------

TEST(ClusterTest, ActivateGrowsOnly) {
  Cluster cluster(SmallCluster());
  EXPECT_TRUE(cluster.ActivateNodes(4).ok());
  EXPECT_EQ(cluster.active_nodes(), 4);
  EXPECT_FALSE(cluster.ActivateNodes(3).ok());
  EXPECT_FALSE(cluster.ActivateNodes(7).ok());  // beyond max_nodes
}

TEST(ClusterTest, DeactivateRequiresEmptyNodes) {
  Cluster cluster(SmallCluster());
  // Node 1's partitions still own buckets: refusal expected.
  EXPECT_FALSE(cluster.DeactivateNodes(1).ok());
  // Move everything to node 0 first.
  for (int b = 0; b < 64; ++b) {
    cluster.MoveBucket(b, b % 2);  // partitions 0 and 1 are node 0
  }
  EXPECT_TRUE(cluster.DeactivateNodes(1).ok());
  EXPECT_EQ(cluster.active_nodes(), 1);
  EXPECT_FALSE(cluster.DeactivateNodes(0).ok());
}

TEST(ClusterTest, MoveBucketCarriesData) {
  Cluster cluster(SmallCluster());
  // Find a key and its bucket; write a row, move the bucket, re-read.
  const uint64_t key = 777;
  const BucketId bucket = cluster.BucketForKey(key);
  const int original_partition = cluster.PartitionOfBucket(bucket);
  Row row;
  row.payload_bytes = 64;
  row.f0 = 123;
  cluster.partition(original_partition).Put(bucket, 0, key, row);

  const int target = (original_partition + 1) % 4;
  cluster.MoveBucket(bucket, target);
  EXPECT_EQ(cluster.PartitionOfBucket(bucket), target);
  EXPECT_EQ(cluster.PartitionForKey(key), target);
  ASSERT_NE(cluster.partition(target).Get(bucket, 0, key), nullptr);
  EXPECT_EQ(cluster.partition(target).Get(bucket, 0, key)->f0, 123);
  EXPECT_EQ(cluster.partition(original_partition).Get(bucket, 0, key),
            nullptr);
}

TEST(ClusterTest, MoveBucketToSamePartitionIsNoOp) {
  Cluster cluster(SmallCluster());
  const int partition = cluster.PartitionOfBucket(5);
  cluster.MoveBucket(5, partition);
  EXPECT_EQ(cluster.PartitionOfBucket(5), partition);
}

TEST(ClusterTest, AssignBucketsEvenlyAfterGrowth) {
  Cluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.ActivateNodes(4).ok());
  cluster.AssignBucketsEvenly();
  for (int p = 0; p < cluster.total_active_partitions(); ++p) {
    EXPECT_EQ(cluster.BucketsOnPartition(p).size(), 8u);
  }
}

TEST(ClusterTest, DataAccounting) {
  Cluster cluster(SmallCluster());
  Row row;
  row.payload_bytes = 100;
  for (uint64_t key = 0; key < 50; ++key) {
    const BucketId bucket = cluster.BucketForKey(key);
    cluster.partition(cluster.PartitionOfBucket(bucket))
        .Put(bucket, 0, key, row);
  }
  EXPECT_EQ(cluster.TotalRowCount(), 50);
  EXPECT_EQ(cluster.TotalDataBytes(), 5000);
  int64_t node_sum = 0;
  for (int n = 0; n < cluster.active_nodes(); ++n) {
    node_sum += cluster.NodeDataBytes(n);
  }
  EXPECT_EQ(node_sum, 5000);
}

TEST(ClusterTest, BucketsOnNodeUnionOfPartitions) {
  Cluster cluster(SmallCluster());
  const auto node0 = cluster.BucketsOnNode(0);
  const auto p0 = cluster.BucketsOnPartition(0);
  const auto p1 = cluster.BucketsOnPartition(1);
  EXPECT_EQ(node0.size(), p0.size() + p1.size());
}

}  // namespace
}  // namespace pstore
