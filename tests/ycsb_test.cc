#include "ycsb/ycsb_workload.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "engine/cluster.h"
#include "engine/metrics.h"
#include "engine/transaction.h"
#include "engine/txn_executor.h"

namespace pstore {
namespace ycsb {
namespace {

ClusterOptions SmallCluster() {
  ClusterOptions options;
  options.partitions_per_node = 2;
  options.max_nodes = 2;
  options.initial_nodes = 2;
  options.num_buckets = 128;
  return options;
}

// ---- Zipf sampler --------------------------------------------------------

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfGenerator zipf(10, 0.0);
  Rng rng(1);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.NextRank(rng)];
  for (int c : counts) {
    EXPECT_NEAR(c, 5000, 500);
  }
}

TEST(ZipfTest, HighThetaConcentratesOnTopRanks) {
  ZipfGenerator zipf(10000, 0.99);
  Rng rng(2);
  int top10 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (zipf.NextRank(rng) < 10) ++top10;
  }
  // With theta = 0.99 over 10k items the top 10 ranks draw a large
  // share (~30%).
  EXPECT_GT(top10, n / 5);
}

TEST(ZipfTest, RanksMonotonicallyPopular) {
  ZipfGenerator zipf(100, 1.2);
  Rng rng(3);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 200000; ++i) ++counts[zipf.NextRank(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[60]);
}

TEST(ZipfTest, KeysStayInRange) {
  ZipfGenerator zipf(1000, 0.99);
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.NextKey(rng), 1000u);
  }
}

// ---- Workload ---------------------------------------------------------------

TEST(YcsbWorkloadTest, LoadsRecords) {
  Cluster cluster(SmallCluster());
  YcsbWorkloadOptions options;
  options.record_count = 5000;
  options.record_bytes = 512;
  Workload workload(options);
  ASSERT_TRUE(workload.LoadInitialData(&cluster).ok());
  EXPECT_EQ(cluster.TotalRowCount(), 5000);
  EXPECT_EQ(cluster.TotalDataBytes(), 5000 * 512);
}

TEST(YcsbWorkloadTest, MixCFullyReadOnly) {
  YcsbWorkloadOptions options;
  options.mix = Mix::kC;
  Workload workload(options);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(workload.NextTransaction(rng).procedure, kRead);
  }
}

TEST(YcsbWorkloadTest, MixProportions) {
  YcsbWorkloadOptions options;
  options.mix = Mix::kA;
  Workload workload(options);
  Rng rng(6);
  std::map<ProcedureId, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    ++counts[workload.NextTransaction(rng).procedure];
  }
  EXPECT_NEAR(counts[kRead] / static_cast<double>(n), 0.5, 0.02);
  EXPECT_NEAR(counts[kUpdate] / static_cast<double>(n), 0.48, 0.02);
  EXPECT_NEAR(counts[kInsert] / static_cast<double>(n), 0.02, 0.01);
}

TEST(YcsbWorkloadTest, ProceduresExecute) {
  Cluster cluster(SmallCluster());
  MetricsCollector metrics;
  ExecutorOptions exec_options;
  exec_options.mean_service_seconds = 1e-4;
  TxnExecutor executor(&cluster, &metrics, exec_options);
  ASSERT_TRUE(Workload::RegisterProcedures(&executor).ok());
  YcsbWorkloadOptions options;
  options.record_count = 2000;
  Workload workload(options);
  ASSERT_TRUE(workload.LoadInitialData(&cluster).ok());
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    executor.Submit(workload.NextTransaction(rng), i * 100);
  }
  // Reads against a fully-loaded table should essentially all commit.
  EXPECT_GT(executor.committed_count(), 19900);
}

TEST(YcsbWorkloadTest, UpdateBumpsVersion) {
  Cluster cluster(SmallCluster());
  TxnExecutor executor(&cluster, nullptr, ExecutorOptions{});
  ASSERT_TRUE(Workload::RegisterProcedures(&executor).ok());
  YcsbWorkloadOptions options;
  options.record_count = 10;
  Workload workload(options);
  ASSERT_TRUE(workload.LoadInitialData(&cluster).ok());

  TxnRequest update;
  update.procedure = kUpdate;
  update.key = UserKey(3);
  update.arg = 99;
  EXPECT_EQ(executor.Submit(update, 0).status, TxnStatus::kCommitted);
  TxnRequest read;
  read.procedure = kRead;
  read.key = UserKey(3);
  const TxnResult result = executor.Submit(read, 1);
  EXPECT_EQ(result.status, TxnStatus::kCommitted);
  EXPECT_EQ(result.value, 2);  // version bumped from 1 to 2
}

TEST(YcsbWorkloadTest, ReadMissingKeyAborts) {
  Cluster cluster(SmallCluster());
  TxnExecutor executor(&cluster, nullptr, ExecutorOptions{});
  ASSERT_TRUE(Workload::RegisterProcedures(&executor).ok());
  TxnRequest read;
  read.procedure = kRead;
  read.key = UserKey(1);
  EXPECT_EQ(executor.Submit(read, 0).status, TxnStatus::kAborted);
}

TEST(YcsbWorkloadTest, SkewedKeysCreatePartitionImbalance) {
  // The scenario the HotSpotBalancer exists for: with high skew some
  // partitions see far more traffic than others.
  Cluster cluster(SmallCluster());
  MetricsCollector metrics;
  ExecutorOptions exec_options;
  exec_options.mean_service_seconds = 1e-5;
  TxnExecutor executor(&cluster, &metrics, exec_options);
  ASSERT_TRUE(Workload::RegisterProcedures(&executor).ok());
  YcsbWorkloadOptions options;
  options.record_count = 20000;
  options.zipf_theta = 1.3;
  Workload workload(options);
  ASSERT_TRUE(workload.LoadInitialData(&cluster).ok());
  Rng rng(8);
  for (int i = 0; i < 100000; ++i) {
    executor.Submit(workload.NextTransaction(rng), i * 10);
  }
  int64_t max_accesses = 0;
  int64_t total = 0;
  for (int p = 0; p < cluster.total_active_partitions(); ++p) {
    const int64_t a = cluster.partition(p).TotalAccesses();
    max_accesses = std::max(max_accesses, a);
    total += a;
  }
  const double mean =
      static_cast<double>(total) / cluster.total_active_partitions();
  EXPECT_GT(static_cast<double>(max_accesses), 1.3 * mean);
}

}  // namespace
}  // namespace ycsb
}  // namespace pstore
