// End-to-end test: the full P-Store stack (trace -> SPAR -> DP planner ->
// migration -> engine) against the reactive baseline on a compressed
// diurnal B2W day, checking the paper's headline qualitative result:
// predictive provisioning causes fewer SLA violations than reactive at a
// comparable machine budget, and far fewer machines than static peak
// provisioning.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "b2w/procedures.h"
#include "b2w/workload.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/time_series.h"
#include "controller/predictive_controller.h"
#include "controller/reactive_controller.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/metrics.h"
#include "engine/txn_executor.h"
#include "engine/workload_driver.h"
#include "migration/squall_migrator.h"
#include "planner/move_model.h"
#include "prediction/naive_models.h"
#include "prediction/online_predictor.h"
#include "trace/b2w_trace_generator.h"

namespace pstore {
namespace {

// A compressed synthetic "day": 360 slots of 6 sim-seconds each (36
// sim-minutes), diurnal-shaped between ~250 and ~1450 txn/s so the
// cluster needs between 1 and 6 nodes.
TimeSeries CompressedDay(int days) {
  TimeSeries trace(6.0);
  for (int d = 0; d < days; ++d) {
    for (int slot = 0; slot < 360; ++slot) {
      const double phase = 2.0 * M_PI * (slot - 180) / 360.0;
      // Cubed raised cosine: a steep morning ramp like B2W's (Fig. 1),
      // which is exactly where reactive provisioning hurts.
      const double shape = std::pow(0.5 * (1.0 + std::cos(phase)), 3.0);
      trace.Append(250.0 + 1200.0 * shape);
    }
  }
  return trace;
}

struct RunStats {
  SlaViolations violations;
  double avg_machines = 0.0;
  int64_t committed = 0;
};

enum class Mode { kPredictive, kReactive, kStatic };

RunStats RunExperiment(Mode mode, const TimeSeries& trace,
                       int initial_nodes) {
  ClusterOptions cluster_options;
  cluster_options.partitions_per_node = 6;
  cluster_options.max_nodes = 10;
  cluster_options.initial_nodes = initial_nodes;
  cluster_options.num_buckets = 1200;
  Cluster cluster(cluster_options);

  MetricsCollector metrics(1.0);
  TxnExecutor executor(&cluster, &metrics, ExecutorOptions{});
  PSTORE_CHECK_OK(b2w::RegisterProcedures(&executor));

  b2w::B2wWorkloadOptions workload_options;
  workload_options.cart_pool = 20000;
  workload_options.checkout_pool = 8000;
  b2w::Workload workload(workload_options);
  PSTORE_CHECK_OK(workload.LoadInitialData(&cluster));

  EventLoop loop;
  MigrationOptions migration_options;
  migration_options.net_rate_bytes_per_sec = 200e3;
  migration_options.chunk_spacing_seconds = 0.5;
  migration_options.chunk_bytes = 256 * 1024;
  MigrationManager migration(&loop, &cluster, &metrics, migration_options);
  metrics.RecordMachines(0, cluster.active_nodes());

  DriverOptions driver_options;
  driver_options.slot_sim_seconds = 6.0;
  driver_options.rate_factor = 1.0;
  driver_options.seed = 33;
  WorkloadDriver driver(
      &loop, &executor, trace,
      [&workload](Rng& rng) { return workload.NextTransaction(rng); },
      driver_options);

  PlannerParams planner_params;
  planner_params.target_rate_per_node = 285.0;
  planner_params.max_rate_per_node = 350.0;
  planner_params.partitions_per_node = 6;
  planner_params.d_slots = SingleThreadFullMigrationSeconds(
                               cluster.TotalDataBytes(), migration_options) /
                           30.0;

  std::unique_ptr<OnlinePredictor> predictor;
  std::unique_ptr<PredictiveController> predictive;
  std::unique_ptr<ReactiveController> reactive;
  if (mode == Mode::kPredictive) {
    OnlinePredictorOptions online_options;
    online_options.inflation = 1.15;
    online_options.refit_interval = 1u << 30;
    online_options.training_window = 10;
    predictor = std::make_unique<OnlinePredictor>(
        std::make_unique<OraclePredictor>(trace), online_options);
    PSTORE_CHECK_OK(predictor->Warmup(trace.Slice(0, 1)));
    PredictiveControllerOptions options;
    options.slot_sim_seconds = 6.0;
    options.plan_slot_factor = 5;
    options.horizon_plan_slots = 24;
    options.planner_params = planner_params;
    predictive = std::make_unique<PredictiveController>(
        &loop, &cluster, &executor, &migration, predictor.get(), options);
    predictive->Start();
  } else if (mode == Mode::kReactive) {
    ReactiveControllerOptions options;
    options.slot_sim_seconds = 6.0;
    options.planner_params = planner_params;
    reactive = std::make_unique<ReactiveController>(
        &loop, &cluster, &executor, &migration, options);
    reactive->Start();
  }

  const SimTime end =
      FromSeconds(trace.size() * 6.0);
  driver.Start(end);
  loop.RunUntil(end);

  RunStats stats;
  const auto windows = metrics.Finalize(end);
  stats.violations = MetricsCollector::CountViolations(windows);
  stats.avg_machines = metrics.AverageMachines(end);
  stats.committed = executor.committed_count();
  return stats;
}

TEST(IntegrationTest, PredictiveBeatsReactiveAndHalvesStaticCost) {
  const TimeSeries trace = CompressedDay(2);

  const RunStats pstore = RunExperiment(Mode::kPredictive, trace, 2);
  const RunStats reactive = RunExperiment(Mode::kReactive, trace, 2);
  const RunStats static6 = RunExperiment(Mode::kStatic, trace, 6);

  // The static peak allocation serves everything without violations.
  EXPECT_EQ(static6.violations.p50, 0);
  EXPECT_LE(static6.violations.p99, 2);

  // P-Store uses roughly half the machines of peak provisioning...
  EXPECT_LT(pstore.avg_machines, 0.72 * static6.avg_machines);
  // ...and causes fewer tail-latency violations than reactive.
  EXPECT_LE(pstore.violations.p99, reactive.violations.p99);
  EXPECT_LE(pstore.violations.p95, reactive.violations.p95);
  // Reactive visibly hurts at each morning ramp.
  EXPECT_GE(reactive.violations.p99, 1);
  // P-Store stays close to the static system's service quality.
  EXPECT_LE(pstore.violations.p50, 2);

  // All runs processed comparable work.
  EXPECT_GT(pstore.committed, 0);
  EXPECT_NEAR(static_cast<double>(pstore.committed),
              static_cast<double>(static6.committed),
              0.02 * static_cast<double>(static6.committed));
}

TEST(IntegrationTest, PredictiveTracksLoadUpAndDown) {
  // Over two compressed days the controller must both scale out and
  // scale back in (receding horizon with scale-in confirmation).
  const TimeSeries trace = CompressedDay(2);
  ClusterOptions cluster_options;
  cluster_options.partitions_per_node = 6;
  cluster_options.max_nodes = 10;
  cluster_options.initial_nodes = 2;
  cluster_options.num_buckets = 1200;
  Cluster cluster(cluster_options);
  MetricsCollector metrics(1.0);
  TxnExecutor executor(&cluster, &metrics, ExecutorOptions{});
  PSTORE_CHECK_OK(b2w::RegisterProcedures(&executor));
  b2w::B2wWorkloadOptions workload_options;
  workload_options.cart_pool = 20000;
  workload_options.checkout_pool = 8000;
  b2w::Workload workload(workload_options);
  PSTORE_CHECK_OK(workload.LoadInitialData(&cluster));
  EventLoop loop;
  MigrationOptions migration_options;
  migration_options.net_rate_bytes_per_sec = 200e3;
  migration_options.chunk_spacing_seconds = 0.5;
  migration_options.chunk_bytes = 256 * 1024;
  MigrationManager migration(&loop, &cluster, &metrics, migration_options);
  metrics.RecordMachines(0, 2);

  DriverOptions driver_options;
  driver_options.slot_sim_seconds = 6.0;
  driver_options.rate_factor = 1.0;
  WorkloadDriver driver(
      &loop, &executor, trace,
      [&workload](Rng& rng) { return workload.NextTransaction(rng); },
      driver_options);

  OnlinePredictorOptions online_options;
  online_options.inflation = 1.15;
  online_options.refit_interval = 1u << 30;
  online_options.training_window = 10;
  OnlinePredictor predictor(std::make_unique<OraclePredictor>(trace),
                            online_options);
  PSTORE_CHECK_OK(predictor.Warmup(trace.Slice(0, 1)));

  PredictiveControllerOptions options;
  options.slot_sim_seconds = 6.0;
  options.plan_slot_factor = 5;
  options.horizon_plan_slots = 24;
  options.planner_params.target_rate_per_node = 285.0;
  options.planner_params.max_rate_per_node = 350.0;
  options.planner_params.partitions_per_node = 6;
  options.planner_params.d_slots =
      SingleThreadFullMigrationSeconds(cluster.TotalDataBytes(),
                                       migration_options) /
      30.0;
  PredictiveController controller(&loop, &cluster, &executor, &migration,
                                  &predictor, options);
  controller.Start();

  const SimTime end = FromSeconds(trace.size() * 6.0);
  driver.Start(end);

  // Peak of day 1 (slot 180): several nodes.
  loop.RunUntil(FromSeconds(185 * 6.0));
  const int peak_nodes = cluster.active_nodes();
  EXPECT_GE(peak_nodes, 4);

  // Trough before day 2's ramp (slot ~360): scaled back down.
  loop.RunUntil(FromSeconds(360 * 6.0));
  EXPECT_LT(cluster.active_nodes(), peak_nodes);

  // Peak of day 2: back up.
  loop.RunUntil(FromSeconds(545 * 6.0));
  EXPECT_GE(cluster.active_nodes(), 4);
  loop.RunUntil(end);
  EXPECT_GE(controller.reconfigurations_started(), 3);
}

}  // namespace
}  // namespace pstore
