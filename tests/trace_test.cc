#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "common/status.h"
#include "common/time_series.h"
#include "trace/b2w_trace_generator.h"
#include "trace/spike_injector.h"
#include "trace/trace_io.h"
#include "trace/wikipedia_trace_generator.h"

namespace pstore {
namespace {

B2wTraceOptions DefaultB2w(int days) {
  B2wTraceOptions options;
  options.days = days;
  options.seed = 42;
  return options;
}

TEST(B2wTraceTest, LengthAndSlotDuration) {
  const TimeSeries trace = GenerateB2wTrace(DefaultB2w(3));
  EXPECT_EQ(trace.size(), 3u * 1440u);
  EXPECT_EQ(trace.slot_seconds(), 60.0);
}

TEST(B2wTraceTest, DeterministicBySeed) {
  const TimeSeries a = GenerateB2wTrace(DefaultB2w(2));
  const TimeSeries b = GenerateB2wTrace(DefaultB2w(2));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]);
  }
}

TEST(B2wTraceTest, DifferentSeedsDiffer) {
  B2wTraceOptions options = DefaultB2w(1);
  const TimeSeries a = GenerateB2wTrace(options);
  options.seed = 43;
  const TimeSeries b = GenerateB2wTrace(options);
  int differing = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++differing;
  }
  EXPECT_GT(differing, 1000);
}

TEST(B2wTraceTest, PeakToTroughRatioNearTen) {
  // The paper reports peak load ~10x the trough (Fig. 1).
  B2wTraceOptions options = DefaultB2w(7);
  options.promo_probability = 0.0;  // keep the baseline shape clean
  const TimeSeries trace = GenerateB2wTrace(options);
  const double ratio = trace.Max() / trace.Min();
  EXPECT_GT(ratio, 6.0);
  EXPECT_LT(ratio, 16.0);
}

TEST(B2wTraceTest, PeakNearConfiguredLevel) {
  B2wTraceOptions options = DefaultB2w(3);
  options.promo_probability = 0.0;
  const TimeSeries trace = GenerateB2wTrace(options);
  EXPECT_GT(trace.Max(), options.peak_requests_per_min * 0.8);
  EXPECT_LT(trace.Max(), options.peak_requests_per_min * 1.35);
}

TEST(B2wTraceTest, DailyPeriodicity) {
  // The same minute on consecutive weekdays should be highly correlated.
  B2wTraceOptions options = DefaultB2w(5);
  options.promo_probability = 0.0;
  options.weekend_factor = 1.0;
  const TimeSeries trace = GenerateB2wTrace(options);
  double same_slot_error = 0.0;
  int counted = 0;
  for (int minute = 0; minute < 1440; minute += 10) {
    const double day0 = trace[minute];
    const double day1 = trace[1440 + minute];
    same_slot_error += std::abs(day0 - day1) / std::max(1.0, day0);
    ++counted;
  }
  EXPECT_LT(same_slot_error / counted, 0.35);
}

TEST(B2wTraceTest, PeakOccursNearConfiguredHour) {
  B2wTraceOptions options = DefaultB2w(1);
  options.promo_probability = 0.0;
  options.slot_noise_sigma = 0.0;
  options.daily_amplitude_sigma = 0.0;
  options.drift_sigma = 0.0;
  const TimeSeries trace = GenerateB2wTrace(options);
  size_t argmax = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    if (trace[i] > trace[argmax]) argmax = i;
  }
  EXPECT_NEAR(static_cast<double>(argmax), options.peak_minute_of_day, 30.0);
}

TEST(B2wTraceTest, BlackFridayRaisesLoadSharply) {
  B2wTraceOptions base = DefaultB2w(3);
  base.promo_probability = 0.0;
  const TimeSeries normal = GenerateB2wTrace(base);

  B2wTraceOptions bf = base;
  bf.black_friday_day = 1;
  const TimeSeries spiked = GenerateB2wTrace(bf);

  // Day 0 identical... (same rng draw order) and day 1 much larger.
  double normal_day1_max = 0.0;
  double bf_day1_max = 0.0;
  for (int m = 0; m < 1440; ++m) {
    normal_day1_max = std::max(normal_day1_max, normal[1440 + m]);
    bf_day1_max = std::max(bf_day1_max, spiked[1440 + m]);
  }
  EXPECT_GT(bf_day1_max, normal_day1_max * 1.8);
  // Shortly after midnight the surge is already well above the normal
  // overnight trough.
  EXPECT_GT(spiked[1440 + 30], normal[1440 + 30] * 2.0);
}

TEST(B2wTraceTest, PromotionsAddMidScaleSpikes) {
  B2wTraceOptions options = DefaultB2w(60);
  options.promo_probability = 1.0;  // every day
  const TimeSeries with_promos = GenerateB2wTrace(options);
  options.promo_probability = 0.0;
  const TimeSeries without = GenerateB2wTrace(options);
  EXPECT_GT(with_promos.Mean(), without.Mean());
}

TEST(WikipediaTraceTest, LengthsAndLevels) {
  WikipediaTraceOptions options;
  options.days = 14;
  const TimeSeries en = GenerateWikipediaTrace(options);
  EXPECT_EQ(en.size(), 14u * 24u);
  EXPECT_EQ(en.slot_seconds(), 3600.0);
  // English peaks near 1e7 requests/hour (Fig. 6a).
  EXPECT_GT(en.Max(), 5e6);
  EXPECT_LT(en.Max(), 2e7);

  options.edition = WikipediaEdition::kGerman;
  const TimeSeries de = GenerateWikipediaTrace(options);
  // German is several times smaller.
  EXPECT_LT(de.Max(), en.Max() / 2.0);
}

TEST(WikipediaTraceTest, GermanIsLessPredictableThanEnglish) {
  // Proxy for predictability: relative error of the seasonal-naive
  // forecast (same hour yesterday). The paper's Fig. 6 shows German with
  // visibly higher prediction error.
  WikipediaTraceOptions options;
  options.days = 28;
  const TimeSeries en = GenerateWikipediaTrace(options);
  options.edition = WikipediaEdition::kGerman;
  const TimeSeries de = GenerateWikipediaTrace(options);

  auto naive_error = [](const TimeSeries& series) {
    double total = 0.0;
    int n = 0;
    for (size_t i = 24; i < series.size(); ++i) {
      total += std::abs(series[i] - series[i - 24]) / series[i];
      ++n;
    }
    return total / n;
  };
  EXPECT_GT(naive_error(de), naive_error(en) * 1.5);
}

TEST(SpikeInjectorTest, ShapeAndBounds) {
  TimeSeries base(60.0, std::vector<double>(200, 100.0));
  SpikeOptions spike;
  spike.start_slot = 50;
  spike.ramp_slots = 10;
  spike.sustain_slots = 20;
  spike.decay_slots = 10;
  spike.magnitude = 3.0;
  const TimeSeries out = InjectSpike(base, spike);
  // Before the spike: untouched.
  EXPECT_EQ(out[49], 100.0);
  // Ramp rises monotonically.
  EXPECT_GT(out[55], out[51]);
  // Sustain at full magnitude.
  EXPECT_NEAR(out[65], 300.0, 1e-9);
  // Decay returns to baseline.
  EXPECT_NEAR(out[95], 100.0, 1e-9);
  EXPECT_EQ(out[150], 100.0);
}

TEST(SpikeInjectorTest, SpikeBeyondEndIsIgnored) {
  TimeSeries base(60.0, std::vector<double>(10, 1.0));
  SpikeOptions spike;
  spike.start_slot = 50;
  const TimeSeries out = InjectSpike(base, spike);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 1.0);
}

TEST(TraceIoTest, RoundTrip) {
  const TimeSeries trace = GenerateB2wTrace(DefaultB2w(1));
  const std::string path = ::testing::TempDir() + "/trace_roundtrip.csv";
  ASSERT_TRUE(SaveTraceCsv(trace, path).ok());
  StatusOr<TimeSeries> loaded = LoadTraceCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), trace.size());
  EXPECT_EQ(loaded->slot_seconds(), trace.slot_seconds());
  for (size_t i = 0; i < trace.size(); i += 97) {
    EXPECT_NEAR((*loaded)[i], trace[i], 1e-6 * std::max(1.0, trace[i]));
  }
  std::remove(path.c_str());
}

TEST(TraceIoTest, MissingFileFails) {
  EXPECT_FALSE(LoadTraceCsv("/nonexistent/path/trace.csv").ok());
}

}  // namespace
}  // namespace pstore
