#include "common/linalg.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace pstore {
namespace {

TEST(MatrixTest, TransposeTimesSelf) {
  // A = [[1, 2], [3, 4], [5, 6]]; A^T A = [[35, 44], [44, 56]].
  Matrix a(3, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 3;
  a.At(1, 1) = 4;
  a.At(2, 0) = 5;
  a.At(2, 1) = 6;
  Matrix ata = a.TransposeTimesSelf();
  EXPECT_EQ(ata.At(0, 0), 35.0);
  EXPECT_EQ(ata.At(0, 1), 44.0);
  EXPECT_EQ(ata.At(1, 0), 44.0);
  EXPECT_EQ(ata.At(1, 1), 56.0);
}

TEST(MatrixTest, TransposeTimesVector) {
  Matrix a(2, 3);
  // A = [[1, 0, 2], [0, 3, 1]]
  a.At(0, 0) = 1;
  a.At(0, 2) = 2;
  a.At(1, 1) = 3;
  a.At(1, 2) = 1;
  const std::vector<double> atv = a.TransposeTimesVector({2.0, 5.0});
  ASSERT_EQ(atv.size(), 3u);
  EXPECT_EQ(atv[0], 2.0);
  EXPECT_EQ(atv[1], 15.0);
  EXPECT_EQ(atv[2], 9.0);
}

TEST(SolveLinearSystemTest, TwoByTwo) {
  // x + 2y = 5; 3x + 4y = 11  ->  x = 1, y = 2.
  Matrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 3;
  a.At(1, 1) = 4;
  StatusOr<std::vector<double>> x = SolveLinearSystem(a, {5, 11});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-10);
  EXPECT_NEAR((*x)[1], 2.0, 1e-10);
}

TEST(SolveLinearSystemTest, RequiresPivoting) {
  // Leading zero forces a row swap.
  Matrix a(2, 2);
  a.At(0, 0) = 0;
  a.At(0, 1) = 1;
  a.At(1, 0) = 2;
  a.At(1, 1) = 0;
  StatusOr<std::vector<double>> x = SolveLinearSystem(a, {3, 4});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-10);
  EXPECT_NEAR((*x)[1], 3.0, 1e-10);
}

TEST(SolveLinearSystemTest, SingularDetected) {
  Matrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 2;
  a.At(1, 1) = 4;
  EXPECT_FALSE(SolveLinearSystem(a, {1, 2}).ok());
}

TEST(SolveLinearSystemTest, ShapeMismatch) {
  Matrix a(2, 3);
  EXPECT_FALSE(SolveLinearSystem(a, {1, 2}).ok());
  Matrix b(2, 2);
  EXPECT_FALSE(SolveLinearSystem(b, {1, 2, 3}).ok());
}

TEST(SolveLeastSquaresTest, ExactSystemRecovered) {
  // Overdetermined but consistent: y = 2x + 1 sampled at 4 points.
  Matrix a(4, 2);
  std::vector<double> b(4);
  const double xs[] = {0, 1, 2, 3};
  for (int i = 0; i < 4; ++i) {
    a.At(i, 0) = 1.0;
    a.At(i, 1) = xs[i];
    b[i] = 1.0 + 2.0 * xs[i];
  }
  StatusOr<std::vector<double>> coef = SolveLeastSquares(a, b);
  ASSERT_TRUE(coef.ok());
  EXPECT_NEAR((*coef)[0], 1.0, 1e-6);
  EXPECT_NEAR((*coef)[1], 2.0, 1e-6);
}

TEST(SolveLeastSquaresTest, NoisyRegressionRecoversCoefficients) {
  Rng rng(42);
  const int n = 2000;
  Matrix a(n, 3);
  std::vector<double> b(n);
  for (int i = 0; i < n; ++i) {
    const double x1 = rng.NextDouble(-1, 1);
    const double x2 = rng.NextDouble(-1, 1);
    a.At(i, 0) = 1.0;
    a.At(i, 1) = x1;
    a.At(i, 2) = x2;
    b[i] = 0.5 - 1.5 * x1 + 3.0 * x2 + 0.01 * rng.NextGaussian();
  }
  StatusOr<std::vector<double>> coef = SolveLeastSquares(a, b);
  ASSERT_TRUE(coef.ok());
  EXPECT_NEAR((*coef)[0], 0.5, 0.01);
  EXPECT_NEAR((*coef)[1], -1.5, 0.01);
  EXPECT_NEAR((*coef)[2], 3.0, 0.01);
}

TEST(SolveLeastSquaresTest, UnderdeterminedRejected) {
  Matrix a(2, 3);
  EXPECT_FALSE(SolveLeastSquares(a, {1, 2}).ok());
}

TEST(SolveLeastSquaresTest, CollinearColumnsStabilizedByRidge) {
  // Two identical columns: the normal equations are singular, but the
  // ridge keeps the solve well-posed.
  const int n = 50;
  Matrix a(n, 2);
  std::vector<double> b(n);
  for (int i = 0; i < n; ++i) {
    a.At(i, 0) = i;
    a.At(i, 1) = i;
    b[i] = 2.0 * i;
  }
  StatusOr<std::vector<double>> coef = SolveLeastSquares(a, b, 1e-8);
  ASSERT_TRUE(coef.ok());
  // The fitted function must still predict well even though individual
  // coefficients are not identifiable.
  EXPECT_NEAR((*coef)[0] + (*coef)[1], 2.0, 1e-3);
}

}  // namespace
}  // namespace pstore
