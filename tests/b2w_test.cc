#include <gtest/gtest.h>

#include <map>

#include "b2w/procedures.h"
#include "b2w/schema.h"
#include "b2w/workload.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "engine/cluster.h"
#include "engine/metrics.h"
#include "engine/partition.h"
#include "engine/table.h"
#include "engine/transaction.h"
#include "engine/txn_executor.h"

namespace pstore {
namespace b2w {
namespace {

class B2wProcedureTest : public ::testing::Test {
 protected:
  B2wProcedureTest()
      : cluster_(MakeOptions()), executor_(&cluster_, nullptr, ExecOptions()) {
    PSTORE_CHECK_OK(RegisterProcedures(&executor_));
  }

  static ClusterOptions MakeOptions() {
    ClusterOptions options;
    options.partitions_per_node = 2;
    options.max_nodes = 2;
    options.initial_nodes = 1;
    options.num_buckets = 32;
    return options;
  }
  static ExecutorOptions ExecOptions() {
    ExecutorOptions options;
    options.mean_service_seconds = 0.001;
    return options;
  }

  TxnResult Run(ProcedureId procedure, uint64_t key, uint32_t arg = 0) {
    TxnRequest request;
    request.procedure = procedure;
    request.key = key;
    request.arg = arg;
    now_ += 1000;
    return executor_.Submit(request, now_);
  }

  const Row* Lookup(TableId table, uint64_t key) {
    const BucketId bucket = cluster_.BucketForKey(key);
    return cluster_.partition(cluster_.PartitionOfBucket(bucket))
        .Get(bucket, table, key);
  }

  void SeedStock(uint64_t key, int64_t available) {
    const BucketId bucket = cluster_.BucketForKey(key);
    Row stock;
    stock.payload_bytes = kStockRowBytes;
    stock.f0 = available;
    cluster_.partition(cluster_.PartitionOfBucket(bucket))
        .Put(bucket, kStockTable, key, stock);
  }

  Cluster cluster_;
  TxnExecutor executor_;
  SimTime now_ = 0;
};

// ---- Cart lifecycle -----------------------------------------------------

TEST_F(B2wProcedureTest, AddLineCreatesCart) {
  const uint64_t cart = CartKey(1);
  const TxnResult result = Run(kAddLineToCart, cart, 500);
  EXPECT_EQ(result.status, TxnStatus::kCommitted);
  EXPECT_EQ(result.value, 1);  // one line
  const Row* row = Lookup(kCartTable, cart);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->f0, 1);
  EXPECT_EQ(row->f2, 500);
  EXPECT_EQ(row->payload_bytes, kCartBaseBytes + kCartLineBytes);
}

TEST_F(B2wProcedureTest, AddLineAppendsAndGrowsPayload) {
  const uint64_t cart = CartKey(2);
  Run(kAddLineToCart, cart, 100);
  const TxnResult result = Run(kAddLineToCart, cart, 250);
  EXPECT_EQ(result.value, 2);
  const Row* row = Lookup(kCartTable, cart);
  EXPECT_EQ(row->f0, 2);
  EXPECT_EQ(row->f2, 350);
  EXPECT_EQ(row->payload_bytes, kCartBaseBytes + 2 * kCartLineBytes);
}

TEST_F(B2wProcedureTest, NewCartFlagResetsExistingCart) {
  const uint64_t cart = CartKey(3);
  Run(kAddLineToCart, cart, 100);
  Run(kAddLineToCart, cart, 100);
  Run(kAddLineToCart, cart, kNewCartFlag | 900);
  const Row* row = Lookup(kCartTable, cart);
  EXPECT_EQ(row->f0, 1);
  EXPECT_EQ(row->f2, 900);
}

TEST_F(B2wProcedureTest, DeleteLineFromCart) {
  const uint64_t cart = CartKey(4);
  Run(kAddLineToCart, cart, 100);
  Run(kAddLineToCart, cart, 100);
  EXPECT_EQ(Run(kDeleteLineFromCart, cart).status, TxnStatus::kCommitted);
  EXPECT_EQ(Lookup(kCartTable, cart)->f0, 1);
  EXPECT_EQ(Run(kDeleteLineFromCart, cart).status, TxnStatus::kCommitted);
  // Empty cart: further deletes abort.
  EXPECT_EQ(Run(kDeleteLineFromCart, cart).status, TxnStatus::kAborted);
}

TEST_F(B2wProcedureTest, GetCartMissingAborts) {
  EXPECT_EQ(Run(kGetCart, CartKey(999)).status, TxnStatus::kAborted);
}

TEST_F(B2wProcedureTest, DeleteCartRemovesRow) {
  const uint64_t cart = CartKey(5);
  Run(kAddLineToCart, cart, 100);
  EXPECT_EQ(Run(kDeleteCart, cart).status, TxnStatus::kCommitted);
  EXPECT_EQ(Lookup(kCartTable, cart), nullptr);
  EXPECT_EQ(Run(kDeleteCart, cart).status, TxnStatus::kAborted);
}

TEST_F(B2wProcedureTest, ReserveCartSetsStatus) {
  const uint64_t cart = CartKey(6);
  Run(kAddLineToCart, cart, 100);
  EXPECT_EQ(Run(kReserveCart, cart).status, TxnStatus::kCommitted);
  EXPECT_EQ(Lookup(kCartTable, cart)->f1,
            static_cast<int64_t>(CartStatus::kReserved));
}

// ---- Stock lifecycle --------------------------------------------------------

TEST_F(B2wProcedureTest, StockReserveThenPurchase) {
  const uint64_t sku = StockKey(1);
  SeedStock(sku, 10);
  EXPECT_EQ(Run(kGetStockQuantity, sku).value, 10);
  EXPECT_EQ(Run(kReserveStock, sku, 3).status, TxnStatus::kCommitted);
  const Row* row = Lookup(kStockTable, sku);
  EXPECT_EQ(row->f0, 7);
  EXPECT_EQ(row->f1, 3);
  EXPECT_EQ(Run(kPurchaseStock, sku, 2).status, TxnStatus::kCommitted);
  row = Lookup(kStockTable, sku);
  EXPECT_EQ(row->f1, 1);
  EXPECT_EQ(row->f2, 2);
}

TEST_F(B2wProcedureTest, ReserveMoreThanAvailableAborts) {
  const uint64_t sku = StockKey(2);
  SeedStock(sku, 2);
  EXPECT_EQ(Run(kReserveStock, sku, 5).status, TxnStatus::kAborted);
  // State unchanged on abort.
  EXPECT_EQ(Lookup(kStockTable, sku)->f0, 2);
  EXPECT_EQ(Lookup(kStockTable, sku)->f1, 0);
}

TEST_F(B2wProcedureTest, CancelReservationRestoresAvailability) {
  const uint64_t sku = StockKey(3);
  SeedStock(sku, 5);
  Run(kReserveStock, sku, 4);
  EXPECT_EQ(Run(kCancelStockReservation, sku, 4).status,
            TxnStatus::kCommitted);
  EXPECT_EQ(Lookup(kStockTable, sku)->f0, 5);
  EXPECT_EQ(Lookup(kStockTable, sku)->f1, 0);
}

TEST_F(B2wProcedureTest, PurchaseWithoutReservationAborts) {
  const uint64_t sku = StockKey(4);
  SeedStock(sku, 5);
  EXPECT_EQ(Run(kPurchaseStock, sku, 1).status, TxnStatus::kAborted);
}

TEST_F(B2wProcedureTest, StockTransactionLifecycle) {
  const uint64_t txn = StockTxnKey(1);
  EXPECT_EQ(Run(kCreateStockTransaction, txn).status, TxnStatus::kCommitted);
  EXPECT_EQ(Run(kGetStockTransaction, txn).value,
            static_cast<int64_t>(StockTxnStatus::kReserved));
  EXPECT_EQ(Run(kUpdateStockTransaction, txn, kMarkPurchased).status,
            TxnStatus::kCommitted);
  EXPECT_EQ(Run(kGetStockTransaction, txn).value,
            static_cast<int64_t>(StockTxnStatus::kPurchased));
  EXPECT_EQ(Run(kUpdateStockTransaction, txn, kMarkCancelled).status,
            TxnStatus::kCommitted);
  // Invalid status argument aborts.
  EXPECT_EQ(Run(kUpdateStockTransaction, txn, 0).status,
            TxnStatus::kAborted);
}

// ---- Checkout lifecycle -----------------------------------------------------

TEST_F(B2wProcedureTest, CheckoutFullFlow) {
  const uint64_t checkout = CheckoutKey(1);
  EXPECT_EQ(Run(kCreateCheckout, checkout).status, TxnStatus::kCommitted);
  EXPECT_EQ(Run(kAddLineToCheckout, checkout, 300).status,
            TxnStatus::kCommitted);
  EXPECT_EQ(Run(kAddLineToCheckout, checkout, 200).status,
            TxnStatus::kCommitted);
  EXPECT_EQ(Run(kGetCheckout, checkout).value, 2);
  EXPECT_EQ(Run(kCreateCheckoutPayment, checkout).status,
            TxnStatus::kCommitted);
  const Row* row = Lookup(kCheckoutTable, checkout);
  EXPECT_EQ(row->f1, 1);
  EXPECT_EQ(row->f2, 500);
  EXPECT_EQ(row->f3, static_cast<int64_t>(CheckoutStatus::kPaid));
  EXPECT_EQ(Run(kDeleteLineFromCheckout, checkout).status,
            TxnStatus::kCommitted);
  EXPECT_EQ(Run(kDeleteCheckout, checkout).status, TxnStatus::kCommitted);
  EXPECT_EQ(Lookup(kCheckoutTable, checkout), nullptr);
}

TEST_F(B2wProcedureTest, CheckoutOpsOnMissingObjectAbort) {
  const uint64_t checkout = CheckoutKey(404);
  EXPECT_EQ(Run(kAddLineToCheckout, checkout, 1).status,
            TxnStatus::kAborted);
  EXPECT_EQ(Run(kCreateCheckoutPayment, checkout).status,
            TxnStatus::kAborted);
  EXPECT_EQ(Run(kGetCheckout, checkout).status, TxnStatus::kAborted);
  EXPECT_EQ(Run(kDeleteCheckout, checkout).status, TxnStatus::kAborted);
}

TEST(B2wProcedureNamesTest, AllNamed) {
  for (ProcedureId id = 0; id < kNumProcedures; ++id) {
    EXPECT_STRNE(ProcedureName(id), "Unknown") << id;
  }
  EXPECT_STREQ(ProcedureName(kNumProcedures), "Unknown");
}

// ---- Workload driver ---------------------------------------------------------

TEST(B2wWorkloadTest, LoadInitialDataSizes) {
  ClusterOptions cluster_options;
  cluster_options.partitions_per_node = 2;
  cluster_options.initial_nodes = 2;
  cluster_options.max_nodes = 2;
  cluster_options.num_buckets = 128;
  Cluster cluster(cluster_options);
  B2wWorkloadOptions options;
  options.cart_pool = 5000;
  options.checkout_pool = 2000;
  Workload workload(options);
  ASSERT_TRUE(workload.LoadInitialData(&cluster).ok());
  EXPECT_EQ(cluster.TotalRowCount(), 7000);
  const int64_t expected_bytes =
      5000 * (kCartBaseBytes + 2 * kCartLineBytes) +
      2000 * (kCheckoutBaseBytes + 2 * kCheckoutLineBytes);
  EXPECT_EQ(cluster.TotalDataBytes(), expected_bytes);
}

TEST(B2wWorkloadTest, DataSpreadsEvenlyAcrossPartitions) {
  // §8.1: hashed keys spread data nearly uniformly. With 5000 carts over
  // 4 partitions the imbalance must be small.
  ClusterOptions cluster_options;
  cluster_options.partitions_per_node = 2;
  cluster_options.initial_nodes = 2;
  cluster_options.max_nodes = 2;
  cluster_options.num_buckets = 128;
  Cluster cluster(cluster_options);
  B2wWorkloadOptions options;
  options.cart_pool = 20000;
  options.checkout_pool = 1;
  Workload workload(options);
  ASSERT_TRUE(workload.LoadInitialData(&cluster).ok());
  const double mean_bytes =
      static_cast<double>(cluster.TotalDataBytes()) / 4.0;
  for (int p = 0; p < 4; ++p) {
    const double bytes =
        static_cast<double>(cluster.partition(p).data_bytes());
    EXPECT_NEAR(bytes / mean_bytes, 1.0, 0.12) << "partition " << p;
  }
}

TEST(B2wWorkloadTest, MixFrequenciesRoughlyMatchWeights) {
  B2wWorkloadOptions options;
  options.cart_pool = 1000;
  options.checkout_pool = 500;
  Workload workload(options);
  Rng rng(3);
  std::map<ProcedureId, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[workload.NextTransaction(rng).procedure];
  }
  const MixWeights mix;
  const double total = 30 + 24 + 5 + 3 + 5 + 6 + 9 + 6 + 8 + 2 + 2;
  EXPECT_NEAR(counts[kAddLineToCart] / static_cast<double>(n),
              mix.add_line_to_cart / total, 0.01);
  EXPECT_NEAR(counts[kGetCart] / static_cast<double>(n),
              mix.get_cart / total, 0.01);
  EXPECT_NEAR(counts[kDeleteCheckout] / static_cast<double>(n),
              mix.delete_checkout / total, 0.005);
  // Only cart/checkout procedures are generated (§7: stock lives on a
  // separate cluster).
  EXPECT_EQ(counts.count(kReserveStock), 0u);
  EXPECT_EQ(counts.count(kGetStock), 0u);
}

TEST(B2wWorkloadTest, DatabaseSizeStaysSteadyUnderChurn) {
  // The id-recycling scheme must keep the database from growing without
  // bound (paper §4.2: "the database size is not quickly changing").
  ClusterOptions cluster_options;
  cluster_options.num_buckets = 128;
  Cluster cluster(cluster_options);
  B2wWorkloadOptions options;
  options.cart_pool = 2000;
  options.checkout_pool = 800;
  Workload workload(options);
  ASSERT_TRUE(workload.LoadInitialData(&cluster).ok());
  const int64_t initial_bytes = cluster.TotalDataBytes();

  MetricsCollector metrics;
  ExecutorOptions exec_options;
  exec_options.mean_service_seconds = 1e-6;
  TxnExecutor executor(&cluster, &metrics, exec_options);
  ASSERT_TRUE(RegisterProcedures(&executor).ok());
  Rng rng(9);
  for (int i = 0; i < 200000; ++i) {
    executor.Submit(workload.NextTransaction(rng), i);
  }
  const double growth =
      static_cast<double>(cluster.TotalDataBytes()) /
      static_cast<double>(initial_bytes);
  EXPECT_LT(growth, 1.6);
  EXPECT_GT(growth, 0.5);
}

}  // namespace
}  // namespace b2w
}  // namespace pstore
