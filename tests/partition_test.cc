#include "engine/partition.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/sim_time.h"
#include "engine/table.h"

namespace pstore {
namespace {

Row MakeRow(uint32_t bytes, int64_t f0 = 0) {
  Row row;
  row.payload_bytes = bytes;
  row.f0 = f0;
  return row;
}

// ---- Queueing model ------------------------------------------------------

TEST(PartitionQueueTest, IdlePartitionServesImmediately) {
  Partition p;
  const SimTime completion = p.Submit(100, 10);
  EXPECT_EQ(completion, 110);
  EXPECT_EQ(p.busy_until(), 110);
}

TEST(PartitionQueueTest, FifoBackToBack) {
  Partition p;
  EXPECT_EQ(p.Submit(0, 10), 10);
  EXPECT_EQ(p.Submit(0, 10), 20);   // queues behind the first
  EXPECT_EQ(p.Submit(5, 10), 30);   // still queued
  EXPECT_EQ(p.Submit(100, 10), 110);  // idle again
}

TEST(PartitionQueueTest, QueueDelayReflectsBacklog) {
  Partition p;
  p.Submit(0, 50);
  EXPECT_EQ(p.QueueDelay(10), 40);
  EXPECT_EQ(p.QueueDelay(50), 0);
  EXPECT_EQ(p.QueueDelay(60), 0);
}

TEST(PartitionQueueTest, BusyTimeAccumulates) {
  Partition p;
  p.Submit(0, 10);
  p.Submit(0, 15);
  EXPECT_EQ(p.total_busy_time(), 25);
  EXPECT_EQ(p.jobs_executed(), 2);
}

TEST(PartitionQueueTest, LatencyGrowsUnderOverload) {
  // Offered rate 2x the service rate: queueing delay grows linearly —
  // the saturation behaviour behind Fig. 7.
  Partition p;
  SimTime last_latency = 0;
  for (int i = 0; i < 1000; ++i) {
    const SimTime arrival = i * 5;
    const SimTime completion = p.Submit(arrival, 10);
    last_latency = completion - arrival;
  }
  EXPECT_GT(last_latency, 4000);
}

// ---- Storage -----------------------------------------------------------------

TEST(PartitionStorageTest, PutGetErase) {
  Partition p;
  p.Put(7, 0, 42, MakeRow(100, 5));
  const Row* row = p.Get(7, 0, 42);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->f0, 5);
  EXPECT_EQ(p.row_count(), 1);
  EXPECT_EQ(p.data_bytes(), 100);
  EXPECT_TRUE(p.Erase(7, 0, 42));
  EXPECT_EQ(p.Get(7, 0, 42), nullptr);
  EXPECT_EQ(p.row_count(), 0);
  EXPECT_EQ(p.data_bytes(), 0);
}

TEST(PartitionStorageTest, GetMissingReturnsNull) {
  Partition p;
  EXPECT_EQ(p.Get(0, 0, 1), nullptr);
  EXPECT_EQ(p.GetMutable(0, 0, 1), nullptr);
  EXPECT_FALSE(p.Erase(0, 0, 1));
}

TEST(PartitionStorageTest, OverwriteAdjustsBytes) {
  Partition p;
  p.Put(1, 0, 9, MakeRow(100));
  p.Put(1, 0, 9, MakeRow(250));
  EXPECT_EQ(p.row_count(), 1);
  EXPECT_EQ(p.data_bytes(), 250);
}

TEST(PartitionStorageTest, TablesAreIndependentNamespaces) {
  Partition p;
  p.Put(1, 0, 9, MakeRow(10, 1));
  p.Put(1, 1, 9, MakeRow(20, 2));
  EXPECT_EQ(p.Get(1, 0, 9)->f0, 1);
  EXPECT_EQ(p.Get(1, 1, 9)->f0, 2);
  EXPECT_EQ(p.row_count(), 2);
}

TEST(PartitionStorageTest, BucketsAreIndependent) {
  Partition p;
  p.Put(1, 0, 9, MakeRow(10, 1));
  p.Put(2, 0, 9, MakeRow(20, 2));
  EXPECT_EQ(p.Get(1, 0, 9)->f0, 1);
  EXPECT_EQ(p.Get(2, 0, 9)->f0, 2);
  // Key 9 in bucket 3 does not exist.
  EXPECT_EQ(p.Get(3, 0, 9), nullptr);
}

TEST(PartitionStorageTest, GetMutableEditsInPlace) {
  Partition p;
  p.Put(1, 0, 9, MakeRow(10, 1));
  p.GetMutable(1, 0, 9)->f0 = 99;
  EXPECT_EQ(p.Get(1, 0, 9)->f0, 99);
}

TEST(PartitionBucketTest, ExtractAndInsertMovesEverything) {
  Partition source;
  Partition dest;
  source.Put(5, 0, 1, MakeRow(100, 11));
  source.Put(5, 0, 2, MakeRow(200, 22));
  source.Put(5, 1, 3, MakeRow(300, 33));
  source.Put(6, 0, 4, MakeRow(50, 44));  // different bucket, stays

  BucketData moved = source.ExtractBucket(5);
  EXPECT_EQ(moved.rows, 3);
  EXPECT_EQ(moved.bytes, 600);
  EXPECT_EQ(source.row_count(), 1);
  EXPECT_EQ(source.data_bytes(), 50);
  EXPECT_FALSE(source.HasBucket(5));
  EXPECT_TRUE(source.HasBucket(6));

  dest.InsertBucket(5, std::move(moved));
  EXPECT_EQ(dest.row_count(), 3);
  EXPECT_EQ(dest.data_bytes(), 600);
  ASSERT_NE(dest.Get(5, 0, 2), nullptr);
  EXPECT_EQ(dest.Get(5, 0, 2)->f0, 22);
  EXPECT_EQ(dest.Get(5, 1, 3)->f0, 33);
}

TEST(PartitionBucketTest, BucketBytes) {
  Partition p;
  EXPECT_EQ(p.BucketBytes(1), 0);
  p.Put(1, 0, 9, MakeRow(123));
  EXPECT_EQ(p.BucketBytes(1), 123);
}

TEST(PartitionBucketTest, EraseUpdatesBucketAccounting) {
  Partition p;
  p.Put(1, 0, 9, MakeRow(100));
  p.Put(1, 0, 10, MakeRow(100));
  EXPECT_TRUE(p.Erase(1, 0, 9));
  EXPECT_EQ(p.BucketBytes(1), 100);
  BucketData data = p.ExtractBucket(1);
  EXPECT_EQ(data.rows, 1);
  EXPECT_EQ(data.bytes, 100);
}

// ---- Hot-spot monitoring determinism -------------------------------------

TEST(PartitionMonitorTest, HottestBucketTiesBreakTowardLowestId) {
  // Three buckets tied at the max: the winner must be the lowest id,
  // not whichever the hash table happens to enumerate first.
  Partition p;
  for (const BucketId id : {42, 7, 19}) {
    p.RecordAccess(id);
    p.RecordAccess(id);
  }
  p.RecordAccess(3);  // below the tie
  int64_t accesses = 0;
  EXPECT_EQ(p.HottestBucket(&accesses), 7);
  EXPECT_EQ(accesses, 2);
  EXPECT_EQ(p.HottestBucketBelow(1, &accesses), 3);
  EXPECT_EQ(accesses, 1);
}

TEST(PartitionMonitorTest, HottestBucketIsInsertionOrderIndependent) {
  // Regression for the nondet-iteration fix: identical access counts
  // recorded in different insertion orders (different hash layouts)
  // must produce identical monitoring results.
  const std::vector<BucketId> forward = {1, 5, 9, 13, 17, 21};
  std::vector<BucketId> reversed(forward.rbegin(), forward.rend());
  Partition a;
  Partition b;
  for (const BucketId id : forward) {
    for (BucketId k = 0; k < 4; ++k) a.RecordAccess(id);
  }
  for (const BucketId id : reversed) {
    for (BucketId k = 0; k < 4; ++k) b.RecordAccess(id);
  }
  int64_t accesses_a = 0;
  int64_t accesses_b = 0;
  EXPECT_EQ(a.HottestBucket(&accesses_a), b.HottestBucket(&accesses_b));
  EXPECT_EQ(a.HottestBucket(nullptr), 1);  // all tied: lowest id wins
  EXPECT_EQ(accesses_a, accesses_b);
  EXPECT_EQ(a.HottestBucketBelow(4, nullptr), b.HottestBucketBelow(4, nullptr));
  EXPECT_EQ(a.TotalAccesses(), b.TotalAccesses());
  a.ResetAccessCounts();
  EXPECT_EQ(a.HottestBucket(nullptr), -1);
  EXPECT_EQ(a.TotalAccesses(), 0);
}

}  // namespace
}  // namespace pstore
