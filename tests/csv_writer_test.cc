#include "common/csv_writer.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/status.h"

namespace pstore {
namespace {

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::string out((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return out;
}

TEST(CsvWriterTest, CloseReportsSuccessAndFlushesRows) {
  const std::string path = ::testing::TempDir() + "/ok.csv";
  CsvWriter csv(path);
  ASSERT_TRUE(csv.ok());
  csv.WriteRow({"a", "b"});
  csv.WriteNumericRow({1.5, 2.0});
  EXPECT_TRUE(csv.Close().ok());
  EXPECT_EQ(ReadWholeFile(path), "a,b\n1.5,2\n");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, CloseSurfacesOpenFailure) {
  CsvWriter csv("/nonexistent/dir/out.csv");
  EXPECT_FALSE(csv.ok());
  csv.WriteRow({"dropped"});
  const Status closed = csv.Close();
  EXPECT_FALSE(closed.ok());
  // The error names the path so a bench log identifies the lost file.
  EXPECT_NE(closed.ToString().find("/nonexistent/dir/out.csv"),
            std::string::npos);
}

TEST(CsvWriterTest, CloseIsIdempotent) {
  const std::string path = ::testing::TempDir() + "/twice.csv";
  CsvWriter csv(path);
  csv.WriteRow({"x"});
  EXPECT_TRUE(csv.Close().ok());
  EXPECT_TRUE(csv.Close().ok());
  std::remove(path.c_str());

  CsvWriter bad("/nonexistent/dir/out.csv");
  EXPECT_FALSE(bad.Close().ok());
  // The sticky failure outcome is reported again, not forgotten.
  EXPECT_FALSE(bad.Close().ok());
}

TEST(CsvWriterTest, QuotesCellsWithCommasAndQuotes) {
  const std::string path = ::testing::TempDir() + "/quoted.csv";
  CsvWriter csv(path);
  csv.WriteRow({"plain", "a,b", "say \"hi\""});
  ASSERT_TRUE(csv.Close().ok());
  EXPECT_EQ(ReadWholeFile(path), "plain,\"a,b\",\"say \"\"hi\"\"\"\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pstore
