#include "planner/validate.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.h"

#include "b2w/procedures.h"
#include "b2w/schema.h"
#include "b2w/workload.h"
#include "common/status.h"
#include "common/strong_id.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "migration/squall_migrator.h"
#include "planner/dp_planner.h"
#include "planner/migration_schedule.h"
#include "planner/move.h"
#include "planner/move_model.h"

namespace pstore {
namespace {

bool AnyViolationContains(const std::vector<std::string>& violations,
                          const std::string& needle) {
  for (const std::string& violation : violations) {
    if (violation.find(needle) != std::string::npos) return true;
  }
  return false;
}

MigrationSchedule GoodSchedule(int before, int after) {
  StatusOr<MigrationSchedule> schedule =
      BuildMigrationSchedule(NodeCount(before), NodeCount(after));
  PSTORE_CHECK_OK(schedule.status());
  return *schedule;
}

PlannerParams TestParams() {
  PlannerParams params;
  params.target_rate_per_node = 100.0;
  params.max_rate_per_node = 123.0;
  params.d_slots = 4.0;
  params.partitions_per_node = 1;
  return params;
}

// ---- ScheduleValidator: good schedules ----------------------------------------

// Every schedule the builder emits must validate, across the
// configurations the paper's experiments use: 1 -> 2 (Fig. 8's chunk
// sweep), the elasticity range the Fig. 9 controllers walk through, and
// Table 1's 3 -> 14 three-phase move.
TEST(ScheduleValidatorTest, AcceptsBuilderSchedulesAcrossConfigurations) {
  const ScheduleValidator validator;
  for (int before = 1; before <= 14; ++before) {
    for (int after = 1; after <= 14; ++after) {
      if (before == after) continue;
      const std::vector<std::string> violations =
          validator.Violations(GoodSchedule(before, after));
      EXPECT_TRUE(violations.empty())
          << before << "->" << after << ": " << violations.front();
    }
  }
}

// ---- ScheduleValidator: seeded-bad schedules ----------------------------------

TEST(ScheduleValidatorTest, ReportsMachineInTwoConcurrentTransfers) {
  // Violate the Squall constraint: put one machine in two transfers of
  // the same round.
  MigrationSchedule bad = GoodSchedule(3, 5);
  ASSERT_GE(bad.rounds[0].transfers.size(), 2u);
  bad.rounds[0].transfers[1].sender = bad.rounds[0].transfers[0].sender;
  const ScheduleValidator validator;
  EXPECT_TRUE(AnyViolationContains(validator.Violations(bad),
                                   "machine used twice"));
  EXPECT_FALSE(validator.Validate(bad).ok());
}

TEST(ScheduleValidatorTest, ReportsUnequalPostMoveShares) {
  // Drop one transfer: the two machines of that pair end the move with
  // less (receiver) and more (sender) than the equal 1/A share.
  MigrationSchedule bad = GoodSchedule(3, 5);
  bad.rounds.back().transfers.pop_back();
  const ScheduleValidator validator;
  const std::vector<std::string> violations = validator.Violations(bad);
  EXPECT_TRUE(AnyViolationContains(violations, "unequal post-move share"));
  EXPECT_TRUE(AnyViolationContains(violations, "does not cover all"));
  EXPECT_FALSE(validator.Validate(bad).ok());
}

TEST(ScheduleValidatorTest, ReportsWrongPerPairFraction) {
  MigrationSchedule bad = GoodSchedule(2, 4);
  bad.per_pair_fraction *= 2.0;  // no longer 1/(B*A)
  EXPECT_TRUE(AnyViolationContains(ScheduleValidator().Violations(bad),
                                   "1/(B*A)"));
}

TEST(ScheduleValidatorTest, ReportsWrongTransferDirection) {
  MigrationSchedule bad = GoodSchedule(2, 4);
  std::swap(bad.rounds[0].transfers[0].sender,
            bad.rounds[0].transfers[0].receiver);
  EXPECT_TRUE(AnyViolationContains(ScheduleValidator().Violations(bad),
                                   "direction wrong"));
}

TEST(ScheduleValidatorTest, ReportsMissingRound) {
  MigrationSchedule bad = GoodSchedule(3, 9);
  bad.rounds.pop_back();
  EXPECT_TRUE(AnyViolationContains(ScheduleValidator().Violations(bad),
                                   "round count"));
}

TEST(ScheduleValidatorTest, ReportsNonMonotoneAllocation) {
  // 3 -> 9 allocates 6 then 9 machines; faking an early full allocation
  // that later shrinks must be flagged.
  MigrationSchedule bad = GoodSchedule(3, 9);
  bad.rounds[0].machines_allocated = NodeCount(9);
  EXPECT_TRUE(AnyViolationContains(ScheduleValidator().Violations(bad),
                                   "not monotone"));
}

TEST(ScheduleValidatorTest, ValidateSummarizesViolationCount) {
  MigrationSchedule bad = GoodSchedule(3, 5);
  bad.rounds.back().transfers.pop_back();
  const Status status = ScheduleValidator().Validate(bad);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("more violation"), std::string::npos);
}

// ---- PlanValidator: good plans ------------------------------------------------

TEST(PlanValidatorTest, AcceptsDpPlannerPlans) {
  const PlannerParams params = TestParams();
  const DpPlanner planner(params);
  const PlanValidator validator(params);
  // A ramp that forces a scale-out and a hump that forces out-and-back.
  const std::vector<std::vector<double>> loads = {
      {150, 150, 150, 150, 150, 350, 350, 350, 350, 350, 350, 350},
      {120, 120, 120, 290, 290, 120, 120, 120, 120, 120, 120, 120},
      std::vector<double>(10, 150.0),
  };
  for (const std::vector<double>& load : loads) {
    StatusOr<PlanResult> plan = planner.BestMoves(load, NodeCount(2));
    ASSERT_TRUE(plan.ok());
    const std::vector<std::string> violations =
        validator.Violations(*plan, load, NodeCount(2));
    EXPECT_TRUE(violations.empty()) << violations.front();
  }
}

// ---- PlanValidator: seeded-bad plans ------------------------------------------

TEST(PlanValidatorTest, ReportsCapacityViolatingPlan) {
  // A hand-written "do nothing" plan for a load that needs 4 machines:
  // Eq. 7 / Eq. 5 capacity is exceeded from slot 1 onward.
  const PlannerParams params = TestParams();
  const std::vector<double> load = {150, 400, 400, 400};
  PlanResult bad;
  for (int t = 0; t < 3; ++t) {
    bad.moves.push_back(Move{TimeStep(t), TimeStep(t + 1), NodeCount(2),
                             NodeCount(2)});
  }
  bad.final_nodes = NodeCount(2);
  bad.total_cost = 8.0;  // 2 machines x 4 slots: accounting is consistent
  const PlanValidator validator(params);
  const std::vector<std::string> violations =
      validator.Violations(bad, load, NodeCount(2));
  EXPECT_TRUE(AnyViolationContains(violations, "exceeds effective capacity"));
  EXPECT_FALSE(validator.Validate(bad, load, NodeCount(2)).ok());
}

TEST(PlanValidatorTest, ReportsBrokenMachineChain) {
  const PlannerParams params = TestParams();
  const std::vector<double> load(10, 150.0);
  const DpPlanner planner(params);
  StatusOr<PlanResult> plan = planner.BestMoves(load, NodeCount(2));
  ASSERT_TRUE(plan.ok());
  PlanResult bad = *plan;
  ASSERT_GE(bad.moves.size(), 2u);
  bad.moves[1].nodes_before = NodeCount(3);
  bad.moves[1].nodes_after = NodeCount(3);
  EXPECT_TRUE(AnyViolationContains(
      PlanValidator(params).Violations(bad, load, NodeCount(2)),
      "chain broken"));
}

TEST(PlanValidatorTest, ReportsCostMismatch) {
  const PlannerParams params = TestParams();
  const std::vector<double> load(10, 150.0);
  const DpPlanner planner(params);
  StatusOr<PlanResult> plan = planner.BestMoves(load, NodeCount(2));
  ASSERT_TRUE(plan.ok());
  PlanResult bad = *plan;
  bad.total_cost += 1.0;
  EXPECT_TRUE(AnyViolationContains(
      PlanValidator(params).Violations(bad, load, NodeCount(2)),
      "total_cost"));
}

TEST(PlanValidatorTest, ReportsWrongMoveDuration) {
  // A 1 -> 2 move squeezed into fewer slots than ceil(Eq. 3) allows.
  const PlannerParams params = TestParams();
  const std::vector<double> load = {90, 90, 90, 150, 150, 150};
  PlanResult bad;
  bad.moves.push_back(
      Move{TimeStep(0), TimeStep(1), NodeCount(1), NodeCount(2)});
  for (int t = 1; t < 5; ++t) {
    bad.moves.push_back(Move{TimeStep(t), TimeStep(t + 1), NodeCount(2),
                             NodeCount(2)});
  }
  bad.final_nodes = NodeCount(2);
  EXPECT_TRUE(AnyViolationContains(
      PlanValidator(params).Violations(bad, load, NodeCount(1)),
      "ceil(Eq. 3)"));
}

// ---- End to end: the migrator's schedules validate ----------------------------

// Runs the Fig. 8 configuration (1 -> 2 machines over a B2W-style
// dataset) through the real migrator. StartReconfiguration builds its
// schedule through BuildMigrationSchedule and debug-validates it; here
// we re-validate the equivalent schedule explicitly and check the move
// completes cleanly.
TEST(ValidatorIntegrationTest, MigratorScheduleValidatesOnFig08Config) {
  ClusterOptions cluster_options;
  cluster_options.partitions_per_node = 6;
  cluster_options.max_nodes = 2;
  cluster_options.initial_nodes = 1;
  cluster_options.num_buckets = 1200;
  Cluster cluster(cluster_options);
  b2w::B2wWorkloadOptions workload_options;
  workload_options.cart_pool = 2000;
  workload_options.checkout_pool = 800;
  b2w::Workload workload(workload_options);
  PSTORE_CHECK_OK(workload.LoadInitialData(&cluster));

  EventLoop loop;
  MigrationOptions migration_options;
  migration_options.net_rate_bytes_per_sec = 10e6;
  migration_options.chunk_spacing_seconds = 0.01;
  migration_options.extract_rate_bytes_per_sec = 200e6;
  MigrationManager migration(&loop, &cluster, nullptr, migration_options);

  Status done = Status::Internal("never finished");
  ASSERT_TRUE(migration
                  .StartReconfiguration(NodeCount(2), 1.0,
                                        [&](const Status& s) { done = s; })
                  .ok());
  loop.RunToCompletion();
  EXPECT_TRUE(done.ok()) << done.ToString();
  EXPECT_EQ(cluster.active_nodes(), 2);

  EXPECT_TRUE(ScheduleValidator().Validate(GoodSchedule(1, 2)).ok());
}

}  // namespace
}  // namespace pstore
