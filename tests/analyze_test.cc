// Fixture tests for the pstore_analyze rule families: each rule is
// seeded with a small violating snippet and asserted to fire, plus the
// negative cases (suppressions, explicit discards, exports) that keep
// the real tree clean.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/check.h"
#include "analysis/hot_path_perf_check.h"
#include "analysis/include_hygiene_check.h"
#include "analysis/layering_check.h"
#include "analysis/nondet_iteration_check.h"
#include "analysis/project.h"
#include "analysis/source_file.h"
#include "analysis/status_check.h"
#include "analysis/symbol_graph.h"
#include "analysis/token_cache.h"
#include "analysis/tokenizer.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace pstore {
namespace analysis {
namespace {

SourceFile Make(const std::string& path, const std::string& body) {
  return SourceFile::FromContents(path, body);
}

bool HasFinding(const std::vector<Finding>& findings, const std::string& rule,
                const std::string& file, const std::string& needle) {
  for (const Finding& finding : findings) {
    if (finding.rule == rule && finding.file == file &&
        finding.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

std::vector<Finding> RunRule(const Project& project, const std::string& rule) {
  Analyzer analyzer;
  EXPECT_TRUE(analyzer.SelectRules({rule}).ok());
  return analyzer.Run(project);
}

// ---------------------------------------------------------------- source file

TEST(SourceFileTest, StripsCommentsAndStringsButKeepsLines) {
  SourceFile file = Make("src/common/x.h",
                         "int a; // trailing comment\n"
                         "const char* s = \"string // not a comment\";\n"
                         "/* block\n   spanning */ int b;\n");  // b on line 4
  EXPECT_NE(file.clean().find("int a;"), std::string::npos);
  EXPECT_NE(file.clean().find("int b;"), std::string::npos);
  EXPECT_EQ(file.clean().find("trailing"), std::string::npos);
  EXPECT_EQ(file.clean().find("not a comment"), std::string::npos);
  EXPECT_EQ(file.clean().find("spanning"), std::string::npos);
  // Line structure preserved: "int b;" lands on line 4 because the
  // block comment spans lines 3-4.
  std::vector<Token> tokens = Tokenize(file.clean());
  ASSERT_FALSE(tokens.empty());
  EXPECT_EQ(tokens.back().text, ";");
  EXPECT_EQ(tokens.back().line, 4);
}

TEST(SourceFileTest, HandlesRawStringsAndEscapedQuotes) {
  SourceFile file = Make("src/common/x.cc",
                         "auto a = R\"(raw \" with quote and // slashes)\";\n"
                         "auto b = R\"delim(nested )\" still raw)delim\";\n"
                         "auto c = \"escaped \\\" quote\"; int after = 1;\n");
  EXPECT_EQ(file.clean().find("raw"), std::string::npos);
  EXPECT_EQ(file.clean().find("still"), std::string::npos);
  EXPECT_EQ(file.clean().find("escaped"), std::string::npos);
  EXPECT_NE(file.clean().find("int after = 1;"), std::string::npos);
}

TEST(SourceFileTest, DigitSeparatorIsNotACharLiteral) {
  SourceFile file = Make("src/common/x.cc",
                         "int big = 1'000'000; int next = 2;\n");
  EXPECT_NE(file.clean().find("int next = 2;"), std::string::npos);
}

TEST(SourceFileTest, RecordsIncludesAndMacros) {
  SourceFile file = Make("src/common/x.h",
                         "#include <vector>\n"
                         "#include \"common/status.h\"\n"
                         "#define MY_MACRO(x) (x)\n");
  ASSERT_EQ(file.includes().size(), 2u);
  EXPECT_TRUE(file.includes()[0].angled);
  EXPECT_EQ(file.includes()[0].target, "vector");
  EXPECT_FALSE(file.includes()[1].angled);
  EXPECT_EQ(file.includes()[1].target, "common/status.h");
  EXPECT_EQ(file.includes()[1].line, 2);
  ASSERT_EQ(file.macros().size(), 1u);
  EXPECT_EQ(file.macros()[0].name, "MY_MACRO");
}

TEST(SourceFileTest, DirAndIncludeKeyDerivation) {
  SourceFile in_src = Make("/abs/repo/src/planner/move.h", "");
  EXPECT_EQ(in_src.dir(), "planner");
  EXPECT_EQ(in_src.include_key(), "planner/move.h");
  SourceFile outside = Make("tests/analyze_test.cc", "");
  EXPECT_EQ(outside.dir(), "");
  EXPECT_EQ(outside.include_key(), "");
}

TEST(SourceFileTest, SuppressionCoversOwnOrNextLine) {
  SourceFile file = Make("src/common/x.cc",
                         "Foo();  // pstore-analyze: allow(status)\n"
                         "// pstore-analyze: allow(layering, include)\n"
                         "Bar();\n");
  EXPECT_TRUE(file.IsSuppressed("status", 1));
  EXPECT_FALSE(file.IsSuppressed("include", 1));
  EXPECT_TRUE(file.IsSuppressed("layering", 3));
  EXPECT_TRUE(file.IsSuppressed("include", 3));
  EXPECT_FALSE(file.IsSuppressed("status", 3));
}

// ------------------------------------------------------------------- layering

TEST(LayeringCheckTest, FlagsForbiddenEdge) {
  Project project;
  project.AddFile(Make("src/migration/squall.h", "struct Mig {};\n"));
  project.AddFile(Make("src/planner/bad.h",
                       "#include \"migration/squall.h\"\n"
                       "Mig use_it();\n"));
  std::vector<Finding> findings = RunRule(project, "layering");
  EXPECT_TRUE(HasFinding(findings, "layering", "src/planner/bad.h",
                         "'planner' may not depend on 'migration'"));
}

TEST(LayeringCheckTest, AllowsDeclaredEdgeAndSelf) {
  Project project;
  project.AddFile(Make("src/common/base.h", "struct Base {};\n"));
  project.AddFile(Make("src/planner/a.h", "struct A {};\n"));
  project.AddFile(Make("src/planner/good.h",
                       "#include \"common/base.h\"\n"
                       "#include \"planner/a.h\"\n"
                       "Base b(); A a();\n"));
  EXPECT_TRUE(RunRule(project, "layering").empty());
}

TEST(LayeringCheckTest, ReportsCycleInObservedGraph) {
  Project project;
  // planner -> engine is allowed; engine -> planner is both a
  // violation and closes a directory cycle.
  project.AddFile(Make("src/planner/a.h",
                       "#include \"engine/b.h\"\nEngineB use();\n"));
  project.AddFile(Make("src/engine/b.h",
                       "#include \"planner/a.h\"\nstruct EngineB {};\n"));
  std::vector<Finding> findings = RunRule(project, "layering");
  EXPECT_TRUE(HasFinding(findings, "layering", "src/engine/b.h",
                         "'engine' may not depend on 'planner'"));
  // The cycle report anchors at whichever edge the DFS closes, so only
  // pin the rule and message, not the file.
  bool cycle_reported = false;
  for (const Finding& finding : findings) {
    if (finding.rule == "layering" &&
        finding.message.find("include cycle between src directories") !=
            std::string::npos) {
      cycle_reported = true;
      EXPECT_NE(finding.message.find("engine"), std::string::npos);
      EXPECT_NE(finding.message.find("planner"), std::string::npos);
    }
  }
  EXPECT_TRUE(cycle_reported);
}

TEST(LayeringCheckTest, FlagsDirectoryMissingFromTheDag) {
  Project project;
  project.AddFile(Make("src/newdir/thing.h", "struct Thing {};\n"));
  std::vector<Finding> findings = RunRule(project, "layering");
  EXPECT_TRUE(HasFinding(findings, "layering", "src/newdir/thing.h",
                         "not declared in the layer DAG"));
}

TEST(LayeringCheckTest, DeclaredDagIsAcyclicAndClosed) {
  // Every directory named in an allowed set is itself declared, and the
  // declared edges form a DAG (defense against future map edits).
  const auto& allowed = LayeringCheck::AllowedDependencies();
  for (const auto& [dir, deps] : allowed) {
    for (const std::string& dep : deps) {
      EXPECT_TRUE(allowed.count(dep) != 0) << dir << " -> " << dep;
      // Antisymmetry is enough for a DAG here because allowed sets are
      // transitively closed by construction.
      auto it = allowed.find(dep);
      if (it != allowed.end()) {
        EXPECT_TRUE(it->second.count(dir) == 0)
            << "cycle: " << dir << " <-> " << dep;
      }
    }
  }
}

// --------------------------------------------------------------------- status

TEST(StatusCheckTest, CollectsStatusReturningFunctions) {
  Project project;
  project.AddFile(Make("src/common/api.h",
                       "Status DoThing(int x);\n"
                       "StatusOr<std::vector<int>> Compute();\n"
                       "class Widget {\n"
                       " public:\n"
                       "  Status Apply();\n"
                       "  const Status& last() const;\n"
                       "  void Run();\n"
                       "};\n"));
  TokenCache cache(project);
  std::set<std::string> fns = StatusCheck::CollectStatusFunctions(project, cache);
  EXPECT_TRUE(fns.count("DoThing"));
  EXPECT_TRUE(fns.count("Compute"));
  EXPECT_TRUE(fns.count("Apply"));
  EXPECT_FALSE(fns.count("last"));
  EXPECT_FALSE(fns.count("Run"));
}

TEST(StatusCheckTest, FlagsDiscardedCalls) {
  Project project;
  project.AddFile(Make("src/common/api.h",
                       "Status DoThing(int x);\n"
                       "struct Widget { Status Apply(); };\n"));
  project.AddFile(Make("src/common/user.cc",
                       "#include \"common/api.h\"\n"
                       "void Caller(Widget w, Widget* p) {\n"
                       "  DoThing(1);\n"
                       "  w.Apply();\n"
                       "  p->Apply();\n"
                       "  if (p) DoThing(2);\n"
                       "}\n"));
  std::vector<Finding> findings = RunRule(project, "status");
  ASSERT_EQ(findings.size(), 4u);
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_EQ(findings[1].line, 4);
  EXPECT_EQ(findings[2].line, 5);
  EXPECT_EQ(findings[3].line, 6);
  EXPECT_TRUE(HasFinding(findings, "status", "src/common/user.cc",
                         "'DoThing' is silently discarded"));
  EXPECT_TRUE(HasFinding(findings, "status", "src/common/user.cc",
                         "'Apply' is silently discarded"));
}

TEST(StatusCheckTest, AcceptsHandledConsumedOrVoidedCalls) {
  Project project;
  project.AddFile(Make("src/common/api.h", "Status DoThing(int x);\n"));
  project.AddFile(Make("src/common/user.cc",
                       "#include \"common/api.h\"\n"
                       "Status Forward() {\n"
                       "  (void)DoThing(1);\n"
                       "  Status s = DoThing(2);\n"
                       "  RETURN_IF_ERROR(DoThing(3));\n"
                       "  if (!DoThing(4).ok()) return s;\n"
                       "  return DoThing(5);\n"
                       "}\n"));
  EXPECT_TRUE(RunRule(project, "status").empty());
}

TEST(StatusCheckTest, SuppressionComment) {
  Project project;
  project.AddFile(Make("src/common/api.h", "Status DoThing(int x);\n"));
  project.AddFile(Make("src/common/user.cc",
                       "#include \"common/api.h\"\n"
                       "void Caller() {\n"
                       "  DoThing(1);  // pstore-analyze: allow(status)\n"
                       "}\n"));
  EXPECT_TRUE(RunRule(project, "status").empty());
}

// -------------------------------------------------------------------- include

TEST(IncludeHygieneTest, ExtractsDeclaredNames) {
  SourceFile header = Make("src/common/api.h",
                           "#define API_MACRO 1\n"
                           "namespace pstore {\n"
                           "enum class Color { kRed, kBlue };\n"
                           "using Alias = int;\n"
                           "struct Gadget {\n"
                           "  void Method();\n"
                           "  int member_ = 0;\n"
                           "};\n"
                           "double Compute(double x);\n"
                           "inline constexpr int kLimit = 3;\n"
                           "}\n");
  DeclaredNames names = IncludeHygieneCheck::ExtractDeclaredNames(header);
  EXPECT_TRUE(names.strong.count("API_MACRO"));
  EXPECT_TRUE(names.strong.count("Color"));
  EXPECT_TRUE(names.strong.count("kRed"));
  EXPECT_TRUE(names.strong.count("Alias"));
  EXPECT_TRUE(names.strong.count("Gadget"));
  EXPECT_TRUE(names.strong.count("Compute"));
  EXPECT_TRUE(names.strong.count("kLimit"));
  EXPECT_TRUE(names.weak.count("Method"));
  EXPECT_TRUE(names.weak.count("member_"));
  EXPECT_FALSE(names.strong.count("Method"));
  // Parameter names declare nothing.
  EXPECT_FALSE(names.strong.count("x"));
  EXPECT_FALSE(names.weak.count("x"));
}

TEST(IncludeHygieneTest, FlagsUnusedInclude) {
  Project project;
  project.AddFile(Make("src/common/alpha.h", "struct Alpha {};\n"));
  project.AddFile(Make("src/planner/user.cc",
                       "#include \"common/alpha.h\"\n"
                       "int unrelated() { return 7; }\n"));
  std::vector<Finding> findings = RunRule(project, "include");
  EXPECT_TRUE(HasFinding(findings, "include", "src/planner/user.cc",
                         "unused include"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 1);
}

TEST(IncludeHygieneTest, FlagsMissingDirectInclude) {
  Project project;
  project.AddFile(Make("src/common/alpha.h", "struct Alpha {};\n"));
  project.AddFile(Make("src/common/beta.h",
                       "#include \"common/alpha.h\"\n"
                       "struct Beta { Alpha a; };\n"));
  project.AddFile(Make("src/planner/user.cc",
                       "#include \"common/beta.h\"\n"
                       "Beta b;\n"
                       "Alpha a;\n"));
  std::vector<Finding> findings = RunRule(project, "include");
  EXPECT_TRUE(HasFinding(findings, "include", "src/planner/user.cc",
                         "uses 'Alpha' declared in 'common/alpha.h'"));
}

TEST(IncludeHygieneTest, OwnHeaderIsAlwaysKept) {
  Project project;
  project.AddFile(Make("src/planner/thing.h", "struct Thing {};\n"));
  project.AddFile(Make("src/planner/thing.cc",
                       "#include \"planner/thing.h\"\n"
                       "int helper() { return 1; }\n"));
  EXPECT_TRUE(RunRule(project, "include").empty());
}

TEST(IncludeHygieneTest, IwyuExportVouchesForTheTarget) {
  Project project;
  project.AddFile(Make("src/common/alpha.h", "struct Alpha {};\n"));
  project.AddFile(Make(
      "src/common/facade.h",
      "#include \"common/alpha.h\"  // IWYU pragma: export\n"));
  project.AddFile(Make("src/planner/user.cc",
                       "#include \"common/facade.h\"\n"
                       "Alpha a;\n"));
  std::vector<Finding> findings = RunRule(project, "include");
  // Neither a missing-include for alpha.h (the facade re-exports it)
  // nor an unused-include for facade.h (its exported names are used).
  EXPECT_TRUE(findings.empty());
}

TEST(IncludeHygieneTest, SuppressionKeepsAnInclude) {
  Project project;
  project.AddFile(Make("src/common/alpha.h", "struct Alpha {};\n"));
  project.AddFile(Make(
      "src/planner/user.cc",
      "#include \"common/alpha.h\"  // pstore-analyze: allow(include)\n"
      "int unrelated() { return 7; }\n"));
  EXPECT_TRUE(RunRule(project, "include").empty());
}

// ----------------------------------------------------------- nondet-iteration

TEST(NondetIterationTest, SimAffectingDirs) {
  for (const char* dir : {"engine", "sim", "fleet", "planner", "prediction",
                          "migration", "controller", "fault"}) {
    EXPECT_TRUE(NondetIterationCheck::IsSimAffectingDir(dir)) << dir;
  }
  EXPECT_FALSE(NondetIterationCheck::IsSimAffectingDir("common"));
  EXPECT_FALSE(NondetIterationCheck::IsSimAffectingDir("b2w"));
  EXPECT_FALSE(NondetIterationCheck::IsSimAffectingDir(""));
}

TEST(NondetIterationTest, FlagsDeclarationRangeForAndBegin) {
  Project project;
  project.AddFile(Make("src/engine/hot.h",
                       "struct Hot {\n"
                       "  std::unordered_map<int, int> counts_;\n"
                       "};\n"));
  project.AddFile(Make("src/engine/hot.cc",
                       "void Hot_Scan(Hot* h) {\n"
                       "  for (const auto& kv : h->counts_) { (void)kv; }\n"
                       "  auto it = h->counts_.begin();\n"
                       "  (void)it;\n"
                       "}\n"));
  std::vector<Finding> findings = RunRule(project, "nondet-iteration");
  EXPECT_TRUE(HasFinding(findings, "nondet-iteration", "src/engine/hot.h",
                         "unordered container 'counts_' declared"));
  EXPECT_TRUE(HasFinding(findings, "nondet-iteration", "src/engine/hot.cc",
                         "range-for over unordered container 'counts_'"));
  EXPECT_TRUE(HasFinding(findings, "nondet-iteration", "src/engine/hot.cc",
                         "iterator over unordered container 'counts_'"));
  EXPECT_EQ(findings.size(), 3u);
}

TEST(NondetIterationTest, SeesThroughUsingAliases) {
  Project project;
  project.AddFile(Make("src/common/types.h",
                       "using CountMap = std::unordered_map<int, long>;\n"));
  project.AddFile(Make("src/sim/state.h",
                       "#include \"common/types.h\"\n"
                       "struct State { CountMap by_id_; };\n"));
  std::vector<Finding> findings = RunRule(project, "nondet-iteration");
  EXPECT_TRUE(HasFinding(findings, "nondet-iteration", "src/sim/state.h",
                         "unordered container 'by_id_' declared"));
}

TEST(NondetIterationTest, NonSimDirAndOrderedContainersAreClean) {
  Project project;
  // The same declaration outside a sim-affecting module is fine, as is
  // any ordered container inside one.
  project.AddFile(Make("src/common/cache.h",
                       "struct Cache { std::unordered_map<int, int> m_; };\n"));
  project.AddFile(Make("src/engine/sortedscan.cc",
                       "void Scan(const std::map<int, int>& m) {\n"
                       "  for (const auto& kv : m) { (void)kv; }\n"
                       "}\n"));
  EXPECT_TRUE(RunRule(project, "nondet-iteration").empty());
}

TEST(NondetIterationTest, SuppressionComment) {
  Project project;
  project.AddFile(Make("src/engine/hot.h",
                       "struct Hot {\n"
                       "  // pstore-analyze: allow(nondet-iteration)\n"
                       "  std::unordered_map<int, int> counts_;\n"
                       "};\n"));
  project.AddFile(Make(
      "src/engine/hot.cc",
      "long Hot_Sum(const Hot& h) {\n"
      "  long total = 0;\n"
      "  // Commutative sum; order-independent.\n"
      "  // pstore-analyze: allow(nondet-iteration)\n"
      "  for (const auto& kv : h.counts_) total += kv.second;\n"
      "  return total;\n"
      "}\n"));
  EXPECT_TRUE(RunRule(project, "nondet-iteration").empty());
}

// ------------------------------------------------------- global-mutable-state

TEST(GlobalStateTest, FlagsNamespaceScopeVariable) {
  Project project;
  project.AddFile(Make("src/common/globals.cc",
                       "namespace pstore {\n"
                       "int g_counter = 0;\n"
                       "}  // namespace pstore\n"));
  std::vector<Finding> findings = RunRule(project, "global-mutable-state");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(HasFinding(findings, "global-mutable-state",
                         "src/common/globals.cc",
                         "namespace-scope variable 'g_counter'"));
  EXPECT_EQ(findings[0].line, 2);
}

TEST(GlobalStateTest, FlagsFunctionLocalStatic) {
  Project project;
  project.AddFile(Make("src/common/ids.h",
                       "inline int NextId() {\n"
                       "  static int counter = 0;\n"
                       "  return ++counter;\n"
                       "}\n"));
  std::vector<Finding> findings = RunRule(project, "global-mutable-state");
  EXPECT_TRUE(HasFinding(findings, "global-mutable-state", "src/common/ids.h",
                         "function-local static 'counter'"));
}

TEST(GlobalStateTest, FlagsStaticDataMember) {
  Project project;
  project.AddFile(Make("src/common/widget.h",
                       "class Widget {\n"
                       "  static int live_count_;\n"
                       "};\n"));
  std::vector<Finding> findings = RunRule(project, "global-mutable-state");
  EXPECT_TRUE(HasFinding(findings, "global-mutable-state",
                         "src/common/widget.h",
                         "static data member 'live_count_'"));
}

TEST(GlobalStateTest, ConstFunctionsAndMethodsAreClean) {
  Project project;
  project.AddFile(Make(
      "src/common/clean.h",
      "constexpr int kLimit = 8;\n"
      "const char* const kName = nullptr;\n"
      "inline int Add(int a, int b) { return a + b; }\n"
      "inline bool operator==(int a, long b) { return b == a; }\n"
      "class Widget {\n"
      " public:\n"
      "  static constexpr int kMax = 4;\n"
      "  static int Count();\n"
      "  void Tick() { int local = 0; local += 1; (void)local; }\n"
      " private:\n"
      "  int member_ = 0;\n"
      "};\n"
      "inline const std::map<int, int>& Table() {\n"
      "  static const std::map<int, int> kTable = {{1, 2}};\n"
      "  return kTable;\n"
      "}\n"));
  project.AddFile(Make("src/common/clean.cc",
                       "#include \"common/clean.h\"\n"
                       "int Widget::Count() { return 0; }\n"));
  EXPECT_TRUE(RunRule(project, "global-mutable-state").empty());
}

TEST(GlobalStateTest, SuppressionComment) {
  Project project;
  project.AddFile(Make(
      "src/common/registry.cc",
      "// Deliberately process-wide: written once at startup.\n"
      "// pstore-analyze: allow(global-mutable-state)\n"
      "int g_registry_epoch = 0;\n"));
  EXPECT_TRUE(RunRule(project, "global-mutable-state").empty());
}

// -------------------------------------------------------------- pointer-order

TEST(PointerOrderTest, FlagsPointerKeyedContainersAndComparators) {
  Project project;
  project.AddFile(Make("src/planner/index.h",
                       "struct Node;\n"
                       "struct Index {\n"
                       "  std::map<const Node*, int> weight_;\n"
                       "  std::set<Node*> visited_;\n"
                       "  std::less<Node*> cmp_;\n"
                       "};\n"));
  std::vector<Finding> findings = RunRule(project, "pointer-order");
  EXPECT_TRUE(HasFinding(findings, "pointer-order", "src/planner/index.h",
                         "std::map ordered by raw pointer key"));
  EXPECT_TRUE(HasFinding(findings, "pointer-order", "src/planner/index.h",
                         "std::set ordered by raw pointer key"));
  EXPECT_TRUE(HasFinding(findings, "pointer-order", "src/planner/index.h",
                         "std::less ordered by raw pointer key"));
  EXPECT_EQ(findings.size(), 3u);
}

TEST(PointerOrderTest, FlagsPointerComparingLambda) {
  Project project;
  project.AddFile(Make(
      "src/planner/sortit.cc",
      "struct Node;\n"
      "void SortNodes(std::vector<Node*>* nodes) {\n"
      "  std::sort(nodes->begin(), nodes->end(),\n"
      "            [](const Node* a, const Node* b) { return a < b; });\n"
      "}\n"));
  std::vector<Finding> findings = RunRule(project, "pointer-order");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(HasFinding(findings, "pointer-order", "src/planner/sortit.cc",
                         "comparator lambda orders raw pointers 'a' and 'b'"));
}

TEST(PointerOrderTest, ValueKeysAndFieldComparatorsAreClean) {
  Project project;
  project.AddFile(Make(
      "src/planner/clean.cc",
      "struct Node { int id; };\n"
      "std::map<int, Node*> by_id;  "
      "// pstore-analyze: allow(global-mutable-state)\n"
      "void SortNodes(std::vector<Node*>* nodes) {\n"
      "  std::sort(nodes->begin(), nodes->end(),\n"
      "            [](const Node* a, const Node* b) "
      "{ return a->id < b->id; });\n"
      "}\n"));
  // Pointer *values* (not keys) and field-based comparisons are fine.
  EXPECT_TRUE(RunRule(project, "pointer-order").empty());
}

TEST(PointerOrderTest, SuppressionComment) {
  Project project;
  project.AddFile(Make(
      "src/planner/arena.h",
      "struct Slab;\n"
      "struct Arena {\n"
      "  // Iterated only for leak accounting, never for results.\n"
      "  // pstore-analyze: allow(pointer-order)\n"
      "  std::set<Slab*> live_;\n"
      "};\n"));
  EXPECT_TRUE(RunRule(project, "pointer-order").empty());
}

// ----------------------------------------------------------------- guarded-by

TEST(GuardedByTest, FlagsUnannotatedMutex) {
  Project project;
  project.AddFile(Make("src/common/bad_counter.h",
                       "class BadCounter {\n"
                       " private:\n"
                       "  std::mutex mu_;\n"
                       "  int value_ = 0;\n"
                       "};\n"));
  std::vector<Finding> findings = RunRule(project, "guarded-by");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(HasFinding(findings, "guarded-by", "src/common/bad_counter.h",
                         "owns mutex 'mu_' but no member is annotated"));
  EXPECT_EQ(findings[0].line, 3);
}

TEST(GuardedByTest, FlagsMethodThatSkipsTheLock) {
  Project project;
  project.AddFile(Make("src/common/racy.h",
                       "class Racy {\n"
                       " public:\n"
                       "  int Peek() const { return value_; }\n"
                       "  void Inc() {\n"
                       "    std::lock_guard<std::mutex> lock(mu_);\n"
                       "    ++value_;\n"
                       "  }\n"
                       " private:\n"
                       "  mutable std::mutex mu_;\n"
                       "  int value_ PSTORE_GUARDED_BY(mu_) = 0;\n"
                       "};\n"));
  project.AddFile(Make("src/common/racy.cc",
                       "#include \"common/racy.h\"\n"
                       "void Racy_Use(Racy* r) { (void)r; }\n"));
  std::vector<Finding> findings = RunRule(project, "guarded-by");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(HasFinding(findings, "guarded-by", "src/common/racy.h",
                         "'Racy::Peek' accesses 'value_' (guarded by 'mu_') "
                         "without naming the lock"));
  EXPECT_EQ(findings[0].line, 3);
}

TEST(GuardedByTest, ChecksOutOfLineDefinitions) {
  Project project;
  project.AddFile(Make("src/common/queue.h",
                       "class Queue {\n"
                       " public:\n"
                       "  Queue();\n"
                       "  int Size() const;\n"
                       "  void Push(int v);\n"
                       " private:\n"
                       "  mutable std::mutex mu_;\n"
                       "  std::vector<int> items_ PSTORE_GUARDED_BY(mu_);\n"
                       "};\n"));
  project.AddFile(Make(
      "src/common/queue.cc",
      "#include \"common/queue.h\"\n"
      // Ctor is exempt; Push locks; Size forgets the lock.
      "Queue::Queue() { items_.reserve(16); }\n"
      "void Queue::Push(int v) {\n"
      "  std::lock_guard<std::mutex> lock(mu_);\n"
      "  items_.push_back(v);\n"
      "}\n"
      "int Queue::Size() const { return (int)items_.size(); }\n"));
  std::vector<Finding> findings = RunRule(project, "guarded-by");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(HasFinding(findings, "guarded-by", "src/common/queue.cc",
                         "'Queue::Size' accesses 'items_'"));
}

TEST(GuardedByTest, ExternalMutexAnnotationIsTolerated) {
  Project project;
  // A nested struct's member guarded by the *owner's* lock: the
  // annotation names a mutex that is not a member of Inner, which is
  // recorded but not enforced (mirrors ThreadPool::Batch).
  project.AddFile(Make("src/common/owner.h",
                       "class Owner {\n"
                       " private:\n"
                       "  struct Inner {\n"
                       "    int cached PSTORE_GUARDED_BY(big_mu_) = 0;\n"
                       "  };\n"
                       "  std::mutex big_mu_;\n"
                       "  int state_ PSTORE_GUARDED_BY(big_mu_) = 0;\n"
                       "};\n"));
  EXPECT_TRUE(RunRule(project, "guarded-by").empty());
}

TEST(GuardedByTest, SuppressionComment) {
  Project project;
  project.AddFile(Make(
      "src/common/racy.h",
      "class Racy {\n"
      " public:\n"
      "  // Benign torn read, monitoring only.\n"
      "  // pstore-analyze: allow(guarded-by)\n"
      "  int Peek() const { return value_; }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int value_ PSTORE_GUARDED_BY(mu_) = 0;\n"
      "};\n"));
  EXPECT_TRUE(RunRule(project, "guarded-by").empty());
}

// ----------------------------------------------------------------- lock-order

// The seeded ABBA deadlock: First() takes mu_a_ then calls Second()
// (mu_b_ under mu_a_); Reversed() takes mu_b_ then mu_a_ directly.
Project AbbaProject() {
  Project project;
  project.AddFile(Make("src/engine/pair.h",
                       "namespace demo {\n"
                       "class Pair {\n"
                       " public:\n"
                       "  void First();\n"
                       "  void Second();\n"
                       "  void Reversed();\n"
                       " private:\n"
                       "  std::mutex mu_a_;\n"
                       "  std::mutex mu_b_;\n"
                       "  int value_ PSTORE_GUARDED_BY(mu_a_) = 0;\n"
                       "};\n"
                       "}  // namespace demo\n"));
  project.AddFile(Make("src/engine/pair.cc",
                       "#include \"engine/pair.h\"\n"
                       "namespace demo {\n"
                       "void Pair::First() {\n"
                       "  std::lock_guard<std::mutex> lock(mu_a_);\n"
                       "  Second();\n"
                       "}\n"
                       "void Pair::Second() {\n"
                       "  std::lock_guard<std::mutex> lock(mu_b_);\n"
                       "}\n"
                       "void Pair::Reversed() {\n"
                       "  std::lock_guard<std::mutex> lock_b(mu_b_);\n"
                       "  std::lock_guard<std::mutex> lock_a(mu_a_);\n"
                       "}\n"
                       "}  // namespace demo\n"));
  return project;
}

TEST(LockOrderTest, ReportsAbbaCycleWithWitnessCallPath) {
  std::vector<Finding> findings = RunRule(AbbaProject(), "lock-order");
  ASSERT_EQ(findings.size(), 1u);
  const Finding& finding = findings[0];
  EXPECT_EQ(finding.rule, "lock-order");
  EXPECT_NE(finding.message.find("lock-order cycle"), std::string::npos);
  EXPECT_NE(finding.message.find("Pair::mu_a_"), std::string::npos);
  EXPECT_NE(finding.message.find("Pair::mu_b_"), std::string::npos);
  // The witness names the cross-function carry path: mu_b_ is acquired
  // in Second while mu_a_ is held across the First -> Second call edge.
  EXPECT_NE(
      finding.message.find("across demo::Pair::First -> demo::Pair::Second"),
      std::string::npos);
}

TEST(LockOrderTest, ScopedLockAcquiresSimultaneously) {
  Project project;
  project.AddFile(Make("src/engine/both.h",
                       "namespace demo {\n"
                       "class Both {\n"
                       " public:\n"
                       "  void Forward();\n"
                       "  void Backward();\n"
                       " private:\n"
                       "  std::mutex mu_a_;\n"
                       "  std::mutex mu_b_;\n"
                       "};\n"
                       "}  // namespace demo\n"));
  // std::scoped_lock acquires its arguments with built-in deadlock
  // avoidance, so opposite argument orders must NOT produce a cycle.
  project.AddFile(Make("src/engine/both.cc",
                       "#include \"engine/both.h\"\n"
                       "namespace demo {\n"
                       "void Both::Forward() {\n"
                       "  std::scoped_lock lock(mu_a_, mu_b_);\n"
                       "}\n"
                       "void Both::Backward() {\n"
                       "  std::scoped_lock lock(mu_b_, mu_a_);\n"
                       "}\n"
                       "}  // namespace demo\n"));
  EXPECT_TRUE(RunRule(project, "lock-order").empty());
}

TEST(LockOrderTest, ConsistentOrderIsCleanAndSuppressionWorks) {
  Project consistent;
  consistent.AddFile(Make("src/engine/same.cc",
                          "namespace demo {\n"
                          "class Same {\n"
                          "  void One() {\n"
                          "    std::lock_guard<std::mutex> a(mu_a_);\n"
                          "    std::lock_guard<std::mutex> b(mu_b_);\n"
                          "  }\n"
                          "  void Two() {\n"
                          "    std::lock_guard<std::mutex> a(mu_a_);\n"
                          "    std::lock_guard<std::mutex> b(mu_b_);\n"
                          "  }\n"
                          "  std::mutex mu_a_;\n"
                          "  std::mutex mu_b_;\n"
                          "};\n"
                          "}  // namespace demo\n"));
  EXPECT_TRUE(RunRule(consistent, "lock-order").empty());

  // Suppressing at the reported acquisition site silences the cycle.
  Project annotated;
  annotated.AddFile(AbbaProject().files()[0]);
  annotated.AddFile(
      Make("src/engine/pair.cc",
           "#include \"engine/pair.h\"\n"
           "namespace demo {\n"
           "void Pair::First() {\n"
           "  std::lock_guard<std::mutex> lock(mu_a_);\n"
           "  Second();\n"
           "}\n"
           "void Pair::Second() {\n"
           "  // pstore-analyze: allow(lock-order) intentional in fixture\n"
           "  std::lock_guard<std::mutex> lock(mu_b_);\n"
           "}\n"
           "void Pair::Reversed() {\n"
           "  // pstore-analyze: allow(lock-order) intentional in fixture\n"
           "  std::lock_guard<std::mutex> lock_b(mu_b_);\n"
           "  std::lock_guard<std::mutex> lock_a(mu_a_);\n"
           "}\n"
           "}  // namespace demo\n"));
  EXPECT_TRUE(RunRule(annotated, "lock-order").empty());
}

// ---------------------------------------------------------------- dead-symbol

TEST(DeadSymbolTest, FlagsUnreferencedSrcFunction) {
  Project project;
  project.AddFile(Make("src/common/util.h",
                       "namespace pstore {\n"
                       "int Used(int x);\n"
                       "int Orphan(int x);\n"
                       "}  // namespace pstore\n"));
  project.AddFile(Make("src/common/util.cc",
                       "#include \"common/util.h\"\n"
                       "namespace pstore {\n"
                       "int Used(int x) { return x; }\n"
                       "int Orphan(int x) { return x * 2; }\n"
                       "}  // namespace pstore\n"));
  project.AddFile(Make("tests/util_test.cc",
                       "#include \"common/util.h\"\n"
                       "int main() { return pstore::Used(0); }\n"));
  std::vector<Finding> findings = RunRule(project, "dead-symbol");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(HasFinding(findings, "dead-symbol", "src/common/util.cc",
                         "'pstore::Orphan' is defined but has no call sites"));
}

TEST(DeadSymbolTest, ExternalCallersMentionsAndMainKeepSymbolsAlive) {
  Project project;
  project.AddFile(Make("src/common/kept.cc",
                       "namespace pstore {\n"
                       // Referenced by address from a tool: alive.
                       "int ByAddress() { return 1; }\n"
                       // Special members are exempt even if uncalled.
                       "struct Holder { ~Holder() { } };\n"
                       "}  // namespace pstore\n"));
  project.AddFile(Make("tools/driver.cc",
                       "int main() {\n"
                       "  auto* f = &pstore::ByAddress;\n"
                       "  return f != nullptr ? 0 : 1;\n"
                       "}\n"));
  EXPECT_TRUE(RunRule(project, "dead-symbol").empty());
}

TEST(DeadSymbolTest, SuppressionComment) {
  Project project;
  project.AddFile(Make(
      "src/common/api.cc",
      "namespace pstore {\n"
      "// Public API kept for downstream users.\n"
      "// pstore-analyze: allow(dead-symbol)\n"
      "int ReservedEntryPoint() { return 0; }\n"
      "}  // namespace pstore\n"));
  EXPECT_TRUE(RunRule(project, "dead-symbol").empty());
}

// -------------------------------------------------------------- hot-path-perf

// A hot-path fixture: Simulate() lives in src/sim and is a hot root by
// name and directory; Helper() is reachable from it.
Project HotPathProject(const std::string& helper_body) {
  Project project;
  project.AddFile(Make("src/sim/loop.cc",
                       "namespace pstore {\n"
                       "void Helper(std::vector<int>* out);\n"
                       "void Simulate() {\n"
                       "  std::vector<int> out;\n"
                       "  Helper(&out);\n"
                       "}\n"
                       "void Helper(std::vector<int>* out) {\n" +
                           helper_body +
                           "}\n"
                           "}  // namespace pstore\n"));
  return project;
}

TEST(HotPathPerfTest, FlagsLoopGrowthWithoutReserve) {
  Project project = HotPathProject(
      "  for (int i = 0; i < 100; ++i) {\n"
      "    out->push_back(i);\n"
      "  }\n");
  std::vector<Finding> findings = RunRule(project, "hot-path-perf");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(HasFinding(findings, "hot-path-perf", "src/sim/loop.cc",
                         "grown with push_back inside a loop"));
}

TEST(HotPathPerfTest, PriorReserveIsClean) {
  Project project = HotPathProject(
      "  out->reserve(100);\n"
      "  for (int i = 0; i < 100; ++i) {\n"
      "    out->push_back(i);\n"
      "  }\n");
  EXPECT_TRUE(RunRule(project, "hot-path-perf").empty());
}

TEST(HotPathPerfTest, FlagsByValueHeavyParamAndStdFunctionInLoop) {
  Project project;
  project.AddFile(Make(
      "src/engine/tick.cc",
      "namespace pstore {\n"
      "int Consume(std::string label);\n"
      "void Tick() {\n"
      "  for (int i = 0; i < 4; ++i) {\n"
      "    std::function<int(int)> f = [](int x) { return x; };\n"
      "    (void)f;\n"
      "  }\n"
      "  Consume(\"x\");\n"
      "}\n"
      "int Consume(std::string label) { return (int)label.size(); }\n"
      "}  // namespace pstore\n"));
  std::vector<Finding> findings = RunRule(project, "hot-path-perf");
  EXPECT_TRUE(HasFinding(findings, "hot-path-perf", "src/engine/tick.cc",
                         "parameter 'label'"));
  EXPECT_TRUE(HasFinding(findings, "hot-path-perf", "src/engine/tick.cc",
                         "std::function constructed inside a loop"));
  EXPECT_EQ(findings.size(), 2u);
}

TEST(HotPathPerfTest, MovedFromByValueParamIsASink) {
  Project project;
  project.AddFile(Make(
      "src/engine/tick.cc",
      "namespace pstore {\n"
      "void Store(std::string label);\n"
      "void Tick() { Store(\"x\"); }\n"
      "void Store(std::string label) {\n"
      "  std::string kept = std::move(label);\n"
      "  (void)kept;\n"
      "}\n"
      "}  // namespace pstore\n"));
  EXPECT_TRUE(RunRule(project, "hot-path-perf").empty());
}

TEST(HotPathPerfTest, ColdFunctionsAndSuppressionsAreClean) {
  // The same growth pattern outside a hot root's reach is not linted.
  Project cold;
  cold.AddFile(Make("src/common/build.cc",
                    "namespace pstore {\n"
                    "void Collect(std::vector<int>* out) {\n"
                    "  for (int i = 0; i < 100; ++i) {\n"
                    "    out->push_back(i);\n"
                    "  }\n"
                    "}\n"
                    "}  // namespace pstore\n"));
  EXPECT_TRUE(RunRule(cold, "hot-path-perf").empty());

  Project suppressed = HotPathProject(
      "  for (int i = 0; i < 100; ++i) {\n"
      "    // Bounded by a tiny constant; reserve would be noise.\n"
      "    // pstore-analyze: allow(hot-path-perf)\n"
      "    out->push_back(i);\n"
      "  }\n");
  EXPECT_TRUE(RunRule(suppressed, "hot-path-perf").empty());
}

TEST(HotPathPerfTest, HotRootNaming) {
  FunctionSymbol in_engine;
  in_engine.name = "Tick";
  in_engine.definitions.push_back({0, "src/engine/a.cc", "engine", 1});
  EXPECT_TRUE(HotPathPerfCheck::IsHotRoot(in_engine));
  in_engine.name = "RunSweep";
  EXPECT_TRUE(HotPathPerfCheck::IsHotRoot(in_engine));
  in_engine.name = "Helper";
  EXPECT_FALSE(HotPathPerfCheck::IsHotRoot(in_engine));
  FunctionSymbol in_common;
  in_common.name = "Tick";
  in_common.definitions.push_back({0, "src/common/a.cc", "common", 1});
  EXPECT_FALSE(HotPathPerfCheck::IsHotRoot(in_common));
}

// ------------------------------------------------------------------- analyzer

TEST(AnalyzerTest, RuleCatalogAndSelection) {
  Analyzer analyzer;
  const std::vector<std::string> names = analyzer.RuleNames();
  EXPECT_EQ(names, (std::vector<std::string>{
                       "layering", "status", "include", "nondet-iteration",
                       "global-mutable-state", "pointer-order", "guarded-by",
                       "lock-order", "dead-symbol", "hot-path-perf"}));
  EXPECT_FALSE(analyzer.SelectRules({"nonsense"}).ok());
  EXPECT_TRUE(analyzer.SelectRules({"layering", "status"}).ok());
  EXPECT_TRUE(analyzer.SelectRules({"lock-order", "dead-symbol"}).ok());
}

TEST(AnalyzerTest, FindingsAreSortedAndFormatted) {
  Project project;
  project.AddFile(Make("src/migration/squall.h", "struct Mig {};\n"));
  project.AddFile(Make("src/planner/bad.h",
                       "#include \"migration/squall.h\"\n"
                       "Mig use_it();\n"));
  Analyzer analyzer;
  std::vector<Finding> findings = analyzer.Run(project);
  ASSERT_FALSE(findings.empty());
  const std::string formatted = FormatFinding(findings[0]);
  EXPECT_NE(formatted.find("src/planner/bad.h:1: [layering]"),
            std::string::npos);
}

TEST(AnalyzerTest, LoadsProjectFromDisk) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(::testing::TempDir()) / "analyze_fixture";
  fs::create_directories(root / "src" / "planner");
  fs::create_directories(root / "src" / "migration");
  {
    std::ofstream out(root / "src" / "migration" / "squall.h");
    out << "struct Mig {};\n";
  }
  {
    std::ofstream out(root / "src" / "planner" / "bad.h");
    out << "#include \"migration/squall.h\"\nMig use_it();\n";
  }
  StatusOr<Project> project = Project::Load({(root / "src").string()});
  ASSERT_TRUE(project.ok()) << project.status().ToString();
  EXPECT_EQ(project.value().files().size(), 2u);
  Analyzer analyzer;
  ASSERT_TRUE(analyzer.SelectRules({"layering"}).ok());
  std::vector<Finding> findings = analyzer.Run(project.value());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(HasFinding(findings, "layering", findings[0].file,
                         "'planner' may not depend on 'migration'"));
  fs::remove_all(root);
}

TEST(AnalyzerTest, ParallelRunMatchesSerial) {
  Project project;
  // One violation per rule family, so every check contributes findings
  // in both modes.
  project.AddFile(Make("src/migration/squall.h", "struct Mig {};\n"));
  project.AddFile(Make("src/planner/bad.h",
                       "#include \"migration/squall.h\"\n"
                       "Mig use_it();\n"
                       "Status DoThing(int x);\n"
                       "std::map<Mig*, int> g_weights;\n"));
  project.AddFile(Make("src/planner/bad.cc",
                       "#include \"planner/bad.h\"\n"
                       "void Caller() { DoThing(1); }\n"));
  project.AddFile(Make("src/engine/hot.h",
                       "struct Hot { std::unordered_map<int, int> m_; };\n"));
  project.AddFile(Make("src/common/lock.h",
                       "class Lock { std::mutex mu_; int v_ = 0; };\n"));
  Analyzer analyzer;
  const std::vector<Finding> serial = analyzer.Run(project);
  EXPECT_FALSE(serial.empty());
  ThreadPool pool(4);
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_EQ(analyzer.Run(project, &pool), serial);
  }
  // A single-threaded pool also takes the serial path.
  ThreadPool one(1);
  EXPECT_EQ(analyzer.Run(project, &one), serial);
}

// ----------------------------------------------------------------------- json

TEST(AnalyzerJsonTest, CanonicalByteStableOutput) {
  const std::vector<Finding> findings = {
      {"src/a.cc", 3, "status", "result of \"F\" discarded"},
      {"src/b.cc", 7, "layering", "back\\slash and\nnewline"}};
  const std::string json = FindingsToJson(findings);
  EXPECT_EQ(json,
            "[\n"
            "  {\"file\": \"src/a.cc\", \"line\": 3, \"rule\": \"status\", "
            "\"message\": \"result of \\\"F\\\" discarded\"},\n"
            "  {\"file\": \"src/b.cc\", \"line\": 7, \"rule\": \"layering\", "
            "\"message\": \"back\\\\slash and\\nnewline\"}\n"
            "]\n");
  // Byte-stable: encoding the same list twice is identical.
  EXPECT_EQ(json, FindingsToJson(findings));
  EXPECT_EQ(FindingsToJson({}), "[]\n");
}

TEST(AnalyzerJsonTest, RoundTrip) {
  const std::vector<Finding> findings = {
      {"src/a.cc", 3, "status", "quote \" slash \\ tab \t done"},
      {"src/engine/hot.h", 12, "nondet-iteration", "plain message"},
      {"src/z.cc", 1, "guarded-by", "control \x01 char"}};
  StatusOr<std::vector<Finding>> parsed =
      ParseFindingsJson(FindingsToJson(findings));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value(), findings);
  StatusOr<std::vector<Finding>> empty = ParseFindingsJson("[]\n");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST(AnalyzerJsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseFindingsJson("").ok());
  EXPECT_FALSE(ParseFindingsJson("{\"file\": \"x\"}").ok());
  EXPECT_FALSE(ParseFindingsJson("[{\"line\": 1}]").ok());
  EXPECT_FALSE(ParseFindingsJson("[{\"file\": \"x\"").ok());
}

TEST(AnalyzerJsonTest, ToolOutputRoundTripsThroughJson) {
  // End-to-end: run the real analyzer on a fixture project, render to
  // JSON, parse it back, and compare with the in-memory findings.
  Project project;
  project.AddFile(Make("src/migration/squall.h", "struct Mig {};\n"));
  project.AddFile(Make("src/planner/bad.h",
                       "#include \"migration/squall.h\"\n"
                       "Mig use_it();\n"));
  Analyzer analyzer;
  const std::vector<Finding> findings = analyzer.Run(project);
  ASSERT_FALSE(findings.empty());
  StatusOr<std::vector<Finding>> parsed =
      ParseFindingsJson(FindingsToJson(findings));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value(), findings);
}

TEST(AnalyzerTest, LoadFailsOnMissingRoot) {
  StatusOr<Project> project = Project::Load({"/nonexistent-pstore-root"});
  EXPECT_FALSE(project.ok());
  EXPECT_EQ(project.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace analysis
}  // namespace pstore
