// Fixture tests for the pstore_analyze rule families: each rule is
// seeded with a small violating snippet and asserted to fire, plus the
// negative cases (suppressions, explicit discards, exports) that keep
// the real tree clean.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/check.h"
#include "analysis/include_hygiene_check.h"
#include "analysis/layering_check.h"
#include "analysis/project.h"
#include "analysis/source_file.h"
#include "analysis/status_check.h"
#include "analysis/tokenizer.h"
#include "common/status.h"

namespace pstore {
namespace analysis {
namespace {

SourceFile Make(const std::string& path, const std::string& body) {
  return SourceFile::FromContents(path, body);
}

bool HasFinding(const std::vector<Finding>& findings, const std::string& rule,
                const std::string& file, const std::string& needle) {
  for (const Finding& finding : findings) {
    if (finding.rule == rule && finding.file == file &&
        finding.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

std::vector<Finding> RunRule(const Project& project, const std::string& rule) {
  Analyzer analyzer;
  EXPECT_TRUE(analyzer.SelectRules({rule}).ok());
  return analyzer.Run(project);
}

// ---------------------------------------------------------------- source file

TEST(SourceFileTest, StripsCommentsAndStringsButKeepsLines) {
  SourceFile file = Make("src/common/x.h",
                         "int a; // trailing comment\n"
                         "const char* s = \"string // not a comment\";\n"
                         "/* block\n   spanning */ int b;\n");  // b on line 4
  EXPECT_NE(file.clean().find("int a;"), std::string::npos);
  EXPECT_NE(file.clean().find("int b;"), std::string::npos);
  EXPECT_EQ(file.clean().find("trailing"), std::string::npos);
  EXPECT_EQ(file.clean().find("not a comment"), std::string::npos);
  EXPECT_EQ(file.clean().find("spanning"), std::string::npos);
  // Line structure preserved: "int b;" lands on line 4 because the
  // block comment spans lines 3-4.
  std::vector<Token> tokens = Tokenize(file.clean());
  ASSERT_FALSE(tokens.empty());
  EXPECT_EQ(tokens.back().text, ";");
  EXPECT_EQ(tokens.back().line, 4);
}

TEST(SourceFileTest, HandlesRawStringsAndEscapedQuotes) {
  SourceFile file = Make("src/common/x.cc",
                         "auto a = R\"(raw \" with quote and // slashes)\";\n"
                         "auto b = R\"delim(nested )\" still raw)delim\";\n"
                         "auto c = \"escaped \\\" quote\"; int after = 1;\n");
  EXPECT_EQ(file.clean().find("raw"), std::string::npos);
  EXPECT_EQ(file.clean().find("still"), std::string::npos);
  EXPECT_EQ(file.clean().find("escaped"), std::string::npos);
  EXPECT_NE(file.clean().find("int after = 1;"), std::string::npos);
}

TEST(SourceFileTest, DigitSeparatorIsNotACharLiteral) {
  SourceFile file = Make("src/common/x.cc",
                         "int big = 1'000'000; int next = 2;\n");
  EXPECT_NE(file.clean().find("int next = 2;"), std::string::npos);
}

TEST(SourceFileTest, RecordsIncludesAndMacros) {
  SourceFile file = Make("src/common/x.h",
                         "#include <vector>\n"
                         "#include \"common/status.h\"\n"
                         "#define MY_MACRO(x) (x)\n");
  ASSERT_EQ(file.includes().size(), 2u);
  EXPECT_TRUE(file.includes()[0].angled);
  EXPECT_EQ(file.includes()[0].target, "vector");
  EXPECT_FALSE(file.includes()[1].angled);
  EXPECT_EQ(file.includes()[1].target, "common/status.h");
  EXPECT_EQ(file.includes()[1].line, 2);
  ASSERT_EQ(file.macros().size(), 1u);
  EXPECT_EQ(file.macros()[0].name, "MY_MACRO");
}

TEST(SourceFileTest, DirAndIncludeKeyDerivation) {
  SourceFile in_src = Make("/abs/repo/src/planner/move.h", "");
  EXPECT_EQ(in_src.dir(), "planner");
  EXPECT_EQ(in_src.include_key(), "planner/move.h");
  SourceFile outside = Make("tests/analyze_test.cc", "");
  EXPECT_EQ(outside.dir(), "");
  EXPECT_EQ(outside.include_key(), "");
}

TEST(SourceFileTest, SuppressionCoversOwnOrNextLine) {
  SourceFile file = Make("src/common/x.cc",
                         "Foo();  // pstore-analyze: allow(status)\n"
                         "// pstore-analyze: allow(layering, include)\n"
                         "Bar();\n");
  EXPECT_TRUE(file.IsSuppressed("status", 1));
  EXPECT_FALSE(file.IsSuppressed("include", 1));
  EXPECT_TRUE(file.IsSuppressed("layering", 3));
  EXPECT_TRUE(file.IsSuppressed("include", 3));
  EXPECT_FALSE(file.IsSuppressed("status", 3));
}

// ------------------------------------------------------------------- layering

TEST(LayeringCheckTest, FlagsForbiddenEdge) {
  Project project;
  project.AddFile(Make("src/migration/squall.h", "struct Mig {};\n"));
  project.AddFile(Make("src/planner/bad.h",
                       "#include \"migration/squall.h\"\n"
                       "Mig use_it();\n"));
  std::vector<Finding> findings = RunRule(project, "layering");
  EXPECT_TRUE(HasFinding(findings, "layering", "src/planner/bad.h",
                         "'planner' may not depend on 'migration'"));
}

TEST(LayeringCheckTest, AllowsDeclaredEdgeAndSelf) {
  Project project;
  project.AddFile(Make("src/common/base.h", "struct Base {};\n"));
  project.AddFile(Make("src/planner/a.h", "struct A {};\n"));
  project.AddFile(Make("src/planner/good.h",
                       "#include \"common/base.h\"\n"
                       "#include \"planner/a.h\"\n"
                       "Base b(); A a();\n"));
  EXPECT_TRUE(RunRule(project, "layering").empty());
}

TEST(LayeringCheckTest, ReportsCycleInObservedGraph) {
  Project project;
  // planner -> engine is allowed; engine -> planner is both a
  // violation and closes a directory cycle.
  project.AddFile(Make("src/planner/a.h",
                       "#include \"engine/b.h\"\nEngineB use();\n"));
  project.AddFile(Make("src/engine/b.h",
                       "#include \"planner/a.h\"\nstruct EngineB {};\n"));
  std::vector<Finding> findings = RunRule(project, "layering");
  EXPECT_TRUE(HasFinding(findings, "layering", "src/engine/b.h",
                         "'engine' may not depend on 'planner'"));
  // The cycle report anchors at whichever edge the DFS closes, so only
  // pin the rule and message, not the file.
  bool cycle_reported = false;
  for (const Finding& finding : findings) {
    if (finding.rule == "layering" &&
        finding.message.find("include cycle between src directories") !=
            std::string::npos) {
      cycle_reported = true;
      EXPECT_NE(finding.message.find("engine"), std::string::npos);
      EXPECT_NE(finding.message.find("planner"), std::string::npos);
    }
  }
  EXPECT_TRUE(cycle_reported);
}

TEST(LayeringCheckTest, FlagsDirectoryMissingFromTheDag) {
  Project project;
  project.AddFile(Make("src/newdir/thing.h", "struct Thing {};\n"));
  std::vector<Finding> findings = RunRule(project, "layering");
  EXPECT_TRUE(HasFinding(findings, "layering", "src/newdir/thing.h",
                         "not declared in the layer DAG"));
}

TEST(LayeringCheckTest, DeclaredDagIsAcyclicAndClosed) {
  // Every directory named in an allowed set is itself declared, and the
  // declared edges form a DAG (defense against future map edits).
  const auto& allowed = LayeringCheck::AllowedDependencies();
  for (const auto& [dir, deps] : allowed) {
    for (const std::string& dep : deps) {
      EXPECT_TRUE(allowed.count(dep) != 0) << dir << " -> " << dep;
      // Antisymmetry is enough for a DAG here because allowed sets are
      // transitively closed by construction.
      auto it = allowed.find(dep);
      if (it != allowed.end()) {
        EXPECT_TRUE(it->second.count(dir) == 0)
            << "cycle: " << dir << " <-> " << dep;
      }
    }
  }
}

// --------------------------------------------------------------------- status

TEST(StatusCheckTest, CollectsStatusReturningFunctions) {
  Project project;
  project.AddFile(Make("src/common/api.h",
                       "Status DoThing(int x);\n"
                       "StatusOr<std::vector<int>> Compute();\n"
                       "class Widget {\n"
                       " public:\n"
                       "  Status Apply();\n"
                       "  const Status& last() const;\n"
                       "  void Run();\n"
                       "};\n"));
  std::set<std::string> fns = StatusCheck::CollectStatusFunctions(project);
  EXPECT_TRUE(fns.count("DoThing"));
  EXPECT_TRUE(fns.count("Compute"));
  EXPECT_TRUE(fns.count("Apply"));
  EXPECT_FALSE(fns.count("last"));
  EXPECT_FALSE(fns.count("Run"));
}

TEST(StatusCheckTest, FlagsDiscardedCalls) {
  Project project;
  project.AddFile(Make("src/common/api.h",
                       "Status DoThing(int x);\n"
                       "struct Widget { Status Apply(); };\n"));
  project.AddFile(Make("src/common/user.cc",
                       "#include \"common/api.h\"\n"
                       "void Caller(Widget w, Widget* p) {\n"
                       "  DoThing(1);\n"
                       "  w.Apply();\n"
                       "  p->Apply();\n"
                       "  if (p) DoThing(2);\n"
                       "}\n"));
  std::vector<Finding> findings = RunRule(project, "status");
  ASSERT_EQ(findings.size(), 4u);
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_EQ(findings[1].line, 4);
  EXPECT_EQ(findings[2].line, 5);
  EXPECT_EQ(findings[3].line, 6);
  EXPECT_TRUE(HasFinding(findings, "status", "src/common/user.cc",
                         "'DoThing' is silently discarded"));
  EXPECT_TRUE(HasFinding(findings, "status", "src/common/user.cc",
                         "'Apply' is silently discarded"));
}

TEST(StatusCheckTest, AcceptsHandledConsumedOrVoidedCalls) {
  Project project;
  project.AddFile(Make("src/common/api.h", "Status DoThing(int x);\n"));
  project.AddFile(Make("src/common/user.cc",
                       "#include \"common/api.h\"\n"
                       "Status Forward() {\n"
                       "  (void)DoThing(1);\n"
                       "  Status s = DoThing(2);\n"
                       "  RETURN_IF_ERROR(DoThing(3));\n"
                       "  if (!DoThing(4).ok()) return s;\n"
                       "  return DoThing(5);\n"
                       "}\n"));
  EXPECT_TRUE(RunRule(project, "status").empty());
}

TEST(StatusCheckTest, SuppressionComment) {
  Project project;
  project.AddFile(Make("src/common/api.h", "Status DoThing(int x);\n"));
  project.AddFile(Make("src/common/user.cc",
                       "#include \"common/api.h\"\n"
                       "void Caller() {\n"
                       "  DoThing(1);  // pstore-analyze: allow(status)\n"
                       "}\n"));
  EXPECT_TRUE(RunRule(project, "status").empty());
}

// -------------------------------------------------------------------- include

TEST(IncludeHygieneTest, ExtractsDeclaredNames) {
  SourceFile header = Make("src/common/api.h",
                           "#define API_MACRO 1\n"
                           "namespace pstore {\n"
                           "enum class Color { kRed, kBlue };\n"
                           "using Alias = int;\n"
                           "struct Gadget {\n"
                           "  void Method();\n"
                           "  int member_ = 0;\n"
                           "};\n"
                           "double Compute(double x);\n"
                           "inline constexpr int kLimit = 3;\n"
                           "}\n");
  DeclaredNames names = IncludeHygieneCheck::ExtractDeclaredNames(header);
  EXPECT_TRUE(names.strong.count("API_MACRO"));
  EXPECT_TRUE(names.strong.count("Color"));
  EXPECT_TRUE(names.strong.count("kRed"));
  EXPECT_TRUE(names.strong.count("Alias"));
  EXPECT_TRUE(names.strong.count("Gadget"));
  EXPECT_TRUE(names.strong.count("Compute"));
  EXPECT_TRUE(names.strong.count("kLimit"));
  EXPECT_TRUE(names.weak.count("Method"));
  EXPECT_TRUE(names.weak.count("member_"));
  EXPECT_FALSE(names.strong.count("Method"));
  // Parameter names declare nothing.
  EXPECT_FALSE(names.strong.count("x"));
  EXPECT_FALSE(names.weak.count("x"));
}

TEST(IncludeHygieneTest, FlagsUnusedInclude) {
  Project project;
  project.AddFile(Make("src/common/alpha.h", "struct Alpha {};\n"));
  project.AddFile(Make("src/planner/user.cc",
                       "#include \"common/alpha.h\"\n"
                       "int unrelated() { return 7; }\n"));
  std::vector<Finding> findings = RunRule(project, "include");
  EXPECT_TRUE(HasFinding(findings, "include", "src/planner/user.cc",
                         "unused include"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 1);
}

TEST(IncludeHygieneTest, FlagsMissingDirectInclude) {
  Project project;
  project.AddFile(Make("src/common/alpha.h", "struct Alpha {};\n"));
  project.AddFile(Make("src/common/beta.h",
                       "#include \"common/alpha.h\"\n"
                       "struct Beta { Alpha a; };\n"));
  project.AddFile(Make("src/planner/user.cc",
                       "#include \"common/beta.h\"\n"
                       "Beta b;\n"
                       "Alpha a;\n"));
  std::vector<Finding> findings = RunRule(project, "include");
  EXPECT_TRUE(HasFinding(findings, "include", "src/planner/user.cc",
                         "uses 'Alpha' declared in 'common/alpha.h'"));
}

TEST(IncludeHygieneTest, OwnHeaderIsAlwaysKept) {
  Project project;
  project.AddFile(Make("src/planner/thing.h", "struct Thing {};\n"));
  project.AddFile(Make("src/planner/thing.cc",
                       "#include \"planner/thing.h\"\n"
                       "int helper() { return 1; }\n"));
  EXPECT_TRUE(RunRule(project, "include").empty());
}

TEST(IncludeHygieneTest, IwyuExportVouchesForTheTarget) {
  Project project;
  project.AddFile(Make("src/common/alpha.h", "struct Alpha {};\n"));
  project.AddFile(Make(
      "src/common/facade.h",
      "#include \"common/alpha.h\"  // IWYU pragma: export\n"));
  project.AddFile(Make("src/planner/user.cc",
                       "#include \"common/facade.h\"\n"
                       "Alpha a;\n"));
  std::vector<Finding> findings = RunRule(project, "include");
  // Neither a missing-include for alpha.h (the facade re-exports it)
  // nor an unused-include for facade.h (its exported names are used).
  EXPECT_TRUE(findings.empty());
}

TEST(IncludeHygieneTest, SuppressionKeepsAnInclude) {
  Project project;
  project.AddFile(Make("src/common/alpha.h", "struct Alpha {};\n"));
  project.AddFile(Make(
      "src/planner/user.cc",
      "#include \"common/alpha.h\"  // pstore-analyze: allow(include)\n"
      "int unrelated() { return 7; }\n"));
  EXPECT_TRUE(RunRule(project, "include").empty());
}

// ------------------------------------------------------------------- analyzer

TEST(AnalyzerTest, RuleCatalogAndSelection) {
  Analyzer analyzer;
  const std::vector<std::string> names = analyzer.RuleNames();
  EXPECT_EQ(names,
            (std::vector<std::string>{"layering", "status", "include"}));
  EXPECT_FALSE(analyzer.SelectRules({"nonsense"}).ok());
  EXPECT_TRUE(analyzer.SelectRules({"layering", "status"}).ok());
}

TEST(AnalyzerTest, FindingsAreSortedAndFormatted) {
  Project project;
  project.AddFile(Make("src/migration/squall.h", "struct Mig {};\n"));
  project.AddFile(Make("src/planner/bad.h",
                       "#include \"migration/squall.h\"\n"
                       "Mig use_it();\n"));
  Analyzer analyzer;
  std::vector<Finding> findings = analyzer.Run(project);
  ASSERT_FALSE(findings.empty());
  const std::string formatted = FormatFinding(findings[0]);
  EXPECT_NE(formatted.find("src/planner/bad.h:1: [layering]"),
            std::string::npos);
}

TEST(AnalyzerTest, LoadsProjectFromDisk) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(::testing::TempDir()) / "analyze_fixture";
  fs::create_directories(root / "src" / "planner");
  fs::create_directories(root / "src" / "migration");
  {
    std::ofstream out(root / "src" / "migration" / "squall.h");
    out << "struct Mig {};\n";
  }
  {
    std::ofstream out(root / "src" / "planner" / "bad.h");
    out << "#include \"migration/squall.h\"\nMig use_it();\n";
  }
  StatusOr<Project> project = Project::Load({(root / "src").string()});
  ASSERT_TRUE(project.ok()) << project.status().ToString();
  EXPECT_EQ(project.value().files().size(), 2u);
  Analyzer analyzer;
  ASSERT_TRUE(analyzer.SelectRules({"layering"}).ok());
  std::vector<Finding> findings = analyzer.Run(project.value());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(HasFinding(findings, "layering", findings[0].file,
                         "'planner' may not depend on 'migration'"));
  fs::remove_all(root);
}

TEST(AnalyzerTest, LoadFailsOnMissingRoot) {
  StatusOr<Project> project = Project::Load({"/nonexistent-pstore-root"});
  EXPECT_FALSE(project.ok());
  EXPECT_EQ(project.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace analysis
}  // namespace pstore
