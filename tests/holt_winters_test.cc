#include "prediction/holt_winters.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/status.h"
#include "common/time_series.h"
#include "prediction/naive_models.h"
#include "prediction/predictor.h"
#include "trace/b2w_trace_generator.h"

namespace pstore {
namespace {

TimeSeries SeasonalSeries(int periods, double noise_sigma, uint64_t seed,
                          size_t period = 48, double trend_per_slot = 0.0) {
  Rng rng(seed);
  TimeSeries out(60.0);
  for (int p = 0; p < periods; ++p) {
    for (size_t s = 0; s < period; ++s) {
      const double t =
          static_cast<double>(p) * period + static_cast<double>(s);
      const double phase = 2.0 * M_PI * static_cast<double>(s) / period;
      double value =
          100.0 + trend_per_slot * t + 40.0 * std::sin(phase);
      value += noise_sigma * rng.NextGaussian();
      out.Append(value);
    }
  }
  return out;
}

HoltWintersOptions SmallOptions() {
  HoltWintersOptions options;
  options.period = 48;
  return options;
}

TEST(HoltWintersTest, RejectsShortSeries) {
  HoltWintersPredictor hw(SmallOptions());
  EXPECT_FALSE(hw.Fit(SeasonalSeries(1, 0.0, 1)).ok());
  EXPECT_TRUE(hw.Fit(SeasonalSeries(4, 0.0, 1)).ok());
}

TEST(HoltWintersTest, PredictBeforeFitFails) {
  HoltWintersPredictor hw(SmallOptions());
  EXPECT_FALSE(hw.PredictAhead(SeasonalSeries(4, 0.0, 1), 1).ok());
}

TEST(HoltWintersTest, NoiselessSeasonalPredictedAccurately) {
  HoltWintersPredictor hw(SmallOptions());
  const TimeSeries series = SeasonalSeries(12, 0.0, 1);
  ASSERT_TRUE(hw.Fit(series.Slice(0, 10 * 48)).ok());
  StatusOr<EvaluationResult> eval =
      EvaluatePredictor(hw, series, 10 * 48, 4);
  ASSERT_TRUE(eval.ok());
  EXPECT_LT(eval->mre, 0.02);
}

TEST(HoltWintersTest, TracksLinearTrend) {
  HoltWintersPredictor hw(SmallOptions());
  const TimeSeries series = SeasonalSeries(12, 0.0, 2, 48, 0.5);
  ASSERT_TRUE(hw.Fit(series.Slice(0, 10 * 48)).ok());
  // 8 slots ahead from the end of slice: trend contributes 4.0.
  const TimeSeries history = series.Slice(0, 11 * 48);
  StatusOr<double> prediction = hw.PredictAhead(history, 8);
  ASSERT_TRUE(prediction.ok());
  EXPECT_NEAR(*prediction, series[11 * 48 + 7], 20.0);  // ~5%
}

TEST(HoltWintersTest, FixedParametersRespected) {
  HoltWintersOptions options = SmallOptions();
  options.alpha = 0.42;
  options.beta = 0.07;
  options.gamma = 0.11;
  HoltWintersPredictor hw(options);
  ASSERT_TRUE(hw.Fit(SeasonalSeries(6, 0.01, 3)).ok());
  EXPECT_EQ(hw.alpha(), 0.42);
  EXPECT_EQ(hw.beta(), 0.07);
  EXPECT_EQ(hw.gamma(), 0.11);
}

TEST(HoltWintersTest, GridSearchPicksFiniteParameters) {
  HoltWintersPredictor hw(SmallOptions());
  ASSERT_TRUE(hw.Fit(SeasonalSeries(8, 2.0, 4)).ok());
  EXPECT_GT(hw.alpha(), 0.0);
  EXPECT_GE(hw.beta(), 0.0);
  EXPECT_GT(hw.gamma(), 0.0);
}

TEST(HoltWintersTest, HorizonMatchesPerTauCalls) {
  HoltWintersPredictor hw(SmallOptions());
  const TimeSeries series = SeasonalSeries(8, 0.5, 5);
  ASSERT_TRUE(hw.Fit(series.Slice(0, 6 * 48)).ok());
  const TimeSeries history = series.Slice(0, 7 * 48);
  StatusOr<std::vector<double>> horizon = hw.PredictHorizon(history, 6);
  ASSERT_TRUE(horizon.ok());
  for (size_t tau = 1; tau <= 6; ++tau) {
    StatusOr<double> single = hw.PredictAhead(history, tau);
    ASSERT_TRUE(single.ok());
    EXPECT_NEAR(*single, (*horizon)[tau - 1], 1e-9);
  }
}

TEST(HoltWintersTest, CompetitiveWithSeasonalNaiveOnB2wLoad) {
  B2wTraceOptions trace_options;
  trace_options.days = 30;
  trace_options.seed = 5;
  const TimeSeries trace = GenerateB2wTrace(trace_options);
  HoltWintersOptions options;
  options.period = 1440;
  HoltWintersPredictor hw(options);
  ASSERT_TRUE(hw.Fit(trace.Slice(0, 28 * 1440)).ok());
  SeasonalNaivePredictor naive(1440);
  ASSERT_TRUE(naive.Fit(trace.Slice(0, 28 * 1440)).ok());

  StatusOr<EvaluationResult> hw_eval =
      EvaluatePredictor(hw, trace.Slice(0, 29 * 1440), 28 * 1440, 60);
  StatusOr<EvaluationResult> naive_eval =
      EvaluatePredictor(naive, trace.Slice(0, 29 * 1440), 28 * 1440, 60);
  ASSERT_TRUE(hw_eval.ok());
  ASSERT_TRUE(naive_eval.ok());
  // Holt-Winters adapts to the current level, so it should at least
  // approach (and usually beat) the naive periodic baseline.
  EXPECT_LT(hw_eval->mre, naive_eval->mre * 1.2);
}

}  // namespace
}  // namespace pstore
