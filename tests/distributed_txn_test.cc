// Tests for multi-key (potentially distributed) transactions: routing,
// atomic procedure semantics, 2PC cost accounting, and the scalability
// erosion the paper's §4.2 assumption guards against.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/time_series.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/metrics.h"
#include "engine/partition.h"
#include "engine/table.h"
#include "engine/transaction.h"
#include "engine/txn_executor.h"
#include "engine/workload_driver.h"
#include "ycsb/ycsb_workload.h"

namespace pstore {
namespace {

ClusterOptions TwoNodeCluster() {
  ClusterOptions options;
  options.partitions_per_node = 3;
  options.max_nodes = 2;
  options.initial_nodes = 2;
  options.num_buckets = 120;
  return options;
}

// Finds two keys on different partitions (and two on the same).
struct KeyPairs {
  uint64_t same_a = 0, same_b = 0;
  uint64_t diff_a = 0, diff_b = 0;
};

KeyPairs FindPairs(const Cluster& cluster, uint64_t count) {
  KeyPairs pairs;
  bool have_same = false, have_diff = false;
  const int p0 = cluster.PartitionForKey(ycsb::UserKey(0));
  for (uint64_t i = 1; i < count && (!have_same || !have_diff); ++i) {
    const int p = cluster.PartitionForKey(ycsb::UserKey(i));
    if (p == p0 && !have_same) {
      pairs.same_a = ycsb::UserKey(0);
      pairs.same_b = ycsb::UserKey(i);
      have_same = true;
    } else if (p != p0 && !have_diff) {
      pairs.diff_a = ycsb::UserKey(0);
      pairs.diff_b = ycsb::UserKey(i);
      have_diff = true;
    }
  }
  PSTORE_CHECK(have_same && have_diff);
  return pairs;
}

class DistributedTxnTest : public ::testing::Test {
 protected:
  DistributedTxnTest()
      : cluster_(TwoNodeCluster()),
        executor_(&cluster_, &metrics_, ExecutorOptions{}) {
    PSTORE_CHECK_OK(ycsb::Workload::RegisterProcedures(&executor_));
    ycsb::YcsbWorkloadOptions options;
    options.record_count = 1000;
    ycsb::Workload workload(options);
    PSTORE_CHECK_OK(workload.LoadInitialData(&cluster_));
    pairs_ = FindPairs(cluster_, 1000);
  }

  TxnResult Transfer(uint64_t from, uint64_t to, uint32_t amount,
                     SimTime now) {
    TxnRequest request;
    request.procedure = ycsb::kMultiTransfer;
    request.key = from;
    request.num_extra_keys = 1;
    request.extra_keys[0] = to;
    request.arg = amount;
    return executor_.Submit(request, now);
  }

  int64_t BalanceOf(uint64_t key) {
    const BucketId bucket = cluster_.BucketForKey(key);
    const Row* row = cluster_.partition(cluster_.PartitionOfBucket(bucket))
                         .Get(bucket, ycsb::kUserTable, key);
    PSTORE_CHECK(row != nullptr);
    return row->f2;
  }

  MetricsCollector metrics_;
  Cluster cluster_;
  TxnExecutor executor_;
  KeyPairs pairs_;
};

TEST_F(DistributedTxnTest, TransferMovesBalanceAtomically) {
  const int64_t before_a = BalanceOf(pairs_.diff_a);
  const int64_t before_b = BalanceOf(pairs_.diff_b);
  const TxnResult result = Transfer(pairs_.diff_a, pairs_.diff_b, 42, 0);
  EXPECT_EQ(result.status, TxnStatus::kCommitted);
  EXPECT_EQ(result.value, 42);
  EXPECT_EQ(BalanceOf(pairs_.diff_a), before_a - 42);
  EXPECT_EQ(BalanceOf(pairs_.diff_b), before_b + 42);
}

TEST_F(DistributedTxnTest, InsufficientBalanceAbortsCleanly) {
  // Drain the source almost fully first.
  (void)Transfer(pairs_.diff_a, pairs_.diff_b, 99, 0);
  // Balances start at 1000; transfer amounts are arg % 100, so exhaust
  // via repeated transfers and check the final abort changes nothing.
  TxnRequest request;
  request.procedure = ycsb::kMultiTransfer;
  request.key = pairs_.diff_a;
  request.num_extra_keys = 1;
  request.extra_keys[0] = pairs_.diff_b;
  request.arg = 99;
  while (executor_.Submit(request, 0).status == TxnStatus::kCommitted) {
  }
  const int64_t a = BalanceOf(pairs_.diff_a);
  const int64_t b = BalanceOf(pairs_.diff_b);
  EXPECT_LT(a, 99);
  EXPECT_EQ(executor_.Submit(request, 0).status, TxnStatus::kAborted);
  EXPECT_EQ(BalanceOf(pairs_.diff_a), a);
  EXPECT_EQ(BalanceOf(pairs_.diff_b), b);
}

TEST_F(DistributedTxnTest, DistributedCountOnlyAcrossPartitions) {
  EXPECT_EQ(executor_.distributed_count(), 0);
  (void)Transfer(pairs_.same_a, pairs_.same_b, 1, 0);
  EXPECT_EQ(executor_.distributed_count(), 0);  // same partition
  (void)Transfer(pairs_.diff_a, pairs_.diff_b, 1, 0);
  EXPECT_EQ(executor_.distributed_count(), 1);
}

TEST_F(DistributedTxnTest, DistributedTxnsPayCoordinationCost) {
  // Mean latency of idle-system transfers: cross-partition ones carry
  // 2PC overhead and the coordination delay.
  const int kTrials = 2000;
  SimTime now = 0;
  double same_total = 0.0;
  double diff_total = 0.0;
  for (int i = 0; i < kTrials; ++i) {
    now += kSecond;  // idle between submissions: no queueing
    Partition& p_same =
        cluster_.partition(cluster_.PartitionForKey(pairs_.same_a));
    const SimTime busy_before = p_same.busy_until();
    (void)Transfer(pairs_.same_a, pairs_.same_b, 1, now);
    same_total += ToSeconds(p_same.busy_until() - std::max(busy_before, now));
    now += kSecond;
    const SimTime start = now;
    (void)Transfer(pairs_.diff_a, pairs_.diff_b, 1, now);
    // Latency via metrics is aggregate; approximate with busy deltas on
    // both participants (max is what matters, but mean suffices here).
    Partition& pa =
        cluster_.partition(cluster_.PartitionForKey(pairs_.diff_a));
    Partition& pb =
        cluster_.partition(cluster_.PartitionForKey(pairs_.diff_b));
    diff_total += ToSeconds(
        std::max(pa.busy_until(), pb.busy_until()) - start);
  }
  // Per-participant service doubles (two_pc_overhead = 1.0), so the
  // max-of-two exponentials with doubled mean is clearly larger.
  EXPECT_GT(diff_total / kTrials, 1.5 * (same_total / kTrials));
}

TEST_F(DistributedTxnTest, TooManyExtraKeysRejected) {
  TxnRequest request;
  request.procedure = ycsb::kMultiTransfer;
  request.key = pairs_.diff_a;
  request.num_extra_keys = kMaxTxnKeys;  // one too many
  EXPECT_EQ(executor_.Submit(request, 0).status, TxnStatus::kAborted);
}

TEST(DistributedTxnRegistrationTest, IdCollisionAcrossTablesRejected) {
  Cluster cluster(TwoNodeCluster());
  TxnExecutor executor(&cluster, nullptr, ExecutorOptions{});
  ASSERT_TRUE(ycsb::Workload::RegisterProcedures(&executor).ok());
  // kMultiTransfer is taken; a single-key registration must fail too...
  // (RegisterProcedure only checks handlers_, so verify the multi table
  // guards its own id.)
  EXPECT_FALSE(executor
                   .RegisterMultiProcedure(
                       ycsb::kMultiTransfer,
                       [](const TxnContext*, int) {
                         return TxnResult{TxnStatus::kCommitted, 0};
                       },
                       1.0)
                   .ok());
}

TEST(DistributedTxnScalabilityTest, ThroughputDegradesWithMultiKeyShare) {
  // The §4.2 assumption, measured: at a fixed offered rate near the
  // knee, raising the distributed share saturates the cluster.
  auto worst_p99 = [](double multi_fraction) {
    Cluster cluster(TwoNodeCluster());
    MetricsCollector metrics(1.0);
    TxnExecutor executor(&cluster, &metrics, ExecutorOptions{});
    PSTORE_CHECK_OK(ycsb::Workload::RegisterProcedures(&executor));
    ycsb::YcsbWorkloadOptions options;
    options.record_count = 30000;
    options.multi_key_fraction = multi_fraction;
    ycsb::Workload workload(options);
    PSTORE_CHECK_OK(workload.LoadInitialData(&cluster));
    EventLoop loop;
    TimeSeries flat(1.0, std::vector<double>(240, 330.0));
    DriverOptions driver_options;
    driver_options.slot_sim_seconds = 1.0;
    driver_options.rate_factor = 1.0;
    driver_options.seed = 3;
    WorkloadDriver driver(
        &loop, &executor, flat,
        [&workload](Rng& rng) { return workload.NextTransaction(rng); },
        driver_options);
    driver.Start(240 * kSecond);
    loop.RunUntil(240 * kSecond);
    const auto windows = metrics.Finalize(240 * kSecond);
    double p99 = 0.0;
    for (size_t w = 60; w < windows.size(); ++w) {
      p99 = std::max(p99, windows[w].p99_ms);
    }
    return p99;
  };
  const double clean = worst_p99(0.0);
  const double heavy = worst_p99(0.30);
  EXPECT_LT(clean, 500.0);
  EXPECT_GT(heavy, 2.0 * clean);
}

}  // namespace
}  // namespace pstore
