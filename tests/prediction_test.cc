#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/time_series.h"
#include "prediction/ar_model.h"
#include "prediction/arma_model.h"
#include "prediction/naive_models.h"
#include "prediction/online_predictor.h"
#include "prediction/predictor.h"
#include "prediction/spar_model.h"
#include "trace/b2w_trace_generator.h"

namespace pstore {
namespace {

// A small synthetic daily-periodic series: period 48 "half-hour" slots,
// sinusoid plus optional noise and transient offsets.
TimeSeries PeriodicSeries(int periods, double noise_sigma, uint64_t seed,
                          size_t period = 48) {
  Rng rng(seed);
  TimeSeries out(60.0);
  for (int p = 0; p < periods; ++p) {
    for (size_t s = 0; s < period; ++s) {
      const double phase = 2.0 * M_PI * static_cast<double>(s) / period;
      double value = 100.0 + 50.0 * std::sin(phase);
      value *= 1.0 + noise_sigma * rng.NextGaussian();
      out.Append(value);
    }
  }
  return out;
}

// ---- SPAR -----------------------------------------------------------------

SparOptions SmallSpar(size_t max_tau = 8) {
  SparOptions options;
  options.period = 48;
  options.num_periods = 3;
  options.num_recent = 6;
  options.max_tau = max_tau;
  return options;
}

TEST(SparTest, FitRequiresEnoughHistory) {
  SparPredictor spar(SmallSpar());
  EXPECT_FALSE(spar.Fit(PeriodicSeries(2, 0.0, 1)).ok());
  EXPECT_TRUE(spar.Fit(PeriodicSeries(10, 0.0, 1)).ok());
}

TEST(SparTest, PredictBeforeFitFails) {
  SparPredictor spar(SmallSpar());
  EXPECT_FALSE(spar.PredictAhead(PeriodicSeries(10, 0.0, 1), 1).ok());
}

TEST(SparTest, TauOutsideFittedRangeFails) {
  SparPredictor spar(SmallSpar(4));
  ASSERT_TRUE(spar.Fit(PeriodicSeries(10, 0.0, 1)).ok());
  const TimeSeries history = PeriodicSeries(10, 0.0, 1);
  EXPECT_TRUE(spar.PredictAhead(history, 4).ok());
  EXPECT_FALSE(spar.PredictAhead(history, 5).ok());
  EXPECT_FALSE(spar.PredictAhead(history, 0).ok());
}

TEST(SparTest, NoiselessPeriodicSeriesPredictedExactly) {
  SparPredictor spar(SmallSpar());
  const TimeSeries series = PeriodicSeries(10, 0.0, 1);
  ASSERT_TRUE(spar.Fit(series).ok());
  // Walk forward within the same (deterministic) series.
  for (size_t tau : {1u, 4u, 8u}) {
    StatusOr<double> prediction =
        spar.PredictAhead(series.Slice(0, series.size() - tau), tau);
    ASSERT_TRUE(prediction.ok());
    EXPECT_NEAR(*prediction, series[series.size() - 1 - 0], 1.0)
        << "tau=" << tau;
  }
}

TEST(SparTest, RecoversDataGeneratedByASparProcess) {
  // Build data that follows Eq. 8 exactly with known coefficients, then
  // check the fitted model predicts it near-perfectly out of sample.
  const size_t period = 24;
  const size_t n = 2, m = 2;
  Rng rng(7);
  std::vector<double> data;
  for (size_t i = 0; i < period * 3; ++i) {
    data.push_back(100.0 + 20.0 * std::sin(2.0 * M_PI * i / period) +
                   rng.NextGaussian());
  }
  // y(t) = 0.6 y(t-T) + 0.4 y(t-2T) + 0.5 dy(t-1-tau) ... generate with
  // tau = 1: y(t) from periodic part plus transient offsets.
  for (size_t t = data.size(); t < period * 40; ++t) {
    auto dy = [&](size_t idx) {
      return data[idx] - 0.5 * (data[idx - period] + data[idx - 2 * period]);
    };
    const double value = 0.6 * data[t - period] + 0.4 * data[t - 2 * period] +
                         0.5 * dy(t - 2) + 0.1 * rng.NextGaussian();
    data.push_back(value);
  }
  SparOptions options;
  options.period = period;
  options.num_periods = n;
  options.num_recent = m;
  options.max_tau = 1;
  SparPredictor spar(options);
  TimeSeries series(60.0, data);
  ASSERT_TRUE(spar.Fit(series.Slice(0, period * 30)).ok());

  StatusOr<EvaluationResult> eval =
      EvaluatePredictor(spar, series, period * 30, 1);
  ASSERT_TRUE(eval.ok());
  EXPECT_LT(eval->mre, 0.02);
}

TEST(SparTest, BeatsSeasonalNaiveOnB2wLikeLoad) {
  // The paper's setup: train on 4 weeks, predict 60 minutes ahead.
  B2wTraceOptions trace_options;
  trace_options.days = 30;
  trace_options.seed = 5;
  const TimeSeries trace = GenerateB2wTrace(trace_options);

  SparOptions options;
  options.period = 1440;
  options.num_periods = 7;
  options.num_recent = 30;
  options.max_tau = 60;
  SparPredictor spar(options);
  ASSERT_TRUE(spar.Fit(trace.Slice(0, 28 * 1440)).ok());

  SeasonalNaivePredictor naive(1440);
  ASSERT_TRUE(naive.Fit(trace.Slice(0, 28 * 1440)).ok());

  // Evaluate on the two held-out days with tau = 60 minutes.
  const size_t eval_begin = 28 * 1440;
  StatusOr<EvaluationResult> spar_eval =
      EvaluatePredictor(spar, trace, eval_begin, 60);
  StatusOr<EvaluationResult> naive_eval =
      EvaluatePredictor(naive, trace, eval_begin, 60);
  ASSERT_TRUE(spar_eval.ok());
  ASSERT_TRUE(naive_eval.ok());
  EXPECT_LT(spar_eval->mre, naive_eval->mre);
  // And in absolute terms the error should be small (paper: ~10%).
  EXPECT_LT(spar_eval->mre, 0.15);
}

TEST(SparTest, CoefficientsExposedPerTau) {
  SparPredictor spar(SmallSpar(3));
  ASSERT_TRUE(spar.Fit(PeriodicSeries(10, 0.01, 2)).ok());
  const std::vector<double>& c1 = spar.CoefficientsFor(1);
  const std::vector<double>& c3 = spar.CoefficientsFor(3);
  EXPECT_EQ(c1.size(), 3u + 6u);
  EXPECT_EQ(c3.size(), 3u + 6u);
}

// ---- AR ---------------------------------------------------------------------

TEST(ArTest, RecoversAr2Process) {
  // y(t) = 5 + 0.5 y(t-1) + 0.3 y(t-2) + eps.
  Rng rng(3);
  std::vector<double> data = {25.0, 25.0};
  for (int i = 2; i < 5000; ++i) {
    data.push_back(5.0 + 0.5 * data[i - 1] + 0.3 * data[i - 2] +
                   0.2 * rng.NextGaussian());
  }
  ArOptions options;
  options.order = 2;
  ArPredictor ar(options);
  ASSERT_TRUE(ar.Fit(TimeSeries(60.0, data)).ok());
  const std::vector<double>& coef = ar.coefficients();
  ASSERT_EQ(coef.size(), 3u);
  EXPECT_NEAR(coef[0], 5.0, 0.5);
  EXPECT_NEAR(coef[1], 0.5, 0.05);
  EXPECT_NEAR(coef[2], 0.3, 0.05);
}

TEST(ArTest, MultiStepIsIterated) {
  // A deterministic AR(1) y(t) = 0.5 y(t-1): predictions decay by halves.
  std::vector<double> data;
  double v = 1024.0;
  for (int i = 0; i < 200; ++i) {
    data.push_back(v);
    v *= 0.5;
  }
  ArOptions options;
  options.order = 1;
  ArPredictor ar(options);
  TimeSeries series(60.0, data);
  ASSERT_TRUE(ar.Fit(series.Slice(0, 50)).ok());
  // Predict from a prefix whose last value is still large (1024 * 0.5^7)
  // so the ridge-induced intercept bias is negligible in relative terms.
  const TimeSeries history = series.Slice(0, 8);
  const double last = history[7];
  StatusOr<std::vector<double>> horizon = ar.PredictHorizon(history, 2);
  ASSERT_TRUE(horizon.ok());
  EXPECT_NEAR((*horizon)[0], last * 0.5, 1e-3 * last);
  EXPECT_NEAR((*horizon)[1], last * 0.25, 1e-3 * last);
}

TEST(ArTest, FitTooShortFails) {
  ArOptions options;
  options.order = 30;
  ArPredictor ar(options);
  EXPECT_FALSE(ar.Fit(TimeSeries(60.0, std::vector<double>(20, 1.0))).ok());
}

// ---- ARMA ---------------------------------------------------------------

TEST(ArmaTest, FitsAndPredictsPeriodicSeries) {
  ArmaOptions options;
  options.ar_order = 8;
  options.ma_order = 4;
  options.long_ar_order = 20;
  ArmaPredictor arma(options);
  const TimeSeries series = PeriodicSeries(40, 0.02, 9);
  ASSERT_TRUE(arma.Fit(series.Slice(0, 30 * 48)).ok());
  StatusOr<EvaluationResult> eval =
      EvaluatePredictor(arma, series, 30 * 48, 1);
  ASSERT_TRUE(eval.ok());
  EXPECT_LT(eval->mre, 0.08);
}

TEST(ArmaTest, RejectsShortSeries) {
  ArmaOptions options;
  ArmaPredictor arma(options);
  EXPECT_FALSE(arma.Fit(TimeSeries(60.0, std::vector<double>(50, 1.0))).ok());
}

TEST(ArmaTest, PredictBeforeFitFails) {
  ArmaPredictor arma(ArmaOptions{});
  EXPECT_FALSE(arma.PredictAhead(PeriodicSeries(10, 0.0, 1), 1).ok());
}

// ---- Naive & Oracle ----------------------------------------------------------

TEST(SeasonalNaiveTest, ReturnsValueOnePeriodBack) {
  SeasonalNaivePredictor naive(48);
  const TimeSeries series = PeriodicSeries(4, 0.0, 1);
  ASSERT_TRUE(naive.Fit(series).ok());
  StatusOr<double> prediction = naive.PredictAhead(series, 5);
  ASSERT_TRUE(prediction.ok());
  // Target index = (size-1) + 5; value = series[target - 48].
  EXPECT_EQ(*prediction, series[series.size() - 1 + 5 - 48]);
}

TEST(SeasonalNaiveTest, TauBeyondPeriodFails) {
  SeasonalNaivePredictor naive(48);
  const TimeSeries series = PeriodicSeries(4, 0.0, 1);
  EXPECT_FALSE(naive.PredictAhead(series, 49).ok());
}

TEST(LastValueTest, FlatForecast) {
  LastValuePredictor last;
  TimeSeries series(60.0, {1, 2, 3});
  StatusOr<std::vector<double>> horizon = last.PredictHorizon(series, 4);
  ASSERT_TRUE(horizon.ok());
  for (double v : *horizon) EXPECT_EQ(v, 3.0);
}

TEST(OracleTest, ReturnsTruth) {
  TimeSeries truth(60.0, {10, 20, 30, 40, 50});
  OraclePredictor oracle(truth);
  const TimeSeries history = truth.Slice(0, 2);  // knows 10, 20
  StatusOr<double> one = oracle.PredictAhead(history, 1);
  StatusOr<double> three = oracle.PredictAhead(history, 3);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(three.ok());
  EXPECT_EQ(*one, 30.0);
  EXPECT_EQ(*three, 50.0);
  EXPECT_FALSE(oracle.PredictAhead(history, 4).ok());
}

// ---- MRE vs tau decay --------------------------------------------------------

TEST(SparTest, ErrorGrowsGracefullyWithTau) {
  // Fig. 5b: prediction accuracy decays gracefully with tau.
  B2wTraceOptions trace_options;
  trace_options.days = 29;
  trace_options.seed = 6;
  const TimeSeries trace = GenerateB2wTrace(trace_options);
  SparOptions options;
  options.period = 1440;
  options.num_periods = 7;
  options.num_recent = 30;
  options.max_tau = 60;
  SparPredictor spar(options);
  ASSERT_TRUE(spar.Fit(trace.Slice(0, 28 * 1440)).ok());

  const TimeSeries eval_window = trace;
  StatusOr<EvaluationResult> short_tau =
      EvaluatePredictor(spar, eval_window, 28 * 1440, 10);
  StatusOr<EvaluationResult> long_tau =
      EvaluatePredictor(spar, eval_window, 28 * 1440, 60);
  ASSERT_TRUE(short_tau.ok());
  ASSERT_TRUE(long_tau.ok());
  // Longer horizons cannot be (much) more accurate.
  EXPECT_LT(short_tau->mre, long_tau->mre * 1.3 + 0.01);
  // And both stay in a sane range.
  EXPECT_LT(long_tau->mre, 0.2);
}

// ---- Online predictor ---------------------------------------------------------

TEST(OnlinePredictorTest, WarmupFitsAndPredicts) {
  B2wTraceOptions trace_options;
  trace_options.days = 15;
  trace_options.seed = 8;
  const TimeSeries trace = GenerateB2wTrace(trace_options);

  SparOptions spar_options;
  spar_options.period = 1440;
  spar_options.num_periods = 7;
  spar_options.num_recent = 30;
  spar_options.max_tau = 120;
  OnlinePredictorOptions online_options;
  online_options.training_window = 14 * 1440;
  online_options.refit_interval = 7 * 1440;
  online_options.inflation = 1.15;
  OnlinePredictor online(std::make_unique<SparPredictor>(spar_options),
                         online_options);
  // 14 days of history is enough for the 7-period lag structure (the
  // production setup uses 4 weeks; this keeps the test fast).
  ASSERT_TRUE(online.Warmup(trace.Slice(0, 14 * 1440)).ok());
  EXPECT_TRUE(online.fitted());

  StatusOr<std::vector<double>> horizon = online.PredictHorizon(120);
  ASSERT_TRUE(horizon.ok());
  EXPECT_EQ(horizon->size(), 120u);
  for (double v : *horizon) EXPECT_GE(v, 0.0);
}

TEST(OnlinePredictorTest, InflationAppliedToForecasts) {
  TimeSeries truth(60.0, std::vector<double>(100, 200.0));
  OnlinePredictorOptions options;
  options.inflation = 1.5;
  options.training_window = 50;
  OnlinePredictor online(std::make_unique<LastValuePredictor>(), options);
  ASSERT_TRUE(online.Warmup(truth).ok());
  StatusOr<std::vector<double>> horizon = online.PredictHorizon(3);
  ASSERT_TRUE(horizon.ok());
  for (double v : *horizon) EXPECT_NEAR(v, 300.0, 1e-9);
}

TEST(OnlinePredictorTest, FallbackBeforeFitIsFlat) {
  OnlinePredictorOptions options;
  options.inflation = 1.0;
  // SPAR cannot fit on 5 observations, so the fallback must kick in.
  OnlinePredictor online(std::make_unique<SparPredictor>(SmallSpar()),
                         options);
  for (int i = 0; i < 5; ++i) online.Observe(100.0 + i);
  EXPECT_FALSE(online.fitted());
  StatusOr<std::vector<double>> horizon = online.PredictHorizon(4);
  ASSERT_TRUE(horizon.ok());
  for (double v : *horizon) EXPECT_EQ(v, 104.0);
}

TEST(OnlinePredictorTest, ObserveTriggersRefit) {
  OnlinePredictorOptions options;
  options.refit_interval = 48;
  options.training_window = 48 * 8;
  options.inflation = 1.0;
  OnlinePredictor online(std::make_unique<SparPredictor>(SmallSpar()),
                         options);
  // No warmup: observe ten periods' worth one by one; the refits along
  // the way must eventually succeed.
  const TimeSeries series = PeriodicSeries(12, 0.01, 4);
  for (size_t i = 0; i < series.size(); ++i) online.Observe(series[i]);
  EXPECT_TRUE(online.fitted());
}


TEST(OnlinePredictorTest, AutoInflationDerivedFromResiduals) {
  // A model that systematically under-predicts by 20% must earn an
  // effective inflation near 1.2 / quantile of the noise.
  B2wTraceOptions trace_options;
  trace_options.days = 30;
  trace_options.seed = 21;
  const TimeSeries trace = GenerateB2wTrace(trace_options);

  OnlinePredictorOptions options;
  options.auto_inflation = true;
  options.auto_inflation_quantile = 0.95;
  options.auto_inflation_tau = 60;
  options.inflation = 1.0;  // starting point; auto mode overrides
  options.training_window = 28 * 1440;
  OnlinePredictor online(std::make_unique<SeasonalNaivePredictor>(1440),
                         options);
  ASSERT_TRUE(online.Warmup(trace.Slice(0, 28 * 1440)).ok());
  // The seasonal-naive predictor has day-to-day relative errors of a few
  // percent on this trace: the calibrated buffer should be a modest
  // multiplier above 1.
  EXPECT_GT(online.effective_inflation(), 1.01);
  EXPECT_LT(online.effective_inflation(), 1.5);

  // The buffer must actually cover the chosen share of outcomes on
  // held-out data.
  int covered = 0;
  int total = 0;
  for (size_t t = 28 * 1440; t + 60 < trace.size(); t += 7) {
    StatusOr<double> raw = online.model().PredictAhead(
        trace.Slice(0, t + 1), 60);
    if (!raw.ok()) continue;
    ++total;
    if (*raw * online.effective_inflation() >= trace[t + 60]) ++covered;
  }
  ASSERT_GT(total, 50);
  EXPECT_GT(static_cast<double>(covered) / total, 0.85);
}

TEST(OnlinePredictorTest, FixedInflationUnchangedWithoutAutoMode) {
  OnlinePredictorOptions options;
  options.inflation = 1.15;
  options.training_window = 50;
  OnlinePredictor online(std::make_unique<LastValuePredictor>(), options);
  TimeSeries flat(60.0, std::vector<double>(100, 10.0));
  ASSERT_TRUE(online.Warmup(flat).ok());
  EXPECT_EQ(online.effective_inflation(), 1.15);
}

}  // namespace
}  // namespace pstore
