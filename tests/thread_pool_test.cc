#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/status.h"

namespace pstore {
namespace {

// A deterministic per-index workload: enough arithmetic that indices
// finish out of order under real scheduling, but a pure function of i.
double Work(size_t i) {
  double x = static_cast<double>(i) + 1.0;
  for (int k = 0; k < 100; ++k) {
    x = std::sqrt(x * 3.0 + static_cast<double>(k));
  }
  return x;
}

TEST(ThreadPoolTest, HardwareConcurrencyAtLeastOne) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ResolveThreadCount(0), ThreadPool::HardwareConcurrency());
  EXPECT_EQ(ResolveThreadCount(-3), ThreadPool::HardwareConcurrency());
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_EQ(ResolveThreadCount(7), 7);
}

TEST(ThreadPoolTest, ThreadCountClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    constexpr size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.ParallelFor(kCount, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPoolTest, ZeroCountIsANoOp) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [](size_t) { FAIL() << "body ran for empty range"; });
}

// The core reproducibility contract: results written by index are
// bit-identical for any thread count.
TEST(ThreadPoolTest, DeterministicAcrossThreadCounts) {
  constexpr size_t kCount = 500;
  std::vector<double> serial(kCount);
  {
    ThreadPool pool(1);
    pool.ParallelFor(kCount, [&](size_t i) { serial[i] = Work(i); });
  }
  for (int threads : {2, 8}) {
    std::vector<double> parallel(kCount);
    ThreadPool pool(threads);
    pool.ParallelFor(kCount, [&](size_t i) { parallel[i] = Work(i); });
    EXPECT_EQ(serial, parallel) << "with " << threads << " threads";
  }
}

TEST(ThreadPoolTest, PoolIsReusableAcrossBatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(100, [&](size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 5050u) << "round " << round;
  }
}

TEST(ThreadPoolTest, LowestIndexExceptionWins) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(64);
    try {
      pool.ParallelFor(64, [&](size_t i) {
        hits[i].fetch_add(1);
        if (i == 7 || i == 23 || i == 50) {
          throw std::runtime_error("boom " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception with " << threads << " threads";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "boom 7") << "with " << threads
                                           << " threads";
    }
    // Failure does not abandon the batch: every index still ran.
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, PoolSurvivesAFailedBatch) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(8, [](size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  std::atomic<size_t> count{0};
  pool.ParallelFor(8, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8u);
}

TEST(ThreadPoolTest, ParallelForStatusOk) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::vector<int> out(100, 0);
    const Status status = pool.ParallelForStatus(out.size(), [&](size_t i) {
      out[i] = static_cast<int>(i);
      return Status::OK();
    });
    EXPECT_TRUE(status.ok());
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i));
    }
  }
}

TEST(ThreadPoolTest, ParallelForStatusReturnsLowestFailingIndex) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    const Status status = pool.ParallelForStatus(64, [](size_t i) {
      if (i % 10 == 3) {  // fails at 3, 13, 23, ...
        return Status::InvalidArgument("bad index " + std::to_string(i));
      }
      return Status::OK();
    });
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.message(), "bad index 3") << "with " << threads
                                               << " threads";
  }
}

}  // namespace
}  // namespace pstore
