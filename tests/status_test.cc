#include "common/status.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace pstore {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Infeasible("x").code(), StatusCode::kInfeasible);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
}

TEST(StatusTest, TransientCodesRenderNames) {
  EXPECT_EQ(Status::Unavailable("node 3 down").ToString(),
            "Unavailable: node 3 down");
  EXPECT_EQ(Status::Aborted("retry budget").ToString(),
            "Aborted: retry budget");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::Unavailable("down"); };
  auto succeeds = [] { return Status::OK(); };
  auto wrapper = [&](bool fail) -> Status {
    RETURN_IF_ERROR(succeeds());
    if (fail) {
      RETURN_IF_ERROR(fails());
    }
    return Status::OK();
  };
  EXPECT_TRUE(wrapper(false).ok());
  const Status propagated = wrapper(true);
  EXPECT_EQ(propagated.code(), StatusCode::kUnavailable);
  EXPECT_EQ(propagated.message(), "down");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = Status::NotFound("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::vector<int>> result = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(result.ok());
  std::vector<int> taken = std::move(result).value();
  EXPECT_EQ(taken.size(), 3u);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> result = std::string("hello");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 5u);
}

}  // namespace
}  // namespace pstore
