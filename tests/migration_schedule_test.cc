#include "planner/migration_schedule.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/strong_id.h"
#include "planner/move_model.h"

namespace pstore {
namespace {

// Int-accepting shim over the strongly-typed builder so the pair sweeps
// below stay terse.
StatusOr<MigrationSchedule> BuildMigrationSchedule(int before, int after) {
  return pstore::BuildMigrationSchedule(NodeCount(before), NodeCount(after));
}

TEST(MigrationScheduleTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(BuildMigrationSchedule(0, 3).ok());
  EXPECT_FALSE(BuildMigrationSchedule(3, 0).ok());
  EXPECT_FALSE(BuildMigrationSchedule(3, 3).ok());
}

TEST(MigrationScheduleTest, OneToTwo) {
  StatusOr<MigrationSchedule> schedule = BuildMigrationSchedule(1, 2);
  ASSERT_TRUE(schedule.ok());
  ASSERT_EQ(schedule->rounds.size(), 1u);
  ASSERT_EQ(schedule->rounds[0].transfers.size(), 1u);
  EXPECT_EQ(schedule->rounds[0].transfers[0],
            (TransferPair{NodeId(0), NodeId(1)}));
  EXPECT_NEAR(schedule->per_pair_fraction, 0.5, 1e-12);
  EXPECT_NEAR(schedule->TotalFractionMoved(), 0.5, 1e-12);
}

TEST(MigrationScheduleTest, CaseOneThreeToFive) {
  // Delta (2) <= s (3): all machines at once, s rounds.
  StatusOr<MigrationSchedule> schedule = BuildMigrationSchedule(3, 5);
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->rounds.size(), 3u);
  for (const ScheduleRound& round : schedule->rounds) {
    EXPECT_EQ(round.machines_allocated, NodeCount(5));
    EXPECT_EQ(round.transfers.size(), 2u);  // max parallel = 2
  }
}

TEST(MigrationScheduleTest, CaseTwoThreeToNine) {
  // Delta (6) a perfect multiple of s (3): blocks of 3, 6 rounds.
  StatusOr<MigrationSchedule> schedule = BuildMigrationSchedule(3, 9);
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->rounds.size(), 6u);
  // First block fills machines 3-5 with only 6 allocated...
  EXPECT_EQ(schedule->rounds[0].machines_allocated, NodeCount(6));
  // ...second block brings up 9.
  EXPECT_EQ(schedule->rounds[5].machines_allocated, NodeCount(9));
}

TEST(MigrationScheduleTest, CaseThreeThreeToFourteenMatchesTable1) {
  // The paper's Table 1: 11 rounds in three phases (6 + 2 + 3), with
  // machine allocation stepping 6 -> 9 -> 12 -> 14.
  StatusOr<MigrationSchedule> schedule = BuildMigrationSchedule(3, 14);
  ASSERT_TRUE(schedule.ok());
  ASSERT_EQ(schedule->rounds.size(), 11u);
  std::vector<int> allocations;
  std::vector<int> phases;
  for (const ScheduleRound& round : schedule->rounds) {
    allocations.push_back(round.machines_allocated.value());
    phases.push_back(round.phase);
    // Every round keeps all three senders busy.
    EXPECT_EQ(round.transfers.size(), 3u);
  }
  EXPECT_EQ(allocations, (std::vector<int>{6, 6, 6, 9, 9, 9, 12, 12, 14,
                                           14, 14}));
  EXPECT_EQ(phases,
            (std::vector<int>{1, 1, 1, 1, 1, 1, 2, 2, 3, 3, 3}));
}

TEST(MigrationScheduleTest, ScaleInFourteenToThreeIsReversed) {
  StatusOr<MigrationSchedule> schedule = BuildMigrationSchedule(14, 3);
  ASSERT_TRUE(schedule.ok());
  ASSERT_EQ(schedule->rounds.size(), 11u);
  std::vector<int> allocations;
  for (const ScheduleRound& round : schedule->rounds) {
    allocations.push_back(round.machines_allocated.value());
    // Transfers flow from the drained machines into the survivors.
    for (const TransferPair& pair : round.transfers) {
      EXPECT_GE(pair.sender, NodeId(3));
      EXPECT_LT(pair.receiver, NodeId(3));
    }
  }
  EXPECT_EQ(allocations, (std::vector<int>{14, 14, 14, 12, 12, 9, 9, 9, 6,
                                           6, 6}));
}

TEST(MigrationScheduleTest, PerPairFraction) {
  StatusOr<MigrationSchedule> schedule = BuildMigrationSchedule(3, 14);
  ASSERT_TRUE(schedule.ok());
  EXPECT_NEAR(schedule->per_pair_fraction, 1.0 / 42.0, 1e-12);
  // Total data moved = pairs * per-pair = 33/42 = 1 - 3/14.
  size_t total_transfers = 0;
  for (const ScheduleRound& round : schedule->rounds) {
    total_transfers += round.transfers.size();
  }
  EXPECT_NEAR(total_transfers * schedule->per_pair_fraction,
              schedule->TotalFractionMoved(), 1e-12);
}

TEST(MigrationScheduleTest, ToStringMentionsPhases) {
  StatusOr<MigrationSchedule> schedule = BuildMigrationSchedule(3, 14);
  ASSERT_TRUE(schedule.ok());
  const std::string text = schedule->ToString();
  EXPECT_NE(text.find("Phase 1"), std::string::npos);
  EXPECT_NE(text.find("Phase 2"), std::string::npos);
  EXPECT_NE(text.find("Phase 3"), std::string::npos);
  EXPECT_NE(text.find("11 rounds"), std::string::npos);
}

// Full invariant sweep across cluster-size combinations. This is the
// load-bearing property test: schedules must exist and validate for
// every (before, after) pair the planner can produce.
class SchedulePairSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SchedulePairSweep, InvariantsHold) {
  const auto [before, after] = GetParam();
  if (before == after) {
    EXPECT_FALSE(BuildMigrationSchedule(before, after).ok());
    return;
  }
  StatusOr<MigrationSchedule> schedule =
      BuildMigrationSchedule(before, after);
  ASSERT_TRUE(schedule.ok()) << before << "->" << after;
  EXPECT_TRUE(ValidateSchedule(*schedule).ok()) << before << "->" << after;

  // Round count equals the theoretical minimum that keeps the smaller
  // side fully parallel: s rounds if delta <= s, else delta rounds.
  const int smaller = std::min(before, after);
  const int delta = std::abs(after - before);
  const size_t expected =
      static_cast<size_t>(delta <= smaller ? smaller : delta);
  EXPECT_EQ(schedule->rounds.size(), expected);

  // Every stable-side machine is busy in every round when delta >= s
  // (senders never idle, the point of the three-phase schedule).
  if (delta >= smaller) {
    for (const ScheduleRound& round : schedule->rounds) {
      EXPECT_EQ(round.transfers.size(), static_cast<size_t>(smaller));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPairsUpTo12, SchedulePairSweep,
                         ::testing::Combine(::testing::Range(1, 13),
                                            ::testing::Range(1, 13)));

// The schedule's machine-allocation steps must agree with the planner's
// analytic allocation profile (MachinesAllocatedAt), since the DP costs
// moves with the latter.
class ScheduleAllocationConsistency
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ScheduleAllocationConsistency, MatchesAnalyticProfile) {
  const auto [before, after] = GetParam();
  StatusOr<MigrationSchedule> schedule =
      BuildMigrationSchedule(before, after);
  ASSERT_TRUE(schedule.ok());
  const size_t rounds = schedule->rounds.size();
  for (size_t r = 0; r < rounds; ++r) {
    // Evaluate the profile at the midpoint of round r.
    const double f = (static_cast<double>(r) + 0.5) / rounds;
    EXPECT_EQ(schedule->rounds[r].machines_allocated,
              MachinesAllocatedAt(NodeCount(before), NodeCount(after), f))
        << before << "->" << after << " round " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RepresentativeMoves, ScheduleAllocationConsistency,
    ::testing::Values(std::make_tuple(3, 5), std::make_tuple(3, 9),
                      std::make_tuple(3, 14), std::make_tuple(14, 3),
                      std::make_tuple(2, 3), std::make_tuple(4, 6),
                      std::make_tuple(9, 3), std::make_tuple(5, 12),
                      std::make_tuple(12, 5), std::make_tuple(1, 7),
                      std::make_tuple(7, 1)));

TEST(ValidateScheduleTest, DetectsDuplicatePair) {
  StatusOr<MigrationSchedule> schedule = BuildMigrationSchedule(2, 4);
  ASSERT_TRUE(schedule.ok());
  // Corrupt: repeat the first transfer in the last round.
  MigrationSchedule bad = *schedule;
  bad.rounds.back().transfers[0] = bad.rounds.front().transfers[0];
  EXPECT_FALSE(ValidateSchedule(bad).ok());
}

TEST(ValidateScheduleTest, DetectsMachineReuseWithinRound) {
  StatusOr<MigrationSchedule> schedule = BuildMigrationSchedule(3, 5);
  ASSERT_TRUE(schedule.ok());
  MigrationSchedule bad = *schedule;
  ASSERT_GE(bad.rounds[0].transfers.size(), 2u);
  bad.rounds[0].transfers[1].sender = bad.rounds[0].transfers[0].sender;
  EXPECT_FALSE(ValidateSchedule(bad).ok());
}

TEST(ValidateScheduleTest, DetectsWrongDirection) {
  StatusOr<MigrationSchedule> schedule = BuildMigrationSchedule(2, 4);
  ASSERT_TRUE(schedule.ok());
  MigrationSchedule bad = *schedule;
  std::swap(bad.rounds[0].transfers[0].sender,
            bad.rounds[0].transfers[0].receiver);
  EXPECT_FALSE(ValidateSchedule(bad).ok());
}

TEST(ValidateScheduleTest, DetectsMissingRound) {
  StatusOr<MigrationSchedule> schedule = BuildMigrationSchedule(3, 9);
  ASSERT_TRUE(schedule.ok());
  MigrationSchedule bad = *schedule;
  bad.rounds.pop_back();
  EXPECT_FALSE(ValidateSchedule(bad).ok());
}

}  // namespace
}  // namespace pstore
