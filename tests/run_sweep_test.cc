#include "sim/run_spec.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/time_series.h"
#include "obs/tracer.h"
#include "prediction/naive_models.h"
#include "sim/capacity_simulator.h"

namespace pstore {
namespace {

// A compact 4-day B2W workload in txn/s (same scaling as the capacity
// simulator tests): 3 warmup days, 1440 evaluation slots.
WorkloadSpec TestWorkload(uint64_t seed = 11) {
  WorkloadSpec workload;
  workload.kind = WorkloadSpec::Kind::kB2wSynthetic;
  workload.b2w.days = 4;
  workload.b2w.seed = seed;
  workload.b2w.peak_requests_per_min = 10500.0;
  workload.scale = 10.0 / 60.0;
  return workload;
}

SimOptions TestSim() {
  SimOptions options;
  options.plan_slot_factor = 5;
  options.horizon_plan_slots = 36;
  options.q = 285.0;
  options.q_hat = 350.0;
  options.d_fine_slots = 77.0;
  options.partitions_per_node = 6;
  options.initial_nodes = 4;
  options.max_nodes = 40;
  options.eval_begin = 3 * 1440;
  return options;
}

// The strategy mix every test sweeps: one spec per strategy, with the
// predictive spec driven by an oracle over the coarse (plan-slot) trace.
struct SweepFixture {
  SweepFixture() {
    const StatusOr<TimeSeries> trace = BuildWorkloadTrace(TestWorkload());
    PSTORE_CHECK_OK(trace.status());
    oracle = std::make_unique<OraclePredictor>(trace->DownsampleMean(5));

    RunSpec pstore;
    pstore.label = "pstore";
    pstore.workload = TestWorkload();
    pstore.sim = TestSim();
    pstore.sim.inflation = 1.0;
    pstore.strategy = Strategy::kPredictive;
    pstore.predictor = oracle.get();
    specs.push_back(pstore);

    RunSpec reactive;
    reactive.label = "reactive";
    reactive.workload = TestWorkload();
    reactive.sim = TestSim();
    reactive.strategy = Strategy::kReactive;
    specs.push_back(reactive);

    RunSpec simple;
    simple.label = "simple";
    simple.workload = TestWorkload();
    simple.sim = TestSim();
    simple.strategy = Strategy::kSimple;
    simple.simple.day_nodes = 8;
    simple.simple.night_nodes = 3;
    specs.push_back(simple);

    RunSpec fixed;
    fixed.label = "static";
    fixed.workload = TestWorkload();
    fixed.sim = TestSim();
    fixed.strategy = Strategy::kStatic;
    fixed.static_nodes = 7;
    specs.push_back(fixed);
  }

  std::unique_ptr<OraclePredictor> oracle;
  std::vector<RunSpec> specs;
};

bool SameResult(const SimResult& a, const SimResult& b) {
  return a.machine_slots == b.machine_slots &&
         a.insufficient_slots == b.insufficient_slots &&
         a.insufficient_fraction == b.insufficient_fraction &&
         a.move_slots == b.move_slots &&
         a.reconfigurations == b.reconfigurations;
}

TEST(RunSpecTest, ParseStrategyRoundTrips) {
  for (Strategy strategy : {Strategy::kPredictive, Strategy::kReactive,
                            Strategy::kSimple, Strategy::kStatic}) {
    const StatusOr<Strategy> parsed = ParseStrategy(StrategyName(strategy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, strategy);
  }
  ASSERT_TRUE(ParseStrategy("predictive").ok());
  EXPECT_EQ(*ParseStrategy("predictive"), Strategy::kPredictive);
  EXPECT_FALSE(ParseStrategy("oracle").ok());
  EXPECT_FALSE(ParseStrategy("").ok());
}

TEST(RunSpecTest, BuildStepWorkload) {
  WorkloadSpec workload;
  workload.kind = WorkloadSpec::Kind::kStep;
  workload.step_slot_seconds = 6.0;
  workload.step_slots = 100;
  workload.step_at_slot = 40;
  workload.base_rate = 300.0;
  workload.peak_rate = 800.0;
  const StatusOr<TimeSeries> trace = BuildWorkloadTrace(workload);
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace->size(), 100u);
  EXPECT_EQ(trace->slot_seconds(), 6.0);
  EXPECT_EQ((*trace)[0], 300.0);
  EXPECT_EQ((*trace)[39], 300.0);
  EXPECT_EQ((*trace)[40], 800.0);
  EXPECT_EQ((*trace)[99], 800.0);

  workload.step_slots = 0;
  EXPECT_FALSE(BuildWorkloadTrace(workload).ok());
}

TEST(RunSpecTest, BuildProvidedWorkloadRequiresSeries) {
  WorkloadSpec workload;
  workload.kind = WorkloadSpec::Kind::kProvided;
  EXPECT_FALSE(BuildWorkloadTrace(workload).ok());
}

TEST(RunSpecTest, EqualSpecsBuildIdenticalTraces) {
  const StatusOr<TimeSeries> a = BuildWorkloadTrace(TestWorkload());
  const StatusOr<TimeSeries> b = BuildWorkloadTrace(TestWorkload());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i], (*b)[i]) << "slot " << i;
  }
}

TEST(RunSpecTest, SeedOverridesWorkloadSeed) {
  SweepFixture fixture;
  RunSpec spec = fixture.specs[1];  // reactive: no predictor entanglement
  const StatusOr<SimResult> base = RunOne(spec);
  ASSERT_TRUE(base.ok());
  spec.seed = 99;  // same as TestWorkload(99)
  const StatusOr<SimResult> reseeded = RunOne(spec);
  ASSERT_TRUE(reseeded.ok());
  spec.workload = TestWorkload(99);
  spec.seed = 0;
  const StatusOr<SimResult> direct = RunOne(spec);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(SameResult(*reseeded, *direct));
  EXPECT_FALSE(SameResult(*base, *reseeded));
}

TEST(RunSweepTest, MatchesSerialRunOne) {
  SweepFixture fixture;
  SweepOptions options;
  options.threads = 2;
  const StatusOr<SweepResult> sweep = RunSweep(fixture.specs, options);
  ASSERT_TRUE(sweep.ok());
  ASSERT_EQ(sweep->results.size(), fixture.specs.size());
  EXPECT_EQ(sweep->threads, 2);
  EXPECT_EQ(sweep->task_wall_us.size(), fixture.specs.size());
  for (size_t i = 0; i < fixture.specs.size(); ++i) {
    const StatusOr<SimResult> serial = RunOne(fixture.specs[i]);
    ASSERT_TRUE(serial.ok());
    EXPECT_TRUE(SameResult(sweep->results[i], *serial)) << "spec " << i;
  }
}

// The tentpole guarantee: the sweep artifact is byte-identical for any
// thread count.
TEST(RunSweepTest, CsvGoldenAcrossThreadCounts) {
  SweepFixture fixture;
  SweepOptions serial_options;
  serial_options.threads = 1;
  const StatusOr<SweepResult> serial = RunSweep(fixture.specs, serial_options);
  ASSERT_TRUE(serial.ok());
  const std::string golden = SweepCsvRows(fixture.specs, *serial);
  EXPECT_NE(golden.find("pstore,pstore,"), std::string::npos);

  for (int threads : {2, 8}) {
    SweepOptions options;
    options.threads = threads;
    const StatusOr<SweepResult> sweep = RunSweep(fixture.specs, options);
    ASSERT_TRUE(sweep.ok());
    EXPECT_EQ(SweepCsvRows(fixture.specs, *sweep), golden)
        << "with " << threads << " threads";
  }
}

TEST(RunSweepTest, RunsOnCallerOwnedPool) {
  SweepFixture fixture;
  ThreadPool pool(3);
  SweepOptions options;
  options.pool = &pool;
  options.threads = 1;  // ignored when a pool is supplied
  const StatusOr<SweepResult> sweep = RunSweep(fixture.specs, options);
  ASSERT_TRUE(sweep.ok());
  EXPECT_EQ(sweep->threads, 3);
  SweepOptions serial_options;
  serial_options.threads = 1;
  const StatusOr<SweepResult> serial = RunSweep(fixture.specs, serial_options);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(SweepCsvRows(fixture.specs, *sweep),
            SweepCsvRows(fixture.specs, *serial));
}

TEST(RunSweepTest, MissingPredictorIsRejectedBeforeRunning) {
  SweepFixture fixture;
  fixture.specs[0].predictor = nullptr;
  const StatusOr<SweepResult> sweep = RunSweep(fixture.specs, {});
  ASSERT_FALSE(sweep.ok());
  EXPECT_NE(sweep.status().message().find("needs a predictor"),
            std::string::npos);
}

TEST(RunSweepTest, AliasedTracersAreRejected) {
  SweepFixture fixture;
  obs::Tracer tracer;
  fixture.specs[0].tracer = &tracer;
  fixture.specs[2].tracer = &tracer;
  const StatusOr<SweepResult> sweep = RunSweep(fixture.specs, {});
  ASSERT_FALSE(sweep.ok());
  EXPECT_NE(sweep.status().message().find("share a Tracer"),
            std::string::npos);
}

TEST(RunSweepTest, EmitsSweepTelemetryInSpecOrder) {
  SweepFixture fixture;
  obs::Tracer tracer;
  auto sink = std::make_unique<obs::CountingTraceSink>();
  obs::CountingTraceSink* counter = sink.get();
  tracer.SetSink(std::move(sink));
  SweepOptions options;
  options.threads = 2;
  options.tracer = &tracer;
  const StatusOr<SweepResult> sweep = RunSweep(fixture.specs, options);
  ASSERT_TRUE(sweep.ok());
  // One sweep.task per spec plus the closing sweep.done.
  EXPECT_EQ(counter->count(),
            static_cast<int64_t>(fixture.specs.size()) + 1);
}

}  // namespace
}  // namespace pstore
