#include "common/time_series.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/status.h"

namespace pstore {
namespace {

TEST(TimeSeriesTest, DefaultSlotIsOneMinute) {
  TimeSeries series;
  EXPECT_EQ(series.slot_seconds(), 60.0);
  EXPECT_TRUE(series.empty());
}

TEST(TimeSeriesTest, AppendAndIndex) {
  TimeSeries series(1.0);
  series.Append(3.0);
  series.Append(5.0);
  EXPECT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0], 3.0);
  EXPECT_EQ(series[1], 5.0);
  series[1] = 7.0;
  EXPECT_EQ(series[1], 7.0);
}

TEST(TimeSeriesTest, SliceReturnsSubrange) {
  TimeSeries series(1.0, {0, 1, 2, 3, 4, 5});
  TimeSeries slice = series.Slice(2, 5);
  ASSERT_EQ(slice.size(), 3u);
  EXPECT_EQ(slice[0], 2.0);
  EXPECT_EQ(slice[2], 4.0);
  EXPECT_EQ(slice.slot_seconds(), 1.0);
}

TEST(TimeSeriesTest, SliceEmpty) {
  TimeSeries series(1.0, {1, 2, 3});
  EXPECT_EQ(series.Slice(1, 1).size(), 0u);
}

TEST(TimeSeriesTest, DownsampleSum) {
  TimeSeries series(60.0, {1, 2, 3, 4, 5, 6, 7});
  TimeSeries down = series.DownsampleSum(3);
  ASSERT_EQ(down.size(), 2u);  // trailing partial window dropped
  EXPECT_EQ(down[0], 6.0);
  EXPECT_EQ(down[1], 15.0);
  EXPECT_EQ(down.slot_seconds(), 180.0);
}

TEST(TimeSeriesTest, DownsampleMean) {
  TimeSeries series(60.0, {2, 4, 6, 8});
  TimeSeries down = series.DownsampleMean(2);
  ASSERT_EQ(down.size(), 2u);
  EXPECT_EQ(down[0], 3.0);
  EXPECT_EQ(down[1], 7.0);
}

TEST(TimeSeriesTest, DownsampleFactorOneIsIdentity) {
  TimeSeries series(60.0, {2, 4, 6});
  TimeSeries down = series.DownsampleSum(1);
  ASSERT_EQ(down.size(), 3u);
  EXPECT_EQ(down[2], 6.0);
}

TEST(TimeSeriesTest, ScaledMultipliesValues) {
  TimeSeries series(60.0, {1, 2});
  TimeSeries scaled = series.Scaled(2.5);
  EXPECT_EQ(scaled[0], 2.5);
  EXPECT_EQ(scaled[1], 5.0);
  // Original untouched.
  EXPECT_EQ(series[0], 1.0);
}

TEST(TimeSeriesTest, Statistics) {
  TimeSeries series(1.0, {2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_EQ(series.Min(), 2.0);
  EXPECT_EQ(series.Max(), 9.0);
  EXPECT_EQ(series.Mean(), 5.0);
  EXPECT_NEAR(series.StdDev(), 2.0, 1e-12);
}

TEST(MetricsTest, MreBasic) {
  const std::vector<double> actual = {100, 200};
  const std::vector<double> predicted = {110, 180};
  StatusOr<double> mre = MeanRelativeError(actual, predicted);
  ASSERT_TRUE(mre.ok());
  EXPECT_NEAR(*mre, (0.1 + 0.1) / 2.0, 1e-12);
}

TEST(MetricsTest, MreSkipsNearZeroActuals) {
  const std::vector<double> actual = {0.0, 100};
  const std::vector<double> predicted = {50, 150};
  StatusOr<double> mre = MeanRelativeError(actual, predicted);
  ASSERT_TRUE(mre.ok());
  EXPECT_NEAR(*mre, 0.5, 1e-12);
}

TEST(MetricsTest, MreLengthMismatchFails) {
  EXPECT_FALSE(MeanRelativeError({1.0}, {1.0, 2.0}).ok());
}

TEST(MetricsTest, MreAllZeroActualsFails) {
  EXPECT_FALSE(MeanRelativeError({0.0, 0.0}, {1.0, 2.0}).ok());
}

TEST(MetricsTest, MaeAndRmse) {
  const std::vector<double> actual = {1, 2, 3};
  const std::vector<double> predicted = {2, 2, 1};
  StatusOr<double> mae = MeanAbsoluteError(actual, predicted);
  ASSERT_TRUE(mae.ok());
  EXPECT_NEAR(*mae, (1 + 0 + 2) / 3.0, 1e-12);
  StatusOr<double> rmse = RootMeanSquaredError(actual, predicted);
  ASSERT_TRUE(rmse.ok());
  EXPECT_NEAR(*rmse, std::sqrt((1.0 + 0.0 + 4.0) / 3.0), 1e-12);
}

TEST(MetricsTest, EmptySeriesFail) {
  EXPECT_FALSE(MeanAbsoluteError({}, {}).ok());
  EXPECT_FALSE(RootMeanSquaredError({}, {}).ok());
}

TEST(MetricsTest, PerfectPredictionIsZeroError) {
  const std::vector<double> values = {5, 10, 15};
  EXPECT_EQ(*MeanRelativeError(values, values), 0.0);
  EXPECT_EQ(*MeanAbsoluteError(values, values), 0.0);
  EXPECT_EQ(*RootMeanSquaredError(values, values), 0.0);
}


TEST(AutocorrelationTest, PerfectPeriodicityPeaksAtPeriod) {
  TimeSeries series(1.0);
  for (int i = 0; i < 480; ++i) {
    series.Append(std::sin(2.0 * M_PI * i / 48.0));
  }
  StatusOr<double> at_period = Autocorrelation(series, 48);
  StatusOr<double> at_half = Autocorrelation(series, 24);
  ASSERT_TRUE(at_period.ok());
  ASSERT_TRUE(at_half.ok());
  EXPECT_GT(*at_period, 0.85);
  EXPECT_LT(*at_half, -0.5);  // anti-phase
}

TEST(AutocorrelationTest, RejectsBadInputs) {
  TimeSeries series(1.0, {1, 2, 3, 4});
  EXPECT_FALSE(Autocorrelation(series, 0).ok());
  EXPECT_FALSE(Autocorrelation(series, 4).ok());
  TimeSeries constant(1.0, {5, 5, 5, 5});
  EXPECT_FALSE(Autocorrelation(constant, 1).ok());
}

TEST(DetectPeriodTest, FindsSinusoidPeriodDespiteShortLagMass) {
  // Add slow drift so short lags have high raw autocorrelation; the
  // detector must still find the true 48-slot period.
  TimeSeries series(1.0);
  double drift = 0.0;
  for (int i = 0; i < 960; ++i) {
    drift = 0.98 * drift + ((i * 2654435761u) % 100) / 5000.0 - 0.01;
    series.Append(std::sin(2.0 * M_PI * i / 48.0) + drift);
  }
  StatusOr<size_t> period = DetectPeriod(series, 2, 100);
  ASSERT_TRUE(period.ok());
  EXPECT_NEAR(static_cast<double>(*period), 48.0, 2.0);
}

TEST(DetectPeriodTest, ValidatesArguments) {
  TimeSeries series(1.0, std::vector<double>(50, 1.0));
  EXPECT_FALSE(DetectPeriod(series, 0, 10).ok());
  EXPECT_FALSE(DetectPeriod(series, 5, 4).ok());
  EXPECT_FALSE(DetectPeriod(series, 2, 30).ok());  // max_lag >= size/2
}

}  // namespace
}  // namespace pstore
