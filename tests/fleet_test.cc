#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "common/strong_id.h"
#include "common/thread_pool.h"
#include "common/time_series.h"
#include "fleet/fleet_controller.h"
#include "fleet/fleet_simulator.h"
#include "fleet/placement.h"
#include "fleet/tenant.h"
#include "fleet/tenant_forecaster.h"
#include "planner/move_model.h"
#include "planner/move_model_table.h"
#include "sim/run_spec.h"

namespace pstore {
namespace fleet {
namespace {

// ---- interference model ----------------------------------------------------

TEST(EffectiveCapacityTest, SingleTenantPaysNoInterference) {
  PlacementOptions options;
  options.machine_capacity = 300.0;
  options.interference_per_tenant = 0.05;
  EXPECT_DOUBLE_EQ(EffectiveMachineCapacity(options, 0), 300.0);
  EXPECT_DOUBLE_EQ(EffectiveMachineCapacity(options, 1), 300.0);
}

TEST(EffectiveCapacityTest, MonotonicallyNonIncreasingInTenantCount) {
  PlacementOptions options;
  options.machine_capacity = 300.0;
  options.interference_per_tenant = 0.05;
  options.min_capacity_fraction = 0.5;
  double previous = EffectiveMachineCapacity(options, 1);
  for (int tenants = 2; tenants <= 30; ++tenants) {
    const double capacity = EffectiveMachineCapacity(options, tenants);
    EXPECT_LE(capacity, previous) << "tenants=" << tenants;
    previous = capacity;
  }
  // 1 - 0.05 * (3 - 1) = 0.9.
  EXPECT_DOUBLE_EQ(EffectiveMachineCapacity(options, 3), 270.0);
}

TEST(EffectiveCapacityTest, FloorsAtMinCapacityFraction) {
  PlacementOptions options;
  options.machine_capacity = 300.0;
  options.interference_per_tenant = 0.05;
  options.min_capacity_fraction = 0.5;
  // 100 tenants would nominally degrade far past the floor.
  EXPECT_DOUBLE_EQ(EffectiveMachineCapacity(options, 100), 150.0);
}

TEST(EffectiveCapacityTest, ServeCapacityUsesCallerLimit) {
  PlacementOptions options;
  options.machine_capacity = 285.0;
  options.interference_per_tenant = 0.02;
  EXPECT_DOUBLE_EQ(EffectiveServeCapacity(options, 350.0, 2),
                   350.0 * 0.98);
}

// ---- packer ----------------------------------------------------------------

PlacementOptions SmallPoolOptions() {
  PlacementOptions options;
  options.machine_capacity = 100.0;
  options.interference_per_tenant = 0.0;
  return options;
}

TEST(PlacementPlannerTest, RespectsMachineCapacity) {
  PlacementPlanner planner(SmallPoolOptions(), nullptr);
  // Four tenants of 60 each, one partition apiece: no two items can
  // share a machine (60 + 60 > 100), so the pack needs four machines.
  const StatusOr<Placement> packed =
      planner.Pack({60.0, 60.0, 60.0, 60.0}, {1, 1, 1, 1}, nullptr);
  ASSERT_TRUE(packed.ok()) << packed.status().ToString();
  EXPECT_EQ(packed->machines_used, 4);
  for (size_t m = 0; m < packed->machine_load.size(); ++m) {
    EXPECT_LE(packed->machine_load[m], 100.0);
  }
}

TEST(PlacementPlannerTest, BinPacksSubMachineTenants) {
  PlacementPlanner planner(SmallPoolOptions(), nullptr);
  // Eight tenants of 25 each fit exactly onto two machines.
  const StatusOr<Placement> packed = planner.Pack(
      std::vector<double>(8, 25.0), std::vector<int>(8, 1), nullptr);
  ASSERT_TRUE(packed.ok()) << packed.status().ToString();
  EXPECT_EQ(packed->machines_used, 2);
}

TEST(PlacementPlannerTest, InterferenceReducesCoLocation) {
  PlacementOptions options = SmallPoolOptions();
  const StatusOr<Placement> no_interference =
      PlacementPlanner(options, nullptr)
          .Pack(std::vector<double>(8, 24.0), std::vector<int>(8, 1),
                nullptr);
  ASSERT_TRUE(no_interference.ok());

  options.interference_per_tenant = 0.1;  // 4 co-tenants cost 30%
  const StatusOr<Placement> with_interference =
      PlacementPlanner(options, nullptr)
          .Pack(std::vector<double>(8, 24.0), std::vector<int>(8, 1),
                nullptr);
  ASSERT_TRUE(with_interference.ok());
  EXPECT_GT(with_interference->machines_used,
            no_interference->machines_used);
}

TEST(PlacementPlannerTest, SameTenantPartitionsDoNotInterfere) {
  PlacementOptions options = SmallPoolOptions();
  options.interference_per_tenant = 0.5;
  // One tenant, four partitions of 24: all fit on one machine because
  // co-locating the same tenant is interference-free.
  const StatusOr<Placement> packed =
      PlacementPlanner(options, nullptr).Pack({96.0}, {4}, nullptr);
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(packed->machines_used, 1);
}

TEST(PlacementPlannerTest, DeterministicAcrossRepeatedPacks) {
  PlacementPlanner planner(SmallPoolOptions(), nullptr);
  const std::vector<double> demand = {40.0, 40.0, 30.0, 30.0, 20.0, 20.0};
  const std::vector<int> partitions = {2, 1, 1, 2, 1, 1};
  const StatusOr<Placement> first = planner.Pack(demand, partitions, nullptr);
  const StatusOr<Placement> second =
      planner.Pack(demand, partitions, nullptr);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->machine.size(), second->machine.size());
  for (size_t i = 0; i < first->machine.size(); ++i) {
    EXPECT_EQ(first->machine[i], second->machine[i]) << "partition " << i;
  }
}

TEST(PlacementPlannerTest, EqualDemandTieBreaksByLowestIndex) {
  PlacementPlanner planner(SmallPoolOptions(), nullptr);
  // Two identical items: the lower flat index must land on the lower
  // machine id (demand ties break by index, machines by id).
  const StatusOr<Placement> packed =
      planner.Pack({60.0, 60.0}, {1, 1}, nullptr);
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(packed->machine[0], MachineId(0));
  EXPECT_EQ(packed->machine[1], MachineId(1));
}

TEST(PlacementPlannerTest, IncrementalKeepsFittingPartitionsPut) {
  PlacementPlanner planner(SmallPoolOptions(), nullptr);
  const std::vector<int> partitions = {1, 1, 1};
  const StatusOr<Placement> initial =
      planner.Pack({48.0, 30.0, 20.0}, partitions, nullptr);
  ASSERT_TRUE(initial.ok());
  // Mild demand drift that still fits everywhere: nothing moves.
  const StatusOr<Placement> next =
      planner.Pack({49.0, 29.0, 21.0}, partitions, &*initial);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->moved_partitions, 0);
  EXPECT_FALSE(next->repacked);
  for (size_t i = 0; i < next->machine.size(); ++i) {
    EXPECT_EQ(next->machine[i], initial->machine[i]);
  }
}

TEST(PlacementPlannerTest, IncrementalEvictsFromOverloadedMachine) {
  PlacementPlanner planner(SmallPoolOptions(), nullptr);
  const std::vector<int> partitions = {1, 1};
  const StatusOr<Placement> initial =
      planner.Pack({50.0, 40.0}, partitions, nullptr);
  ASSERT_TRUE(initial.ok());
  EXPECT_EQ(initial->machines_used, 1);
  // Tenant 0 grows past what the shared machine can hold: someone moves.
  const StatusOr<Placement> next =
      planner.Pack({80.0, 40.0}, partitions, &*initial);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->machines_used, 2);
  EXPECT_EQ(next->moved_partitions, 1);
}

TEST(PlacementPlannerTest, IncrementalEvictsSeveralFromOneMachine) {
  PlacementPlanner planner(SmallPoolOptions(), nullptr);
  const std::vector<int> partitions = {1, 1, 1};
  const StatusOr<Placement> initial =
      planner.Pack({34.0, 33.0, 33.0}, partitions, nullptr);
  ASSERT_TRUE(initial.ok());
  EXPECT_EQ(initial->machines_used, 1);
  // Every tenant nearly doubles: the shared machine is over by more
  // than its largest item, so lifting the overload takes two distinct
  // evictions (a single victim must not be evicted twice).
  const StatusOr<Placement> next =
      planner.Pack({60.0, 60.0, 60.0}, partitions, &*initial);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->machines_used, 3);
  EXPECT_EQ(next->moved_partitions, 2);
  EXPECT_NE(next->machine[0], next->machine[1]);
  EXPECT_NE(next->machine[0], next->machine[2]);
  EXPECT_NE(next->machine[1], next->machine[2]);
  double total_load = 0.0;
  for (size_t m = 0; m < next->machine_load.size(); ++m) {
    EXPECT_LE(next->machine_load[m], 100.0);
    total_load += next->machine_load[m];
  }
  EXPECT_DOUBLE_EQ(total_load, 180.0);
}

TEST(PlacementPlannerTest, RepackEconomicsGateConsolidation) {
  // After a demand collapse the sticky pack strands machines; whether
  // the consolidating repack is adopted depends on the priced churn.
  PlannerParams params;
  const MoveModelTable table(params, NodeCount(64));
  const std::vector<int> partitions(8, 1);
  const std::vector<double> high(8, 60.0);
  const std::vector<double> low(8, 10.0);

  PlacementOptions cheap_moves = SmallPoolOptions();
  cheap_moves.partition_move_cost = 0.0;
  {
    PlacementPlanner planner(cheap_moves, &table);
    const StatusOr<Placement> initial =
        planner.Pack(high, partitions, nullptr);
    ASSERT_TRUE(initial.ok());
    EXPECT_EQ(initial->machines_used, 8);
    const StatusOr<Placement> next =
        planner.Pack(low, partitions, &*initial);
    ASSERT_TRUE(next.ok());
    EXPECT_TRUE(next->repacked);
    EXPECT_EQ(next->machines_used, 1);
  }

  PlacementOptions dear_moves = SmallPoolOptions();
  dear_moves.partition_move_cost = 1e9;  // any churn outweighs savings
  {
    PlacementPlanner planner(dear_moves, &table);
    const StatusOr<Placement> initial =
        planner.Pack(high, partitions, nullptr);
    ASSERT_TRUE(initial.ok());
    const StatusOr<Placement> next =
        planner.Pack(low, partitions, &*initial);
    ASSERT_TRUE(next.ok());
    EXPECT_FALSE(next->repacked);
    EXPECT_EQ(next->machines_used, 8);  // stranded, but no churn paid
  }
}

TEST(PlacementPlannerTest, RejectsMalformedInput) {
  PlacementPlanner planner(SmallPoolOptions(), nullptr);
  EXPECT_FALSE(planner.Pack({1.0}, {1, 1}, nullptr).ok());
  EXPECT_FALSE(planner.Pack({1.0}, {0}, nullptr).ok());
  EXPECT_FALSE(planner.Pack({-1.0}, {1}, nullptr).ok());
  const StatusOr<Placement> initial = planner.Pack({1.0}, {1}, nullptr);
  ASSERT_TRUE(initial.ok());
  EXPECT_FALSE(planner.Pack({1.0, 2.0}, {1, 1}, &*initial).ok());
}

// ---- forecaster ------------------------------------------------------------

TEST(TenantForecasterTest, FallsBackToLastValueBeforeOnePeriod) {
  TenantForecaster forecaster(/*period_slots=*/4, /*recent_window=*/2);
  EXPECT_DOUBLE_EQ(forecaster.Forecast(), 0.0);
  forecaster.Observe(10.0);
  forecaster.Observe(20.0);
  EXPECT_DOUBLE_EQ(forecaster.Forecast(), 20.0);
}

TEST(TenantForecasterTest, TracksSeasonalPattern) {
  TenantForecaster forecaster(/*period_slots=*/4, /*recent_window=*/2);
  // Two full periods of a clean 4-slot pattern.
  for (int repeat = 0; repeat < 2; ++repeat) {
    for (const double value : {10.0, 50.0, 90.0, 30.0}) {
      forecaster.Observe(value);
    }
  }
  // Next slot is the start of the pattern; residuals are all zero.
  EXPECT_DOUBLE_EQ(forecaster.Forecast(), 10.0);
}

TEST(TenantForecasterTest, RecentOffsetShiftsSeasonalBaseline) {
  TenantForecaster forecaster(/*period_slots=*/4, /*recent_window=*/2);
  for (const double value : {10.0, 50.0, 90.0, 30.0}) {
    forecaster.Observe(value);
  }
  // The second period starts running 5 higher. The next forecast is the
  // seasonal baseline one period back (90) lifted by the mean recent
  // residual (+5).
  forecaster.Observe(15.0);
  forecaster.Observe(55.0);
  EXPECT_DOUBLE_EQ(forecaster.Forecast(), 95.0);
}

// ---- tenant mix ------------------------------------------------------------

TEST(TenantMixTest, BuildsRequestedFamilies) {
  TenantMixOptions mix;
  mix.b2w_tenants = 2;
  mix.wikipedia_tenants = 2;
  mix.ycsb_tenants = 1;
  mix.step_tenants = 1;
  mix.days = 2;
  const std::vector<TenantSpec> tenants = MakeTenantMix(mix);
  ASSERT_EQ(tenants.size(), 6u);
  EXPECT_EQ(TotalTenants(mix), 6);
  EXPECT_EQ(tenants[0].workload.kind, WorkloadSpec::Kind::kB2wSynthetic);
  EXPECT_EQ(tenants[2].workload.kind, WorkloadSpec::Kind::kWikipedia);
  EXPECT_EQ(tenants[4].workload.kind, WorkloadSpec::Kind::kYcsbSteady);
  EXPECT_EQ(tenants[5].workload.kind, WorkloadSpec::Kind::kStep);
  for (size_t t = 0; t < tenants.size(); ++t) {
    EXPECT_EQ(tenants[t].id, TenantId(static_cast<int>(t)));
    EXPECT_FALSE(tenants[t].name.empty());
  }
}

TEST(TenantMixTest, TracesBuildAndSpreadDiffers) {
  TenantMixOptions mix;
  mix.b2w_tenants = 3;
  mix.days = 2;
  const std::vector<TenantSpec> tenants = MakeTenantMix(mix);
  double first_peak = 0.0;
  bool peaks_differ = false;
  for (const TenantSpec& tenant : tenants) {
    const StatusOr<TimeSeries> trace =
        BuildWorkloadTrace(tenant.workload);
    ASSERT_TRUE(trace.ok()) << trace.status().ToString();
    EXPECT_GT(trace->Max(), 0.0);
    if (first_peak == 0.0) {
      first_peak = trace->Max();
    } else if (trace->Max() != first_peak) {
      peaks_differ = true;
    }
  }
  EXPECT_TRUE(peaks_differ);  // log-uniform demand spread applied
}

// ---- resampling ------------------------------------------------------------

TEST(ResampleToGridTest, HoldsCoarseValuesAcrossFineSlots) {
  const TimeSeries hourly(3600.0, {10.0, 20.0});
  const StatusOr<std::vector<double>> grid =
      ResampleToGrid(hourly, 60.0, 120);
  ASSERT_TRUE(grid.ok());
  ASSERT_EQ(grid->size(), 120u);
  EXPECT_DOUBLE_EQ((*grid)[0], 10.0);
  EXPECT_DOUBLE_EQ((*grid)[59], 10.0);
  EXPECT_DOUBLE_EQ((*grid)[60], 20.0);
  EXPECT_DOUBLE_EQ((*grid)[119], 20.0);
}

TEST(ResampleToGridTest, RejectsTooShortSource) {
  const TimeSeries hourly(3600.0, {10.0});
  EXPECT_FALSE(ResampleToGrid(hourly, 60.0, 61).ok());
  EXPECT_FALSE(ResampleToGrid(TimeSeries(), 60.0, 1).ok());
}

// ---- controller ------------------------------------------------------------

FleetControllerOptions SmallControllerOptions() {
  FleetControllerOptions options;
  options.placement.machine_capacity = 100.0;
  options.placement.interference_per_tenant = 0.0;
  options.inflation = 1.0;
  options.forecast_period_slots = 4;
  options.forecast_recent_window = 2;
  return options;
}

TEST(FleetControllerTest, PacksFromForecasts) {
  FleetController controller(SmallControllerOptions(), {1, 1}, nullptr,
                             nullptr);
  ASSERT_TRUE(controller.WarmUp({{40.0, 40.0, 40.0, 40.0},
                                 {30.0, 30.0, 30.0, 30.0}})
                  .ok());
  const StatusOr<FleetCycleDecision> decision =
      controller.Tick(0, {}, nullptr);
  ASSERT_TRUE(decision.ok()) << decision.status().ToString();
  EXPECT_EQ(decision->machines, 1);  // 40 + 30 fit one machine
  EXPECT_FALSE(decision->spike_replan);
}

TEST(FleetControllerTest, SpikeTriggersReplanWithObservedDemand) {
  FleetControllerOptions options = SmallControllerOptions();
  options.spike_replan_factor = 1.5;
  FleetController controller(options, {1, 1}, nullptr, nullptr);
  ASSERT_TRUE(controller.WarmUp({{40.0, 40.0, 40.0, 40.0},
                                 {30.0, 30.0, 30.0, 30.0}})
                  .ok());
  StatusOr<FleetCycleDecision> decision = controller.Tick(0, {}, nullptr);
  ASSERT_TRUE(decision.ok());
  const int calm_machines = decision->machines;

  // Tenant 0's observed demand triples its forecast: the controller
  // must re-plan with the observation, not the stale forecast.
  decision = controller.Tick(1, {160.0, 30.0}, nullptr);
  ASSERT_TRUE(decision.ok());
  EXPECT_TRUE(decision->spike_replan);
  EXPECT_GT(decision->machines, calm_machines);
  EXPECT_EQ(controller.spike_replans(), 1);
}

TEST(FleetControllerTest, ParallelForecastMatchesSerial) {
  const std::vector<std::vector<double>> history = {
      {40.0, 42.0, 38.0, 41.0}, {30.0, 29.0, 31.0, 30.0},
      {20.0, 22.0, 18.0, 21.0}, {10.0, 12.0, 8.0, 11.0}};
  FleetController serial(SmallControllerOptions(), {1, 1, 1, 1}, nullptr,
                         nullptr);
  FleetController parallel(SmallControllerOptions(), {1, 1, 1, 1}, nullptr,
                           nullptr);
  ASSERT_TRUE(serial.WarmUp(history).ok());
  ASSERT_TRUE(parallel.WarmUp(history).ok());
  ThreadPool pool(4);
  const StatusOr<FleetCycleDecision> a = serial.Tick(0, {}, nullptr);
  const StatusOr<FleetCycleDecision> b = parallel.Tick(0, {}, &pool);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(serial.last_forecast().size(), parallel.last_forecast().size());
  for (size_t t = 0; t < serial.last_forecast().size(); ++t) {
    EXPECT_DOUBLE_EQ(serial.last_forecast()[t], parallel.last_forecast()[t]);
  }
  EXPECT_EQ(a->machines, b->machines);
}

// ---- simulator -------------------------------------------------------------

TEST(FleetSimulatorTest, FleetPackingBeatsDedicatedAtEqualSla) {
  TenantMixOptions mix;
  mix.b2w_tenants = 8;
  mix.wikipedia_tenants = 4;
  mix.ycsb_tenants = 4;
  mix.step_tenants = 4;
  mix.days = 2;
  FleetOptions options;
  options.eval_begin = 1440;
  FleetSimulator simulator(options, MakeTenantMix(mix));

  const StatusOr<FleetResult> fleet =
      simulator.Simulate(FleetMode::kFleet, nullptr);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  const StatusOr<FleetResult> dedicated =
      simulator.Simulate(FleetMode::kDedicated, nullptr);
  ASSERT_TRUE(dedicated.ok()) << dedicated.status().ToString();

  EXPECT_LT(fleet->machine_slots + fleet->move_machine_slots,
            dedicated->machine_slots + dedicated->move_machine_slots);
  EXPECT_LE(fleet->tenants_violating_sla,
            dedicated->tenants_violating_sla);
  EXPECT_EQ(fleet->per_tenant.size(), 20u);
  EXPECT_EQ(fleet->eval_fine_slots, dedicated->eval_fine_slots);
  EXPECT_GT(fleet->peak_machines, 0);
  EXPECT_LT(fleet->peak_machines, dedicated->peak_machines);
}

}  // namespace
}  // namespace fleet
}  // namespace pstore
