#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/status.h"
#include "common/time_series.h"
#include "prediction/spar_model.h"
#include "trace/b2w_trace_generator.h"

namespace pstore {
namespace {

TimeSeries TrainingTrace() {
  B2wTraceOptions options;
  options.days = 16;
  options.seed = 12;
  return GenerateB2wTrace(options);
}

SparOptions SmallOptions() {
  SparOptions options;
  options.period = 1440;
  options.num_periods = 3;
  options.num_recent = 10;
  options.max_tau = 20;
  options.tau_stride = 5;
  return options;
}

TEST(SparModelIoTest, SaveRequiresFit) {
  SparPredictor spar(SmallOptions());
  EXPECT_FALSE(spar.SaveToFile(::testing::TempDir() + "/x.spar").ok());
}

TEST(SparModelIoTest, RoundTripPredictsIdentically) {
  const TimeSeries trace = TrainingTrace();
  SparPredictor original(SmallOptions());
  ASSERT_TRUE(original.Fit(trace.Slice(0, 14 * 1440)).ok());

  const std::string path = ::testing::TempDir() + "/roundtrip.spar";
  ASSERT_TRUE(original.SaveToFile(path).ok());
  StatusOr<SparPredictor> loaded = SparPredictor::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  for (size_t tau : {1u, 7u, 20u}) {
    const StatusOr<double> a = original.PredictAhead(trace, tau);
    const StatusOr<double> b = loaded->PredictAhead(trace, tau);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // Hex-float serialization: bit-exact round trip.
    EXPECT_EQ(*a, *b) << "tau=" << tau;
  }
  std::remove(path.c_str());
}

TEST(SparModelIoTest, MissingFileFails) {
  EXPECT_FALSE(SparPredictor::LoadFromFile("/no/such/model.spar").ok());
}

TEST(SparModelIoTest, WrongMagicRejected) {
  const std::string path = ::testing::TempDir() + "/bad_magic.spar";
  std::ofstream(path) << "NOTSPAR\n1 2 3 4 5\n";
  EXPECT_FALSE(SparPredictor::LoadFromFile(path).ok());
  std::remove(path.c_str());
}

TEST(SparModelIoTest, TruncatedHeaderRejected) {
  const std::string path = ::testing::TempDir() + "/trunc.spar";
  std::ofstream(path) << "SPARv1\n1440 3\n";
  EXPECT_FALSE(SparPredictor::LoadFromFile(path).ok());
  std::remove(path.c_str());
}

TEST(SparModelIoTest, CoefficientCountMismatchRejected) {
  const std::string path = ::testing::TempDir() + "/short_row.spar";
  std::ofstream(path) << "SPARv1\n1440 3 10 20 5\n1 0x1p+0 0x1p+0\n";
  EXPECT_FALSE(SparPredictor::LoadFromFile(path).ok());
  std::remove(path.c_str());
}

TEST(SparModelIoTest, MissingStrideTauRejected) {
  // Header says taus 1, 6, 11, 16 must exist; provide only tau 1.
  const std::string path = ::testing::TempDir() + "/missing_tau.spar";
  std::ofstream out(path);
  out << "SPARv1\n1440 1 1 20 5\n1 0x1p+0 0x1p+0\n";
  out.close();
  EXPECT_FALSE(SparPredictor::LoadFromFile(path).ok());
  std::remove(path.c_str());
}

TEST(SparModelIoTest, EmptyModelRejected) {
  const std::string path = ::testing::TempDir() + "/empty.spar";
  std::ofstream(path) << "SPARv1\n1440 3 10 20 5\n";
  EXPECT_FALSE(SparPredictor::LoadFromFile(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pstore
