// Randomized property tests: long chains of random reconfigurations,
// random planner instances vs. the exhaustive reference, and concurrent
// balancer + migration churn. Seeds are fixed, so failures reproduce.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/strong_id.h"
#include "common/time_series.h"
#include "controller/load_balancer.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/metrics.h"
#include "engine/partition.h"
#include "engine/table.h"
#include "engine/txn_executor.h"
#include "engine/workload_driver.h"
#include "migration/squall_migrator.h"
#include "planner/brute_force_planner.h"
#include "planner/dp_planner.h"
#include "planner/migration_schedule.h"
#include "planner/move.h"
#include "planner/move_model.h"
#include "ycsb/ycsb_workload.h"

namespace pstore {
namespace {

// ---- Random reconfiguration chains -----------------------------------------

class MigrationChainFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MigrationChainFuzz, DataSurvivesRandomReconfigurationChains) {
  Rng rng(GetParam());
  ClusterOptions cluster_options;
  cluster_options.partitions_per_node = 1 + static_cast<int>(rng.NextUint64(4));
  cluster_options.max_nodes = 12;
  cluster_options.initial_nodes = 1 + static_cast<int>(rng.NextUint64(6));
  cluster_options.num_buckets = 512 + static_cast<int>(rng.NextUint64(512));
  Cluster cluster(cluster_options);

  // Load rows with a checksum of their keys.
  const uint64_t kRows = 6000;
  int64_t checksum = 0;
  for (uint64_t key = 0; key < kRows; ++key) {
    Row row;
    row.payload_bytes = 256 + static_cast<uint32_t>(rng.NextUint64(4096));
    row.f0 = static_cast<int64_t>(key * 2654435761ULL);
    checksum += row.f0;
    const BucketId bucket = cluster.BucketForKey(key);
    cluster.partition(cluster.PartitionOfBucket(bucket))
        .Put(bucket, 0, key, row);
  }
  const int64_t total_bytes = cluster.TotalDataBytes();

  EventLoop loop;
  MigrationOptions migration_options;
  migration_options.net_rate_bytes_per_sec = 50e6;
  migration_options.chunk_spacing_seconds = 0.001;
  migration_options.chunk_bytes = 64 * 1024;
  MigrationManager manager(&loop, &cluster, nullptr, migration_options);

  for (int step = 0; step < 8; ++step) {
    int target;
    do {
      target = 1 + static_cast<int>(rng.NextUint64(12));
    } while (target == cluster.active_nodes());
    const double multiplier = rng.NextBool(0.3) ? 8.0 : 1.0;
    ASSERT_TRUE(manager.StartReconfiguration(NodeCount(target), multiplier, nullptr).ok())
        << "step " << step << " to " << target;
    loop.RunToCompletion();
    ASSERT_EQ(cluster.active_nodes(), target);

    // Integrity: nothing lost, nothing duplicated, everything reachable.
    ASSERT_EQ(cluster.TotalRowCount(), static_cast<int64_t>(kRows));
    ASSERT_EQ(cluster.TotalDataBytes(), total_bytes);
    int64_t seen = 0;
    for (uint64_t key = 0; key < kRows; ++key) {
      const BucketId bucket = cluster.BucketForKey(key);
      const Row* row = cluster.partition(cluster.PartitionOfBucket(bucket))
                           .Get(bucket, 0, key);
      ASSERT_NE(row, nullptr) << "key " << key << " step " << step;
      seen += row->f0;
    }
    ASSERT_EQ(seen, checksum);

    // Balance: every active node within bucket granularity of the mean.
    const double mean = static_cast<double>(total_bytes) / target;
    for (int node = 0; node < target; ++node) {
      EXPECT_NEAR(static_cast<double>(cluster.NodeDataBytes(node)) / mean,
                  1.0, 0.35)
          << "node " << node << " step " << step;
    }
    // Released machines empty.
    for (int node = target; node < cluster_options.max_nodes; ++node) {
      ASSERT_EQ(cluster.NodeDataBytes(node), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrationChainFuzz,
                         ::testing::Range<uint64_t>(1, 13));

// ---- Random DP instances vs exhaustive search ------------------------------

class PlannerFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlannerFuzz, DpMatchesBruteForceOnRandomInstances) {
  Rng rng(GetParam() * 7919 + 3);
  PlannerParams params;
  params.target_rate_per_node = 100.0;
  params.max_rate_per_node = 125.0;
  params.d_slots = 1.0 + rng.NextDouble() * 5.0;
  params.partitions_per_node = 1 + static_cast<int>(rng.NextUint64(3));

  const int horizon = 5 + static_cast<int>(rng.NextUint64(4));
  std::vector<double> load;
  double level = 80.0 + rng.NextDouble() * 200.0;
  for (int t = 0; t <= horizon; ++t) {
    // Random walk with occasional jumps.
    level = std::max(20.0, level + rng.NextDouble(-80.0, 80.0));
    if (rng.NextBool(0.2)) level += rng.NextDouble(0.0, 150.0);
    load.push_back(level);
  }
  const int initial = 1 + static_cast<int>(rng.NextUint64(4));

  const DpPlanner dp(params);
  const BruteForcePlanner brute(params);
  StatusOr<PlanResult> dp_plan = dp.BestMoves(load, NodeCount(initial));
  StatusOr<PlanResult> bf_plan =
      brute.BestMoves(load, NodeCount(initial));
  ASSERT_EQ(dp_plan.ok(), bf_plan.ok());
  if (!dp_plan.ok()) return;
  EXPECT_EQ(dp_plan->final_nodes, bf_plan->final_nodes);
  EXPECT_NEAR(dp_plan->total_cost, bf_plan->total_cost, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerFuzz,
                         ::testing::Range<uint64_t>(1, 41));

// ---- Random schedules at larger scale ---------------------------------------

class ScheduleFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScheduleFuzz, RandomPairsUpTo40Validate) {
  Rng rng(GetParam() * 104729 + 17);
  for (int i = 0; i < 20; ++i) {
    const int before = 1 + static_cast<int>(rng.NextUint64(40));
    int after;
    do {
      after = 1 + static_cast<int>(rng.NextUint64(40));
    } while (after == before);
    StatusOr<MigrationSchedule> schedule =
        BuildMigrationSchedule(NodeCount(before), NodeCount(after));
    ASSERT_TRUE(schedule.ok()) << before << "->" << after;
    ASSERT_TRUE(ValidateSchedule(*schedule).ok()) << before << "->" << after;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleFuzz,
                         ::testing::Range<uint64_t>(1, 7));

// ---- Balancer + migration churn ----------------------------------------------

TEST(BalancerMigrationInterplayTest, ConcurrentChurnPreservesData) {
  // A skewed YCSB workload with the balancer active while reconfigs
  // fire every ~20 s: the balancer must stay out of migration's way and
  // all rows must survive.
  ClusterOptions cluster_options;
  cluster_options.partitions_per_node = 3;
  cluster_options.max_nodes = 6;
  cluster_options.initial_nodes = 2;
  cluster_options.num_buckets = 300;
  Cluster cluster(cluster_options);
  MetricsCollector metrics(1.0);
  TxnExecutor executor(&cluster, &metrics, ExecutorOptions{});
  PSTORE_CHECK_OK(ycsb::Workload::RegisterProcedures(&executor));
  ycsb::YcsbWorkloadOptions workload_options;
  workload_options.record_count = 20000;
  workload_options.zipf_theta = 1.0;
  workload_options.mix = ycsb::Mix::kC;  // read-only: row count stable
  ycsb::Workload workload(workload_options);
  PSTORE_CHECK_OK(workload.LoadInitialData(&cluster));
  const int64_t rows = cluster.TotalRowCount();
  const int64_t bytes = cluster.TotalDataBytes();

  EventLoop loop;
  MigrationOptions migration_options;
  migration_options.net_rate_bytes_per_sec = 2e6;
  migration_options.chunk_spacing_seconds = 0.05;
  migration_options.chunk_bytes = 128 * 1024;
  MigrationManager migration(&loop, &cluster, &metrics, migration_options);
  LoadBalancerOptions balancer_options;
  balancer_options.slot_sim_seconds = 1.0;
  balancer_options.sample_slots = 5;
  HotSpotBalancer balancer(&loop, &cluster, &migration, balancer_options);
  balancer.Start();

  TimeSeries flat(1.0, std::vector<double>(200, 200.0));
  DriverOptions driver_options;
  driver_options.slot_sim_seconds = 1.0;
  driver_options.rate_factor = 1.0;
  WorkloadDriver driver(
      &loop, &executor, flat,
      [&workload](Rng& rng) { return workload.NextTransaction(rng); },
      driver_options);
  driver.Start(200 * kSecond);

  const int targets[] = {4, 3, 5, 2, 6, 2, 4, 3};
  for (int i = 0; i < 8; ++i) {
    loop.RunUntil((25 * (i + 1)) * kSecond);
    if (!migration.InProgress() &&
        targets[i] != cluster.active_nodes()) {
      ASSERT_TRUE(
          migration.StartReconfiguration(NodeCount(targets[i]), 1.0, nullptr).ok());
    }
  }
  // The balancer re-arms its tick forever, so run to a bound (generous
  // enough for the last migration to finish) instead of to completion.
  loop.RunUntil(600 * kSecond);
  ASSERT_FALSE(migration.InProgress());

  EXPECT_EQ(cluster.TotalRowCount(), rows);
  EXPECT_EQ(cluster.TotalDataBytes(), bytes);
  // Spot-check routing integrity.
  for (uint64_t i = 0; i < 20000; i += 371) {
    const uint64_t key = ycsb::UserKey(i);
    const BucketId bucket = cluster.BucketForKey(key);
    ASSERT_NE(cluster.partition(cluster.PartitionOfBucket(bucket))
                  .Get(bucket, ycsb::kUserTable, key),
              nullptr);
  }
}

}  // namespace
}  // namespace pstore
