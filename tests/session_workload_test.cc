#include "b2w/session_workload.h"

#include <gtest/gtest.h>

#include <map>

#include "b2w/procedures.h"
#include "b2w/workload.h"
#include "common/logging.h"
#include "common/rng.h"
#include "engine/cluster.h"
#include "engine/metrics.h"
#include "engine/transaction.h"
#include "engine/txn_executor.h"

namespace pstore {
namespace b2w {
namespace {

ClusterOptions SmallCluster() {
  ClusterOptions options;
  options.partitions_per_node = 2;
  options.max_nodes = 2;
  options.initial_nodes = 2;
  options.num_buckets = 256;
  return options;
}

SessionWorkloadOptions SmallOptions() {
  SessionWorkloadOptions options;
  options.cart_pool = 20000;
  options.checkout_pool = 8000;
  options.max_sessions = 2000;
  return options;
}

struct RunResult {
  std::map<ProcedureId, TxnExecutor::ProcedureStats> stats;
  int64_t committed = 0;
  int64_t aborted = 0;
};

RunResult RunSessions(SessionWorkload* workload, Cluster* cluster,
                      int transactions) {
  ExecutorOptions exec_options;
  exec_options.mean_service_seconds = 1e-6;
  TxnExecutor executor(cluster, nullptr, exec_options);
  PSTORE_CHECK_OK(RegisterProcedures(&executor));
  Rng rng(9);
  for (int i = 0; i < transactions; ++i) {
    executor.Submit(workload->NextTransaction(rng), i * 10);
  }
  RunResult result;
  for (ProcedureId id = 0; id < kNumProcedures; ++id) {
    result.stats[id] = executor.procedure_stats(id);
  }
  result.committed = executor.committed_count();
  result.aborted = executor.aborted_count();
  return result;
}

TEST(SessionWorkloadTest, LoadsPools) {
  Cluster cluster(SmallCluster());
  SessionWorkload workload(SmallOptions());
  ASSERT_TRUE(workload.LoadInitialData(&cluster).ok());
  EXPECT_EQ(cluster.TotalRowCount(), 20000 + 8000);
}

TEST(SessionWorkloadTest, FunnelOrderingEliminatesCheckoutAborts) {
  // The i.i.d. mix aborts ~13% of AddLineToCheckout calls (operating on
  // entities in random order); the session funnel creates the checkout
  // before adding lines, so those aborts vanish.
  Cluster cluster(SmallCluster());
  SessionWorkload workload(SmallOptions());
  ASSERT_TRUE(workload.LoadInitialData(&cluster).ok());
  const RunResult result = RunSessions(&workload, &cluster, 200000);

  const auto& add_line = result.stats.at(kAddLineToCheckout);
  ASSERT_GT(add_line.committed, 1000);
  EXPECT_EQ(add_line.aborted, 0);
  const auto& payment = result.stats.at(kCreateCheckoutPayment);
  ASSERT_GT(payment.committed, 500);
  EXPECT_EQ(payment.aborted, 0);
  // Overall abort rate: only genuine pool-recycling races remain.
  EXPECT_LT(static_cast<double>(result.aborted) /
                static_cast<double>(result.committed + result.aborted),
            0.02);
}

TEST(SessionWorkloadTest, SessionAccountingBalances) {
  Cluster cluster(SmallCluster());
  SessionWorkload workload(SmallOptions());
  ASSERT_TRUE(workload.LoadInitialData(&cluster).ok());
  (void)RunSessions(&workload, &cluster, 100000);
  EXPECT_EQ(workload.sessions_started(),
            workload.sessions_checked_out() +
                workload.sessions_abandoned() +
                static_cast<int64_t>(workload.active_sessions()));
  EXPECT_GT(workload.sessions_checked_out(), 0);
  EXPECT_GT(workload.sessions_abandoned(), 0);
}

TEST(SessionWorkloadTest, SessionsBoundedByMax) {
  Cluster cluster(SmallCluster());
  SessionWorkloadOptions options = SmallOptions();
  options.max_sessions = 50;
  options.new_session_probability = 1.0;  // always try to start
  options.abandon_probability = 0.0;
  options.checkout_probability = 0.0;  // never finish
  SessionWorkload workload(options);
  ASSERT_TRUE(workload.LoadInitialData(&cluster).ok());
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    (void)workload.NextTransaction(rng);
  }
  EXPECT_EQ(workload.active_sessions(), 50u);
}

TEST(SessionWorkloadTest, DatabaseSizeStaysBounded) {
  Cluster cluster(SmallCluster());
  SessionWorkload workload(SmallOptions());
  ASSERT_TRUE(workload.LoadInitialData(&cluster).ok());
  const int64_t initial = cluster.TotalDataBytes();
  (void)RunSessions(&workload, &cluster, 300000);
  const double growth = static_cast<double>(cluster.TotalDataBytes()) /
                        static_cast<double>(initial);
  EXPECT_LT(growth, 1.5);
  // The session model deletes carts at checkout/abandonment, so the
  // database settles at its session-driven steady state (active carts +
  // the checkout pool) — smaller than the pre-loaded pool, but bounded.
  EXPECT_GT(growth, 0.15);
}

TEST(SessionWorkloadTest, CheckoutConversionRateSane) {
  Cluster cluster(SmallCluster());
  SessionWorkloadOptions options = SmallOptions();
  options.abandon_probability = 0.03;
  options.checkout_probability = 0.12;
  SessionWorkload workload(options);
  ASSERT_TRUE(workload.LoadInitialData(&cluster).ok());
  (void)RunSessions(&workload, &cluster, 200000);
  const double finished = static_cast<double>(
      workload.sessions_checked_out() + workload.sessions_abandoned());
  ASSERT_GT(finished, 100);
  const double conversion =
      static_cast<double>(workload.sessions_checked_out()) / finished;
  // Per-step checkout odds 0.12 vs abandon 0.03: ~80% convert.
  EXPECT_GT(conversion, 0.6);
  EXPECT_LT(conversion, 0.95);
}

}  // namespace
}  // namespace b2w
}  // namespace pstore
