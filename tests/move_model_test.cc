#include "planner/move_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "common/strong_id.h"
#include "planner/move_model_table.h"

namespace pstore {
namespace {

// Int-accepting shims over the strongly-typed move-model API so the
// table-driven cases below stay terse. The third MaxParallelTransfers
// argument is the partitions-per-node count, as in Eq. 2.
int MaxParallelTransfers(int before, int after, int partitions) {
  PlannerParams params;
  params.partitions_per_node = partitions;
  return pstore::MaxParallelTransfers(NodeCount(before), NodeCount(after),
                                      params);
}

double MoveTime(int before, int after, const PlannerParams& params) {
  return pstore::MoveTime(NodeCount(before), NodeCount(after), params);
}

double Capacity(int nodes, const PlannerParams& params) {
  return pstore::Capacity(NodeCount(nodes), params);
}

double EffectiveCapacity(int before, int after, double fraction,
                         const PlannerParams& params) {
  return pstore::EffectiveCapacity(NodeCount(before), NodeCount(after),
                                   fraction, params);
}

double AvgMachinesAllocated(int before, int after) {
  return pstore::AvgMachinesAllocated(NodeCount(before), NodeCount(after));
}

int MachinesAllocatedAt(int before, int after, double f) {
  return pstore::MachinesAllocatedAt(NodeCount(before), NodeCount(after), f)
      .value();
}

double MoveCost(int before, int after, const PlannerParams& params) {
  return pstore::MoveCost(NodeCount(before), NodeCount(after), params);
}

PlannerParams UnitParams() {
  PlannerParams params;
  params.target_rate_per_node = 1.0;
  params.max_rate_per_node = 1.2;
  params.d_slots = 1.0;  // D = 1 for easy arithmetic
  params.partitions_per_node = 1;
  return params;
}

// ---- Eq. 2: max parallel transfers ------------------------------------------

TEST(MaxParallelTest, NoMoveNoTransfers) {
  EXPECT_EQ(MaxParallelTransfers(3, 3, 1), 0);
}

TEST(MaxParallelTest, ScaleOutSmallDelta) {
  // B < A, delta <= B: limited by the receivers.
  EXPECT_EQ(MaxParallelTransfers(3, 5, 1), 2);
}

TEST(MaxParallelTest, ScaleOutLargeDelta) {
  // Delta > B: limited by the senders.
  EXPECT_EQ(MaxParallelTransfers(3, 14, 1), 3);
}

TEST(MaxParallelTest, ScaleInMirrors) {
  EXPECT_EQ(MaxParallelTransfers(5, 3, 1), 2);
  EXPECT_EQ(MaxParallelTransfers(14, 3, 1), 3);
}

TEST(MaxParallelTest, PartitionsMultiply) {
  EXPECT_EQ(MaxParallelTransfers(3, 14, 6), 18);
}

// ---- Eq. 3: move time ---------------------------------------------------------

TEST(MoveTimeTest, PaperExamples) {
  // Fig. 4 examples with D = 1, P = 1.
  const PlannerParams params = UnitParams();
  // 3 -> 5: (D/2) * (1 - 3/5) = 0.2 D.
  EXPECT_NEAR(MoveTime(3, 5, params), 0.2, 1e-12);
  // 3 -> 9: (D/3) * (1 - 3/9) = 2/9 D.
  EXPECT_NEAR(MoveTime(3, 9, params), 2.0 / 9.0, 1e-12);
  // 3 -> 14: (D/3) * (1 - 3/14) = 11/42 D.
  EXPECT_NEAR(MoveTime(3, 14, params), 11.0 / 42.0, 1e-12);
}

TEST(MoveTimeTest, ZeroWhenNoChange) {
  EXPECT_EQ(MoveTime(4, 4, UnitParams()), 0.0);
}

TEST(MoveTimeTest, SymmetricInDirection) {
  const PlannerParams params = UnitParams();
  for (int a = 1; a <= 12; ++a) {
    for (int b = 1; b <= 12; ++b) {
      EXPECT_NEAR(MoveTime(a, b, params), MoveTime(b, a, params), 1e-12)
          << a << "<->" << b;
    }
  }
}

TEST(MoveTimeTest, MorePartitionsAreFaster) {
  PlannerParams params = UnitParams();
  const double p1 = MoveTime(3, 9, params);
  params.partitions_per_node = 6;
  EXPECT_NEAR(MoveTime(3, 9, params), p1 / 6.0, 1e-12);
}

// ---- Eq. 5 and Eq. 7: capacity -------------------------------------------------

TEST(CapacityTest, LinearInNodes) {
  PlannerParams params = UnitParams();
  params.target_rate_per_node = 285.0;
  EXPECT_EQ(Capacity(4, params), 1140.0);
  EXPECT_EQ(Capacity(0, params), 0.0);
}

TEST(EffectiveCapacityTest, EndpointsMatchStaticCapacity) {
  const PlannerParams params = UnitParams();
  for (int b = 1; b <= 10; ++b) {
    for (int a = 1; a <= 10; ++a) {
      EXPECT_NEAR(EffectiveCapacity(b, a, 0.0, params), Capacity(b, params),
                  1e-9)
          << b << "->" << a;
      EXPECT_NEAR(EffectiveCapacity(b, a, 1.0, params), Capacity(a, params),
                  1e-9)
          << b << "->" << a;
    }
  }
}

TEST(EffectiveCapacityTest, MonotoneDuringScaleOut) {
  const PlannerParams params = UnitParams();
  double prev = 0.0;
  for (double f = 0.0; f <= 1.0; f += 0.05) {
    const double cap = EffectiveCapacity(3, 14, f, params);
    EXPECT_GE(cap, prev);
    prev = cap;
  }
}

TEST(EffectiveCapacityTest, MonotoneDecreasingDuringScaleIn) {
  const PlannerParams params = UnitParams();
  double prev = 1e18;
  for (double f = 0.0; f <= 1.0; f += 0.05) {
    const double cap = EffectiveCapacity(14, 3, f, params);
    EXPECT_LE(cap, prev);
    prev = cap;
  }
}

TEST(EffectiveCapacityTest, HalfwayValueScaleOut) {
  // 2 -> 4, f = 0.5: share = 1/2 - 0.5*(1/2 - 1/4) = 3/8; eff-cap = 8/3 Q.
  const PlannerParams params = UnitParams();
  EXPECT_NEAR(EffectiveCapacity(2, 4, 0.5, params), 8.0 / 3.0, 1e-12);
}

TEST(EffectiveCapacityTest, BelowAllocatedMachineCountDuringBigMove) {
  // Fig. 4c's point: effective capacity lags the allocated machines.
  const PlannerParams params = UnitParams();
  const double f = 0.5;
  const double eff = EffectiveCapacity(3, 14, f, params);
  const int allocated = MachinesAllocatedAt(3, 14, f);
  EXPECT_LT(eff, Capacity(allocated, params));
}

// ---- Algorithm 4: average machines allocated --------------------------------

TEST(AvgMachinesTest, NoMove) {
  EXPECT_EQ(AvgMachinesAllocated(5, 5), 5.0);
}

TEST(AvgMachinesTest, CaseOneAllAtOnce) {
  // s >= delta: all machines allocated for the whole move.
  EXPECT_EQ(AvgMachinesAllocated(3, 5), 5.0);
  EXPECT_EQ(AvgMachinesAllocated(5, 3), 5.0);
  EXPECT_EQ(AvgMachinesAllocated(4, 8), 8.0);  // delta == s
}

TEST(AvgMachinesTest, CaseTwoMultiple) {
  // 3 -> 9: (2s + l)/2 = (6 + 9)/2 = 7.5.
  EXPECT_EQ(AvgMachinesAllocated(3, 9), 7.5);
  EXPECT_EQ(AvgMachinesAllocated(9, 3), 7.5);
}

TEST(AvgMachinesTest, CaseThreePaperExample) {
  // 3 -> 14 (Table 1): phases of 6+2+3 rounds with 7.5/12/14 machines:
  // (6*7.5 + 2*12 + 3*14)/11 = 111/11.
  EXPECT_NEAR(AvgMachinesAllocated(3, 14), 111.0 / 11.0, 1e-12);
  EXPECT_NEAR(AvgMachinesAllocated(14, 3), 111.0 / 11.0, 1e-12);
}

TEST(AvgMachinesTest, AlwaysBetweenSmallerAndLarger) {
  for (int b = 1; b <= 16; ++b) {
    for (int a = 1; a <= 16; ++a) {
      const double avg = AvgMachinesAllocated(b, a);
      EXPECT_GE(avg, std::min(a, b)) << b << "->" << a;
      EXPECT_LE(avg, std::max(a, b)) << b << "->" << a;
    }
  }
}

// Property: Algorithm 4 must equal the time-integral of the allocation
// profile MachinesAllocatedAt.
class AvgProfileConsistency
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AvgProfileConsistency, AverageMatchesProfileIntegral) {
  const auto [b, a] = GetParam();
  const int steps = 200000;
  double sum = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double f = (static_cast<double>(i) + 0.5) / steps;
    sum += MachinesAllocatedAt(b, a, f);
  }
  EXPECT_NEAR(sum / steps, AvgMachinesAllocated(b, a), 0.01)
      << b << "->" << a;
}

INSTANTIATE_TEST_SUITE_P(
    ManyShapes, AvgProfileConsistency,
    ::testing::Values(std::make_tuple(3, 5), std::make_tuple(3, 9),
                      std::make_tuple(3, 14), std::make_tuple(14, 3),
                      std::make_tuple(1, 2), std::make_tuple(2, 7),
                      std::make_tuple(4, 18), std::make_tuple(18, 4),
                      std::make_tuple(5, 6), std::make_tuple(10, 1),
                      std::make_tuple(7, 19), std::make_tuple(6, 13)));

TEST(MachinesAllocatedAtTest, ScaleOutStepsUpward) {
  int prev = 0;
  for (double f = 0.0; f < 1.0; f += 0.01) {
    const int m = MachinesAllocatedAt(3, 14, f);
    EXPECT_GE(m, prev);
    EXPECT_GE(m, 3);
    EXPECT_LE(m, 14);
    prev = m;
  }
}

TEST(MachinesAllocatedAtTest, ScaleInIsTimeReverseOfScaleOut) {
  for (double f = 0.005; f <= 1.0; f += 0.01) {
    EXPECT_EQ(MachinesAllocatedAt(14, 3, f),
              MachinesAllocatedAt(3, 14, 1.0 - f));
  }
}

TEST(MachinesAllocatedAtTest, CaseThreePhaseBoundaries) {
  // 3 -> 14: phase 1 = [0, 6/11) with 6 then 9 machines; phase 2 =
  // [6/11, 8/11) with 12; phase 3 = [8/11, 1) with 14.
  EXPECT_EQ(MachinesAllocatedAt(3, 14, 0.0), 6);
  EXPECT_EQ(MachinesAllocatedAt(3, 14, 0.26), 6);   // < 3/11
  EXPECT_EQ(MachinesAllocatedAt(3, 14, 0.30), 9);   // in [3/11, 6/11)
  EXPECT_EQ(MachinesAllocatedAt(3, 14, 0.60), 12);  // in [6/11, 8/11)
  EXPECT_EQ(MachinesAllocatedAt(3, 14, 0.80), 14);  // >= 8/11
}

// ---- Eq. 4: move cost -----------------------------------------------------------

TEST(MoveCostTest, ZeroForNoMove) {
  EXPECT_EQ(MoveCost(5, 5, UnitParams()), 0.0);
}

TEST(MoveCostTest, ProductOfTimeAndAverage) {
  const PlannerParams params = UnitParams();
  EXPECT_NEAR(MoveCost(3, 14, params), (11.0 / 42.0) * (111.0 / 11.0),
              1e-12);
}

TEST(MoveCostTest, ScalesWithD) {
  PlannerParams params = UnitParams();
  const double c1 = MoveCost(3, 9, params);
  params.d_slots = 10.0;
  EXPECT_NEAR(MoveCost(3, 9, params), 10.0 * c1, 1e-9);
}

// ---- Precomputed table ------------------------------------------------------

// The table contract: lookups are *bit-identical* to calling the move
// model directly, over the entire (B, A) grid. EXPECT_EQ on doubles is
// deliberate — the table must cache, never re-derive.
TEST(MoveModelTableTest, MatchesDirectComputationOverFullGrid) {
  for (const double d_slots : {1.0, 4.0, 12.833}) {
    for (const int partitions : {1, 6}) {
      PlannerParams params = UnitParams();
      params.d_slots = d_slots;
      params.partitions_per_node = partitions;
      constexpr int kMaxNodes = 24;
      const MoveModelTable table(params, NodeCount(kMaxNodes));
      EXPECT_EQ(table.max_nodes(), kMaxNodes);
      for (int before = 1; before <= kMaxNodes; ++before) {
        for (int after = 1; after <= kMaxNodes; ++after) {
          ASSERT_TRUE(table.Covers(NodeCount(before), NodeCount(after)));
          EXPECT_EQ(table.MoveTime(NodeCount(before), NodeCount(after)),
                    MoveTime(before, after, params))
              << "T(" << before << "," << after << ") d=" << d_slots
              << " p=" << partitions;
          EXPECT_EQ(table.MoveCost(NodeCount(before), NodeCount(after)),
                    MoveCost(before, after, params))
              << "C(" << before << "," << after << ") d=" << d_slots
              << " p=" << partitions;
          EXPECT_EQ(
              table.AvgMachinesAllocated(NodeCount(before), NodeCount(after)),
              AvgMachinesAllocated(before, after))
              << "avg(" << before << "," << after << ")";
        }
      }
    }
  }
}

TEST(MoveModelTableTest, CoversOnlyTheGrid) {
  const MoveModelTable table(UnitParams(), NodeCount(8));
  EXPECT_TRUE(table.Covers(NodeCount(1), NodeCount(1)));
  EXPECT_TRUE(table.Covers(NodeCount(8), NodeCount(8)));
  EXPECT_FALSE(table.Covers(NodeCount(0), NodeCount(4)));
  EXPECT_FALSE(table.Covers(NodeCount(9), NodeCount(4)));
  EXPECT_FALSE(table.Covers(NodeCount(4), NodeCount(9)));
}

TEST(MoveModelTableTest, MatchesParamsChecksOnlyTheFieldsItReads) {
  PlannerParams params = UnitParams();
  const MoveModelTable table(params, NodeCount(4));
  EXPECT_TRUE(table.MatchesParams(params));
  // Fields the move-time/cost functions never read may differ.
  PlannerParams rates = params;
  rates.target_rate_per_node = 999.0;
  rates.max_rate_per_node = 1234.0;
  EXPECT_TRUE(table.MatchesParams(rates));
  PlannerParams other_d = params;
  other_d.d_slots = params.d_slots + 1.0;
  EXPECT_FALSE(table.MatchesParams(other_d));
  PlannerParams other_p = params;
  other_p.partitions_per_node = params.partitions_per_node + 1;
  EXPECT_FALSE(table.MatchesParams(other_p));
}

}  // namespace
}  // namespace pstore
