// Tests for the cross-TU symbol index and call graph: qualified-name
// resolution through namespaces and classes, overload-set granularity,
// call-edge resolution (including virtual calls resolving to every
// class providing the method), reachability, mention counting, and the
// determinism contract that a parallel build equals the serial one.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/project.h"
#include "analysis/source_file.h"
#include "analysis/symbol_graph.h"
#include "analysis/token_cache.h"
#include "common/thread_pool.h"

namespace pstore {
namespace analysis {
namespace {

SourceFile Make(const std::string& path, const std::string& body) {
  return SourceFile::FromContents(path, body);
}

// A small two-directory project exercising namespaces, classes,
// out-of-line definitions, overloads, and cross-file calls.
Project FixtureProject() {
  Project project;
  project.AddFile(Make("src/engine/widget.h",
                       "namespace pstore {\n"
                       "class Widget {\n"
                       " public:\n"
                       "  void Tick();\n"
                       "  int Count(int base) const;\n"
                       "  int Count(int base, int extra) const;\n"
                       " private:\n"
                       "  int ticks_ = 0;\n"
                       "};\n"
                       "int FreeHelper(int x);\n"
                       "}  // namespace pstore\n"));
  project.AddFile(Make("src/engine/widget.cc",
                       "#include \"engine/widget.h\"\n"
                       "namespace pstore {\n"
                       "void Widget::Tick() {\n"
                       "  ticks_ += Count(1);\n"
                       "}\n"
                       "int Widget::Count(int base) const {\n"
                       "  return Count(base, 0);\n"
                       "}\n"
                       "int Widget::Count(int base, int extra) const {\n"
                       "  return base + extra + ticks_;\n"
                       "}\n"
                       "int FreeHelper(int x) { return x + 1; }\n"
                       "}  // namespace pstore\n"));
  project.AddFile(Make("src/planner/driver.cc",
                       "#include \"engine/widget.h\"\n"
                       "namespace pstore {\n"
                       "int DrivePlan(Widget* w) {\n"
                       "  w->Tick();\n"
                       "  return FreeHelper(2);\n"
                       "}\n"
                       "}  // namespace pstore\n"));
  return project;
}

TEST(SymbolGraphTest, QualifiedNameResolution) {
  Project project = FixtureProject();
  TokenCache cache(project);
  SymbolGraph graph(project, cache);

  // Exact lookup through namespace and class.
  const size_t tick = graph.FindFunction("pstore::Widget::Tick");
  ASSERT_NE(tick, SymbolGraph::kNoSymbol);
  const FunctionSymbol& tick_symbol = graph.functions()[tick];
  EXPECT_EQ(tick_symbol.name, "Tick");
  EXPECT_EQ(tick_symbol.class_name, "Widget");
  ASSERT_EQ(tick_symbol.declarations.size(), 1u);
  EXPECT_EQ(tick_symbol.declarations[0].file, "src/engine/widget.h");
  ASSERT_EQ(tick_symbol.definitions.size(), 1u);
  EXPECT_EQ(tick_symbol.definitions[0].file, "src/engine/widget.cc");
  EXPECT_EQ(tick_symbol.definitions[0].dir, "engine");

  EXPECT_NE(graph.FindFunction("pstore::FreeHelper"),
            SymbolGraph::kNoSymbol);
  EXPECT_EQ(graph.FindFunction("pstore::Nothing"), SymbolGraph::kNoSymbol);

  // Suffix resolution: a bare name matches; a longer path narrows; a
  // component must align on a :: boundary ("ick" must not match Tick).
  EXPECT_EQ(graph.Resolve({"Tick"}).size(), 1u);
  EXPECT_EQ(graph.Resolve({"Widget", "Tick"}).size(), 1u);
  EXPECT_TRUE(graph.Resolve({"ick"}).empty());
  EXPECT_TRUE(graph.Resolve({"Other", "Tick"}).empty());
}

TEST(SymbolGraphTest, OverloadSetGranularity) {
  Project project = FixtureProject();
  TokenCache cache(project);
  SymbolGraph graph(project, cache);

  // Both Count overloads land in ONE FunctionSymbol: two declarations,
  // two definitions, one qualified name.
  const size_t count = graph.FindFunction("pstore::Widget::Count");
  ASSERT_NE(count, SymbolGraph::kNoSymbol);
  const FunctionSymbol& symbol = graph.functions()[count];
  EXPECT_EQ(symbol.declarations.size(), 2u);
  EXPECT_EQ(symbol.definitions.size(), 2u);
  EXPECT_EQ(graph.Resolve({"Count"}).size(), 1u);
}

TEST(SymbolGraphTest, CallEdgesAndReachability) {
  Project project = FixtureProject();
  TokenCache cache(project);
  SymbolGraph graph(project, cache);

  const size_t drive = graph.FindFunction("pstore::DrivePlan");
  const size_t tick = graph.FindFunction("pstore::Widget::Tick");
  const size_t count = graph.FindFunction("pstore::Widget::Count");
  const size_t helper = graph.FindFunction("pstore::FreeHelper");
  ASSERT_NE(drive, SymbolGraph::kNoSymbol);
  ASSERT_NE(tick, SymbolGraph::kNoSymbol);
  ASSERT_NE(count, SymbolGraph::kNoSymbol);
  ASSERT_NE(helper, SymbolGraph::kNoSymbol);

  // DrivePlan -> {Tick, FreeHelper}; Tick -> Count; Count -> Count
  // (the one-arg overload forwards to the two-arg one, same set).
  EXPECT_EQ(graph.callees_of(drive),
            (std::vector<size_t>{
                std::min(tick, helper), std::max(tick, helper)}));
  EXPECT_EQ(graph.callees_of(tick), std::vector<size_t>{count});
  EXPECT_EQ(graph.callers_of(count),
            (std::vector<size_t>{
                std::min(tick, count), std::max(tick, count)}));

  const std::vector<char> reach = graph.ReachableFrom({drive});
  EXPECT_TRUE(reach[drive]);
  EXPECT_TRUE(reach[tick]);
  EXPECT_TRUE(reach[count]);  // transitively via Tick
  EXPECT_TRUE(reach[helper]);
  const std::vector<char> from_tick = graph.ReachableFrom({tick});
  EXPECT_FALSE(from_tick[drive]);
  EXPECT_FALSE(from_tick[helper]);
}

TEST(SymbolGraphTest, VirtualCallResolvesToEveryProvider) {
  Project project;
  project.AddFile(Make("src/sim/policies.h",
                       "namespace pstore {\n"
                       "class PolicyA { public: void Apply(); };\n"
                       "class PolicyB { public: void Apply(); };\n"
                       "}  // namespace pstore\n"));
  project.AddFile(Make("src/sim/run.cc",
                       "#include \"sim/policies.h\"\n"
                       "namespace pstore {\n"
                       "void PolicyA::Apply() {}\n"
                       "void PolicyB::Apply() {}\n"
                       "void RunAll(PolicyA* p) {\n"
                       "  p->Apply();\n"
                       "}\n"
                       "}  // namespace pstore\n"));
  TokenCache cache(project);
  SymbolGraph graph(project, cache);
  // The receiver's static type is not tracked, so the member call
  // resolves to the whole overload set: both Apply providers.
  const size_t run = graph.FindFunction("pstore::RunAll");
  ASSERT_NE(run, SymbolGraph::kNoSymbol);
  EXPECT_EQ(graph.callees_of(run).size(), 2u);
}

TEST(SymbolGraphTest, MentionsCountReferencesOutsideOwnSites) {
  Project project;
  project.AddFile(Make("src/common/hooks.h",
                       "namespace pstore {\n"
                       "void OnFlush();\n"
                       "void Unreferenced();\n"
                       "}  // namespace pstore\n"));
  project.AddFile(Make("src/common/hooks.cc",
                       "#include \"common/hooks.h\"\n"
                       "namespace pstore {\n"
                       "void OnFlush() {}\n"
                       "void Unreferenced() {}\n"
                       "void Register(void (*hook)());\n"
                       "void Install() {\n"
                       "  Register(&OnFlush);\n"
                       "}\n"
                       "}  // namespace pstore\n"));
  TokenCache cache(project);
  SymbolGraph graph(project, cache);
  const size_t flush = graph.FindFunction("pstore::OnFlush");
  const size_t unref = graph.FindFunction("pstore::Unreferenced");
  ASSERT_NE(flush, SymbolGraph::kNoSymbol);
  ASSERT_NE(unref, SymbolGraph::kNoSymbol);
  // The address-of reference counts; declaration and definition lines
  // of the symbol itself do not.
  EXPECT_GT(graph.functions()[flush].mentions, 0);
  EXPECT_EQ(graph.functions()[unref].mentions, 0);
}

TEST(SymbolGraphTest, ParallelBuildMatchesSerial) {
  Project project = FixtureProject();
  // Extra files so the parallel scan actually interleaves.
  for (int i = 0; i < 12; ++i) {
    const std::string n = std::to_string(i);
    project.AddFile(Make("src/common/extra" + n + ".cc",
                         "namespace pstore {\n"
                         "int Extra" + n + "(int x) { return x + " + n +
                             "; }\n"
                         "int UseExtra" + n + "() { return Extra" + n +
                             "(1); }\n"
                         "}  // namespace pstore\n"));
  }
  TokenCache cache(project);
  const SymbolGraph serial(project, cache);
  ThreadPool pool(4);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const SymbolGraph parallel(project, cache, &pool);
    ASSERT_EQ(parallel.functions().size(), serial.functions().size());
    for (size_t i = 0; i < serial.functions().size(); ++i) {
      const FunctionSymbol& a = serial.functions()[i];
      const FunctionSymbol& b = parallel.functions()[i];
      EXPECT_EQ(a.qualified_name, b.qualified_name);
      EXPECT_EQ(a.definitions.size(), b.definitions.size());
      EXPECT_EQ(a.declarations.size(), b.declarations.size());
      EXPECT_EQ(a.mentions, b.mentions);
      EXPECT_EQ(serial.callees_of(i), parallel.callees_of(i));
      EXPECT_EQ(serial.callers_of(i), parallel.callers_of(i));
    }
    ASSERT_EQ(parallel.calls().size(), serial.calls().size());
    for (size_t i = 0; i < serial.calls().size(); ++i) {
      EXPECT_EQ(serial.calls()[i].caller, parallel.calls()[i].caller);
      EXPECT_EQ(serial.calls()[i].callee, parallel.calls()[i].callee);
      EXPECT_EQ(serial.calls()[i].line, parallel.calls()[i].line);
    }
  }
}

}  // namespace
}  // namespace analysis
}  // namespace pstore
