#include "prediction/event_calendar.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/status.h"
#include "common/time_series.h"
#include "prediction/naive_models.h"
#include "prediction/online_predictor.h"

namespace pstore {
namespace {

TEST(EventCalendarTest, EmptyCalendarIsIdentity) {
  EventCalendar calendar;
  EXPECT_EQ(calendar.MultiplierAt(0), 1.0);
  std::vector<double> forecast = {1, 2, 3};
  calendar.ApplyToForecast(0, &forecast);
  EXPECT_EQ(forecast, (std::vector<double>{1, 2, 3}));
}

TEST(EventCalendarTest, RejectsBadEvents) {
  EventCalendar calendar;
  EXPECT_FALSE(calendar.AddEvent({"empty", 10, 10, 2.0}).ok());
  EXPECT_FALSE(calendar.AddEvent({"backwards", 10, 5, 2.0}).ok());
  EXPECT_FALSE(calendar.AddEvent({"nonpositive", 0, 5, 0.0}).ok());
  EXPECT_EQ(calendar.size(), 0u);
}

TEST(EventCalendarTest, MultiplierWithinWindowOnly) {
  EventCalendar calendar;
  ASSERT_TRUE(calendar.AddEvent({"promo", 100, 200, 1.5}).ok());
  EXPECT_EQ(calendar.MultiplierAt(99), 1.0);
  EXPECT_EQ(calendar.MultiplierAt(100), 1.5);
  EXPECT_EQ(calendar.MultiplierAt(199), 1.5);
  EXPECT_EQ(calendar.MultiplierAt(200), 1.0);
}

TEST(EventCalendarTest, OverlappingEventsCompose) {
  EventCalendar calendar;
  ASSERT_TRUE(calendar.AddEvent({"a", 0, 10, 2.0}).ok());
  ASSERT_TRUE(calendar.AddEvent({"b", 5, 15, 3.0}).ok());
  EXPECT_EQ(calendar.MultiplierAt(2), 2.0);
  EXPECT_EQ(calendar.MultiplierAt(7), 6.0);
  EXPECT_EQ(calendar.MultiplierAt(12), 3.0);
}

TEST(EventCalendarTest, ApplyToForecastUsesAbsoluteSlots) {
  EventCalendar calendar;
  ASSERT_TRUE(calendar.AddEvent({"bf", 102, 104, 4.0}).ok());
  std::vector<double> forecast = {10, 10, 10, 10};
  calendar.ApplyToForecast(100, &forecast);
  EXPECT_EQ(forecast, (std::vector<double>{10, 10, 40, 40}));
}

TEST(EventCalendarTest, ExpireDropsPastEvents) {
  EventCalendar calendar;
  ASSERT_TRUE(calendar.AddEvent({"old", 0, 50, 2.0}).ok());
  ASSERT_TRUE(calendar.AddEvent({"new", 100, 150, 2.0}).ok());
  calendar.ExpireBefore(60);
  EXPECT_EQ(calendar.size(), 1u);
  EXPECT_EQ(calendar.events()[0].name, "new");
}

TEST(EventCalendarTest, OnlinePredictorAppliesCalendar) {
  // Flat 100-value history with a LastValue model; a 3x event covering
  // forecast slots 2..3 must show up in the horizon.
  OnlinePredictorOptions options;
  options.inflation = 1.0;
  options.training_window = 10;
  OnlinePredictor online(std::make_unique<LastValuePredictor>(), options);
  TimeSeries history(60.0, std::vector<double>(20, 100.0));
  ASSERT_TRUE(online.Warmup(history).ok());
  // "Now" = slot 20; the event covers absolute slots 22..23.
  ASSERT_TRUE(online.calendar().AddEvent({"promo", 22, 24, 3.0}).ok());
  StatusOr<std::vector<double>> forecast = online.PredictHorizon(5);
  ASSERT_TRUE(forecast.ok());
  EXPECT_NEAR((*forecast)[0], 100.0, 1e-9);  // slot 20
  EXPECT_NEAR((*forecast)[1], 100.0, 1e-9);  // slot 21
  EXPECT_NEAR((*forecast)[2], 300.0, 1e-9);  // slot 22
  EXPECT_NEAR((*forecast)[3], 300.0, 1e-9);  // slot 23
  EXPECT_NEAR((*forecast)[4], 100.0, 1e-9);  // slot 24
}

}  // namespace
}  // namespace pstore
