#!/usr/bin/env python3
"""Self-test for tools/pstore_lint (run under the `lint` ctest label)."""

import importlib.machinery
import importlib.util
import os
import unittest

_LINT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "pstore_lint")
_LOADER = importlib.machinery.SourceFileLoader("pstore_lint", _LINT_PATH)
_SPEC = importlib.util.spec_from_loader("pstore_lint", _LOADER)
lint = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(lint)


class StripTest(unittest.TestCase):
    def test_line_comment(self):
        self.assertEqual(lint.strip_comments_and_strings("int a; // x\nint b;"),
                         "int a; \nint b;")

    def test_block_comment_preserves_lines(self):
        stripped = lint.strip_comments_and_strings("a /* x\ny */ b")
        self.assertEqual(stripped.count("\n"), 1)
        self.assertNotIn("x", stripped)
        self.assertIn("b", stripped)

    def test_string_with_escaped_quote(self):
        stripped = lint.strip_comments_and_strings(
            'auto s = "a \\" rand( b"; rand();')
        self.assertNotIn("a ", stripped)
        # The real call after the literal survives.
        self.assertIn("rand();", stripped)

    def test_unterminated_string_stops_at_newline(self):
        stripped = lint.strip_comments_and_strings('auto s = "oops\nint a;')
        self.assertIn("int a;", stripped)

    def test_raw_string(self):
        stripped = lint.strip_comments_and_strings(
            'auto s = R"(rand( " // not code)"; srand(1);')
        self.assertNotIn("not code", stripped)
        self.assertIn("srand(1);", stripped)

    def test_raw_string_custom_delimiter_and_prefix(self):
        text = 'auto s = u8R"x(body )" still body)x"; int tail = 1;'
        stripped = lint.strip_comments_and_strings(text)
        self.assertNotIn("body", stripped)
        self.assertNotIn("u8R", stripped)
        self.assertIn("int tail = 1;", stripped)

    def test_raw_string_preserves_line_count(self):
        text = 'auto s = R"(line1\nline2\nline3)";\nint after;\n'
        stripped = lint.strip_comments_and_strings(text)
        self.assertEqual(stripped.count("\n"), text.count("\n"))
        self.assertEqual(lint.line_of(stripped, stripped.index("after")), 4)

    def test_identifier_ending_in_r_is_not_a_raw_prefix(self):
        stripped = lint.strip_comments_and_strings('Wrapper"text" tail')
        self.assertIn("Wrapper", stripped)
        self.assertNotIn("text", stripped)

    def test_digit_separator(self):
        stripped = lint.strip_comments_and_strings(
            "int big = 1'000'000; rand();")
        self.assertIn("rand();", stripped)

    def test_char_literal(self):
        stripped = lint.strip_comments_and_strings("char c = '\\''; int d;")
        self.assertIn("int d;", stripped)


class ChecksTest(unittest.TestCase):
    def test_banned_call_flagged(self):
        findings = []
        lint.check_banned_calls("src/sim/x.cc", "int s = rand();", findings)
        self.assertEqual(len(findings), 1)
        self.assertIn("rand", findings[0][2])

    def test_prefixed_call_not_flagged(self):
        findings = []
        lint.check_banned_calls("src/sim/x.cc",
                                "int s = my_rand(); std::time(nullptr);",
                                findings)
        self.assertEqual(findings, [])

    def test_header_guard_mismatch(self):
        findings = []
        lint.check_header_guard("src/planner/move.h",
                                "#ifndef WRONG_GUARD\n#endif\n", findings)
        self.assertEqual(len(findings), 1)
        self.assertIn("PSTORE_PLANNER_MOVE_H_", findings[0][2])

    def test_header_guard_outside_src_uses_full_path(self):
        findings = []
        lint.check_header_guard("bench/bench_util.h",
                                "#ifndef PSTORE_BENCH_BENCH_UTIL_H_\n#endif\n",
                                findings)
        self.assertEqual(findings, [])

    def test_bare_int_param_in_planner_header(self):
        findings = []
        lint.check_bare_int_params("src/planner/api.h",
                                   "void Plan(int num_nodes);", findings)
        self.assertEqual(len(findings), 1)
        self.assertIn("num_nodes", findings[0][2])

    def test_bare_int_param_in_fleet_header(self):
        findings = []
        lint.check_bare_int_params("src/fleet/placement.h",
                                   "void Pack(int machines);", findings)
        self.assertEqual(len(findings), 1)
        self.assertIn("machines", findings[0][2])

    def test_bare_int_param_elsewhere_ignored(self):
        findings = []
        lint.check_bare_int_params("src/common/api.h",
                                   "void Plan(int num_nodes);", findings)
        self.assertEqual(findings, [])


if __name__ == "__main__":
    unittest.main()
