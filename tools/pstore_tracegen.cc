// pstore_tracegen: generate synthetic load traces (B2W-like retail or
// Wikipedia-like pageviews) and write them as CSV for the planner tool,
// notebooks, or external consumers.
//
// Usage:
//   pstore_tracegen --kind=b2w --days=30 --seed=42 --out=trace.csv
//   pstore_tracegen --kind=wikipedia --edition=de --days=56 --out=de.csv
//
// Flags (b2w): --peak (req/min), --trough-fraction, --black-friday=DAY,
//              --promo-probability, --noise, --drift
// Flags (wikipedia): --edition=en|de

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "common/status.h"
#include "common/time_series.h"
#include "trace/b2w_trace_generator.h"
#include "trace/trace_io.h"
#include "trace/wikipedia_trace_generator.h"

using namespace pstore;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  const Status parsed = flags.Parse(argc - 1, argv + 1);
  if (!parsed.ok()) return Fail(parsed.ToString());

  const std::string kind = flags.GetString("kind", "b2w");
  const std::string out = flags.GetString("out", "trace.csv");
  const StatusOr<int64_t> days = flags.GetInt("days", 30);
  const StatusOr<int64_t> seed = flags.GetInt("seed", 42);
  if (!days.ok()) return Fail(days.status().ToString());
  if (!seed.ok()) return Fail(seed.status().ToString());

  TimeSeries trace;
  if (kind == "b2w") {
    B2wTraceOptions options;
    options.days = static_cast<int>(*days);
    options.seed = static_cast<uint64_t>(*seed);
    const StatusOr<double> peak = flags.GetDouble("peak", 22000.0);
    const StatusOr<double> trough =
        flags.GetDouble("trough-fraction", options.trough_fraction);
    const StatusOr<double> noise =
        flags.GetDouble("noise", options.slot_noise_sigma);
    const StatusOr<double> drift =
        flags.GetDouble("drift", options.drift_sigma);
    const StatusOr<double> promo =
        flags.GetDouble("promo-probability", options.promo_probability);
    const StatusOr<int64_t> black_friday = flags.GetInt("black-friday", -1);
    for (const Status& status :
         {peak.status(), trough.status(), noise.status(), drift.status(),
          promo.status(), black_friday.status()}) {
      if (!status.ok()) return Fail(status.ToString());
    }
    options.peak_requests_per_min = *peak;
    options.trough_fraction = *trough;
    options.slot_noise_sigma = *noise;
    options.drift_sigma = *drift;
    options.promo_probability = *promo;
    options.black_friday_day = static_cast<int>(*black_friday);
    trace = GenerateB2wTrace(options);
  } else if (kind == "wikipedia") {
    WikipediaTraceOptions options;
    options.days = static_cast<int>(*days);
    options.seed = static_cast<uint64_t>(*seed);
    const std::string edition = flags.GetString("edition", "en");
    if (edition == "en") {
      options.edition = WikipediaEdition::kEnglish;
    } else if (edition == "de") {
      options.edition = WikipediaEdition::kGerman;
    } else {
      return Fail("unknown --edition (want en or de): " + edition);
    }
    trace = GenerateWikipediaTrace(options);
  } else {
    return Fail("unknown --kind (want b2w or wikipedia): " + kind);
  }

  const Status saved = SaveTraceCsv(trace, out);
  if (!saved.ok()) return Fail(saved.ToString());
  std::printf(
      "wrote %zu slots (%.0f s each) to %s  [min %.0f, mean %.0f, max "
      "%.0f]\n",
      trace.size(), trace.slot_seconds(), out.c_str(), trace.Min(),
      trace.Mean(), trace.Max());
  return 0;
}
