// pstore_chaos: chaos-drill driver for the live engine. Runs the B2W
// workload from a synthetic step trace under a chosen controller while a
// fault schedule (scripted crash and/or seeded-random fault streams)
// plays against the cluster, then reports recovery behaviour: chunk
// retries, failed reconfigurations, controller re-plans, unavailable
// transactions, and SLA violations attributed to fault / migration /
// baseline windows.
//
// Usage:
//   pstore_chaos [--minutes=24] [--controller=pstore|reactive]
//       [--nodes=2] [--base-rate=300] [--peak-rate=800] [--step-minute=12]
//       [--engine-threads=1]  (node-sharded engine: N>1 runs each node's
//                              transactions in parallel, 0 = hardware;
//                              output is bit-identical for any value)
//       [--predictor=oracle]  (pstore controller's forecast model:
//                              "oracle" = perfect hindsight (default), or
//                              any predictor spec — "ar(p=8)",
//                              "last_value", "ensemble(ar,last_value)";
//                              see prediction/predictor_spec.h)
//       [--refit-policy=SPEC] (when to re-fit the online model:
//                              "interval(slots=N)" or
//                              "shift(window=...,threshold=...)"; default
//                              for spec'd predictors is
//                              interval(slots=150), oracle never re-fits)
//   Scripted drill (crash node mid-scale-out):
//       pstore_chaos --crash-node=2 --crash-at=640 --recover-at=700
//   Seeded-random drill (reproducible: same --seed, same stream):
//       pstore_chaos --seed=7 --crash-rate=6 --straggler-rate=4
//       [--degrade-rate=2] [--chunk-abort-rate=12]
//       [--mean-outage=60] (seconds; also --mean-straggler, --mean-degrade)
//
// --controller accepts a comma list ("pstore,reactive"): the same drill
// is then run once per controller, concurrently on --threads N worker
// threads (default: hardware concurrency), with reports printed in
// controller order — identical output for any thread count.
//
// Machine-readable outputs:
//   --trace-out=run.jsonl   structured event trace across the whole
//                           stack (controller, predictor, planner,
//                           migration, faults); render with
//                           pstore_report --trace=run.jsonl (single
//                           controller only: a Tracer is one sink)
//   --bench-json=out.json   headline metrics as a JSON metrics registry

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "b2w/procedures.h"
#include "b2w/workload.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/time_series.h"
#include "controller/predictive_controller.h"
#include "controller/reactive_controller.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/metrics.h"
#include "engine/sharded_loop.h"
#include "engine/txn_executor.h"
#include "engine/workload_driver.h"
#include "fault/fault_injector.h"
#include "fault/fault_schedule.h"
#include "migration/squall_migrator.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "prediction/naive_models.h"
#include "prediction/online_predictor.h"
#include "prediction/predictor.h"
#include "prediction/predictor_spec.h"
#include "prediction/refit_policy.h"
#include "sim/run_spec.h"

using namespace pstore;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

// One drill: the shared run description (label, strategy, kStep
// workload, tracer) plus the engine-side knobs.
struct DrillConfig {
  RunSpec spec;
  int nodes = 2;
  double total_seconds = 0.0;
  std::vector<FaultEvent> faults;
  // Forecast model for the pstore controller: "oracle" (perfect
  // hindsight) or a predictor spec string, plus an optional refit-policy
  // spec. Both are validated in main(), so RunDrill may CHECK them.
  std::string predictor_spec = "oracle";
  std::string refit_policy;
};

// Everything the report prints, snapshotted so drills can run
// concurrently and print afterwards, in order.
struct DrillResult {
  size_t fault_events = 0;
  int64_t submitted = 0;
  int64_t committed = 0;
  int64_t unavailable = 0;
  int64_t reconfigs_completed = 0;
  int64_t reconfigs_failed = 0;
  int64_t chunk_retries = 0;
  int64_t chunks_aborted = 0;
  FaultInjector::Stats fault_stats;
  bool predictive = false;
  int64_t moves_started = 0;
  int64_t move_failures = 0;
  int64_t replans = 0;
  int64_t model_switches = 0;
  int64_t scale_outs = 0;
  int64_t scale_ins = 0;
  double avg_machines = 0.0;
  std::vector<WindowStats> windows;
  SlaAttribution sla;
};

DrillResult RunDrill(const DrillConfig& config) {
  obs::Tracer* tracer = config.spec.tracer;
  const StatusOr<TimeSeries> built = BuildWorkloadTrace(config.spec.workload);
  PSTORE_CHECK_OK(built.status());
  const TimeSeries& trace = *built;
  const double slot_seconds = trace.slot_seconds();

  // Engine: a 10-node-max cluster running B2W, same shape as the
  // controller tests so drills are comparable with known-good behaviour.
  ClusterOptions cluster_options;
  cluster_options.partitions_per_node = 6;
  cluster_options.max_nodes = 10;
  cluster_options.initial_nodes = config.nodes;
  cluster_options.num_buckets = 1200;
  Cluster cluster(cluster_options);
  MetricsCollector metrics(1.0);
  TxnExecutor executor(&cluster, &metrics, ExecutorOptions{});
  PSTORE_CHECK_OK(b2w::RegisterProcedures(&executor));
  b2w::B2wWorkloadOptions workload_options;
  workload_options.cart_pool = 20000;
  workload_options.checkout_pool = 8000;
  b2w::Workload workload(workload_options);
  PSTORE_CHECK_OK(workload.LoadInitialData(&cluster));

  MigrationOptions migration_options;
  migration_options.net_rate_bytes_per_sec = 200e3;
  migration_options.chunk_spacing_seconds = 0.5;
  migration_options.chunk_bytes = 256 * 1024;
  migration_options.extract_rate_bytes_per_sec = 20e6;
  EventLoop loop;
  // Node-sharded data plane (--engine-threads > 1): bit-identical to the
  // serial path, threads only change wall-clock time.
  std::unique_ptr<ShardedEngine> sharded;
  const int engine_threads =
      ResolveThreadCount(config.spec.sim.engine_threads);
  if (engine_threads > 1) {
    sharded = std::make_unique<ShardedEngine>(
        &loop, cluster_options.max_nodes, engine_threads);
    executor.EnableSharding(sharded.get());
    sharded->InstallBarrierHook();
  }
  MigrationManager migration(&loop, &cluster, &metrics, migration_options);
  executor.set_tracer(tracer);
  migration.set_tracer(tracer);

  DriverOptions driver_options;
  driver_options.slot_sim_seconds = slot_seconds;
  driver_options.rate_factor = 1.0;
  driver_options.seed = 21;
  WorkloadDriver driver(
      &loop, &executor, trace,
      [&workload](Rng& rng) { return workload.NextTransaction(rng); },
      driver_options);
  driver.set_tracer(tracer);
  metrics.RecordMachines(0, cluster.active_nodes());

  FaultInjector injector(&loop, &cluster, &metrics,
                         FaultSchedule::Scripted(config.faults));
  injector.set_tracer(tracer);
  migration.set_fault_hook(&injector);
  injector.Arm();

  // Controller under test.
  std::unique_ptr<OnlinePredictor> online;
  std::unique_ptr<PredictiveController> pstore_controller;
  std::unique_ptr<ReactiveController> reactive_controller;
  if (config.spec.strategy == Strategy::kPredictive) {
    const bool use_oracle = config.predictor_spec == "oracle";
    OnlinePredictorOptions predictor_options;
    predictor_options.inflation = 1.1;
    predictor_options.refit_interval = 1u << 30;
    predictor_options.training_window = 10;
    std::unique_ptr<LoadPredictor> model;
    if (use_oracle) {
      model = std::make_unique<OraclePredictor>(trace);
    } else {
      // Real models train on the growing history: period = one day of
      // monitoring slots, max_tau = the fine horizon the controller
      // requests (horizon_plan_slots * plan_slot_factor below).
      PredictorContext context;
      context.period = static_cast<size_t>(86400.0 / slot_seconds + 0.5);
      context.max_tau = 100;
      StatusOr<std::unique_ptr<LoadPredictor>> made =
          MakePredictor(config.predictor_spec, context);
      PSTORE_CHECK_OK(made.status());
      model = std::move(*made);
      predictor_options.training_window = trace.size();
    }
    std::unique_ptr<RefitPolicy> policy;
    if (!config.refit_policy.empty()) {
      StatusOr<std::unique_ptr<RefitPolicy>> parsed_policy =
          ParseRefitPolicy(config.refit_policy);
      PSTORE_CHECK_OK(parsed_policy.status());
      policy = std::move(*parsed_policy);
    } else if (!use_oracle) {
      policy = std::make_unique<IntervalRefitPolicy>(150);
    }
    online = std::make_unique<OnlinePredictor>(
        std::move(model), predictor_options, std::move(policy));
    online->set_tracer(tracer, [&loop] { return loop.now(); });
    if (use_oracle) {
      PSTORE_CHECK_OK(online->Warmup(trace.Slice(0, 1)));
    } else {
      // A spec'd model rarely has enough history at t=0; the online
      // wrapper serves the flat fallback until the refit policy lands a
      // successful fit.
      (void)online->Warmup(trace.Slice(0, 1));
    }
    PredictiveControllerOptions options;
    options.slot_sim_seconds = slot_seconds;
    options.plan_slot_factor = 5;
    options.horizon_plan_slots = 20;
    options.planner_params.target_rate_per_node = 285.0;
    options.planner_params.max_rate_per_node = 350.0;
    options.planner_params.partitions_per_node = 6;
    options.planner_params.d_slots = SingleThreadFullMigrationSeconds(
        cluster.TotalDataBytes(), migration_options) / 30.0;
    pstore_controller = std::make_unique<PredictiveController>(
        &loop, &cluster, &executor, &migration, online.get(), options);
    pstore_controller->set_tracer(tracer);
    pstore_controller->Start();
  } else {
    PSTORE_CHECK(config.spec.strategy == Strategy::kReactive);
    ReactiveControllerOptions options;
    options.slot_sim_seconds = slot_seconds;
    options.planner_params.target_rate_per_node = 285.0;
    options.planner_params.max_rate_per_node = 350.0;
    options.planner_params.partitions_per_node = 6;
    reactive_controller = std::make_unique<ReactiveController>(
        &loop, &cluster, &executor, &migration, options);
    reactive_controller->Start();
  }

  const SimTime end = FromSeconds(config.total_seconds);
  driver.Start(end);
  loop.RunUntil(end);
  if (sharded != nullptr) {
    sharded->Flush();
    executor.FoldShardStats();
  }

  DrillResult result;
  result.fault_events = injector.schedule().events().size();
  result.submitted = executor.submitted_count();
  result.committed = executor.committed_count();
  result.unavailable = executor.unavailable_count();
  result.reconfigs_completed =
      static_cast<int64_t>(migration.reconfigurations_completed());
  result.reconfigs_failed =
      static_cast<int64_t>(migration.reconfigurations_failed());
  result.chunk_retries = migration.chunk_retries().value();
  result.chunks_aborted = migration.chunks_aborted().value();
  result.fault_stats = injector.stats();
  if (pstore_controller != nullptr) {
    result.predictive = true;
    result.moves_started = pstore_controller->reconfigurations_started();
    result.move_failures = pstore_controller->move_failures();
    result.replans = pstore_controller->replans_after_failure();
    result.model_switches = pstore_controller->model_switches();
  } else {
    result.scale_outs = reactive_controller->scale_outs();
    result.scale_ins = reactive_controller->scale_ins();
    result.move_failures = reactive_controller->move_failures();
  }
  result.avg_machines = metrics.AverageMachines(end);
  result.windows = metrics.Finalize(end);
  result.sla = MetricsCollector::AttributeViolations(result.windows);

  if (tracer != nullptr) {
    // One sla.window event per window violating the 500 ms p99 SLA, then
    // the run's headline numbers so the trace is self-describing.
    for (const WindowStats& window : result.windows) {
      if (window.p99_ms <= 500.0) continue;
      PSTORE_TRACE(tracer, ::pstore::obs::TraceCategory::kReport,
                   FromSeconds(window.start_seconds), "sla.window",
                   .With("p50_ms", window.p50_ms)
                       .With("p95_ms", window.p95_ms)
                       .With("p99_ms", window.p99_ms)
                       .With("fault", window.fault)
                       .With("migrating", window.migrating));
    }
    PSTORE_TRACE(tracer, ::pstore::obs::TraceCategory::kReport, end,
                 "run.summary",
                 .With("controller", config.spec.label)
                     .With("submitted", result.submitted)
                     .With("committed", result.committed)
                     .With("unavailable", result.unavailable)
                     .With("chunk_retries", result.chunk_retries)
                     .With("avg_machines", result.avg_machines)
                     .With("sla_p99_violations", result.sla.total.p99));
  }
  return result;
}

void PrintAttribution(const SlaAttribution& sla) {
  std::printf("SLA violations (windows over 500 ms), by attribution:\n");
  std::printf("  %-12s %8s %8s %8s\n", "", "p50", "p95", "p99");
  const auto row = [](const char* name, const SlaViolations& v) {
    std::printf("  %-12s %8lld %8lld %8lld\n", name,
                static_cast<long long>(v.p50), static_cast<long long>(v.p95),
                static_cast<long long>(v.p99));
  };
  row("fault", sla.during_fault);
  row("migration", sla.during_migration);
  row("baseline", sla.baseline);
  row("total", sla.total);
}

void PrintDrill(const DrillConfig& config, const DrillResult& result,
                int64_t minutes) {
  std::printf("Chaos drill: %s controller, %lld min, %zu fault events\n\n",
              config.spec.label.c_str(), static_cast<long long>(minutes),
              result.fault_events);
  std::printf("transactions:         %lld submitted, %lld committed, "
              "%lld unavailable\n",
              static_cast<long long>(result.submitted),
              static_cast<long long>(result.committed),
              static_cast<long long>(result.unavailable));
  std::printf("reconfigurations:     %lld completed, %lld failed\n",
              static_cast<long long>(result.reconfigs_completed),
              static_cast<long long>(result.reconfigs_failed));
  std::printf("chunk retries:        %lld (%lld from injected aborts)\n",
              static_cast<long long>(result.chunk_retries),
              static_cast<long long>(result.chunks_aborted));
  const FaultInjector::Stats& stats = result.fault_stats;
  std::printf("faults applied:       %lld crashes, %lld stragglers, "
              "%lld degradations, %lld/%lld chunk aborts consumed\n",
              static_cast<long long>(stats.crashes),
              static_cast<long long>(stats.stragglers),
              static_cast<long long>(stats.degradations),
              static_cast<long long>(stats.chunk_aborts_consumed),
              static_cast<long long>(stats.chunk_aborts_armed));
  if (result.predictive) {
    std::printf("controller:           %lld moves started, %lld failed, "
                "%lld immediate re-plans, %lld model switches\n",
                static_cast<long long>(result.moves_started),
                static_cast<long long>(result.move_failures),
                static_cast<long long>(result.replans),
                static_cast<long long>(result.model_switches));
  } else {
    std::printf("controller:           %lld scale-outs, %lld scale-ins, "
                "%lld failed moves\n",
                static_cast<long long>(result.scale_outs),
                static_cast<long long>(result.scale_ins),
                static_cast<long long>(result.move_failures));
  }
  std::printf("average machines:     %.2f\n\n", result.avg_machines);
  PrintAttribution(result.sla);
}

std::vector<std::string> SplitCommaList(const std::string& value) {
  std::vector<std::string> parts;
  std::string::size_type begin = 0;
  while (begin <= value.size()) {
    const std::string::size_type comma = value.find(',', begin);
    const std::string::size_type end =
        comma == std::string::npos ? value.size() : comma;
    if (end > begin) parts.push_back(value.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return parts;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  const Status parsed = flags.Parse(argc - 1, argv + 1);
  if (!parsed.ok()) return Fail(parsed.ToString());

  const StatusOr<int64_t> minutes = flags.GetInt("minutes", 24);
  const StatusOr<int64_t> nodes = flags.GetInt("nodes", 2);
  const StatusOr<double> base_rate = flags.GetDouble("base-rate", 300.0);
  const StatusOr<double> peak_rate = flags.GetDouble("peak-rate", 800.0);
  const StatusOr<int64_t> step_minute = flags.GetInt("step-minute", 12);
  const StatusOr<int64_t> crash_node = flags.GetInt("crash-node", -1);
  const StatusOr<double> crash_at = flags.GetDouble("crash-at", 640.0);
  const StatusOr<double> recover_at = flags.GetDouble("recover-at", 700.0);
  const StatusOr<int64_t> seed = flags.GetInt("seed", 0);
  const StatusOr<double> crash_rate = flags.GetDouble("crash-rate", 0.0);
  const StatusOr<double> straggler_rate =
      flags.GetDouble("straggler-rate", 0.0);
  const StatusOr<double> degrade_rate = flags.GetDouble("degrade-rate", 0.0);
  const StatusOr<double> abort_rate = flags.GetDouble("chunk-abort-rate", 0.0);
  const StatusOr<double> mean_outage = flags.GetDouble("mean-outage", 60.0);
  const StatusOr<double> mean_straggler =
      flags.GetDouble("mean-straggler", 45.0);
  const StatusOr<double> mean_degrade = flags.GetDouble("mean-degrade", 90.0);
  const StatusOr<int64_t> threads = flags.GetInt("threads", 0);
  const StatusOr<int64_t> engine_threads = flags.GetInt("engine-threads", 1);
  for (const Status& status :
       {minutes.status(), nodes.status(), base_rate.status(),
        peak_rate.status(), step_minute.status(), crash_node.status(),
        crash_at.status(), recover_at.status(), seed.status(),
        crash_rate.status(), straggler_rate.status(), degrade_rate.status(),
        abort_rate.status(), mean_outage.status(), mean_straggler.status(),
        mean_degrade.status(), threads.status(), engine_threads.status()}) {
    if (!status.ok()) return Fail(status.ToString());
  }
  if (*minutes < 1) return Fail("--minutes must be >= 1");
  if (*nodes < 1 || *nodes > 10) return Fail("--nodes outside [1, 10]");
  const double total_seconds = static_cast<double>(*minutes) * 60.0;

  // Load trace description: base rate stepping to the peak at
  // --step-minute, on 6 s slots (the controller's monitoring
  // granularity). Each drill materializes its own copy.
  const double slot_seconds = 6.0;
  WorkloadSpec workload;
  workload.kind = WorkloadSpec::Kind::kStep;
  workload.step_slot_seconds = slot_seconds;
  workload.step_slots =
      static_cast<size_t>(total_seconds / slot_seconds + 0.5);
  workload.step_at_slot =
      static_cast<size_t>(*step_minute * 60.0 / slot_seconds + 0.5);
  workload.base_rate = *base_rate;
  workload.peak_rate = *peak_rate;

  // Fault schedule: scripted crash window plus optional seeded-random
  // streams, merged into one time-ordered schedule (shared by every
  // drill, so controllers face the identical storm).
  std::vector<FaultEvent> events;
  if (*crash_node >= 0) {
    if (*crash_node >= 10) return Fail("--crash-node outside the cluster");
    FaultEvent crash;
    crash.at = FromSeconds(*crash_at);
    crash.kind = FaultKind::kNodeCrash;
    crash.node = static_cast<int>(*crash_node);
    events.push_back(crash);
    if (*recover_at > *crash_at) {
      FaultEvent recover = crash;
      recover.at = FromSeconds(*recover_at);
      recover.kind = FaultKind::kNodeRecover;
      events.push_back(recover);
    }
  }
  if (*seed != 0) {
    FaultScheduleOptions fault_options;
    fault_options.seed = static_cast<uint64_t>(*seed);
    fault_options.horizon_seconds = total_seconds;
    fault_options.max_node = 9;
    fault_options.crash_rate_per_hour = *crash_rate;
    fault_options.mean_outage_seconds = *mean_outage;
    fault_options.chunk_abort_rate_per_hour = *abort_rate;
    fault_options.straggler_rate_per_hour = *straggler_rate;
    fault_options.mean_straggler_seconds = *mean_straggler;
    fault_options.degrade_rate_per_hour = *degrade_rate;
    fault_options.mean_degrade_seconds = *mean_degrade;
    const FaultSchedule random = FaultSchedule::SeededRandom(fault_options);
    events.insert(events.end(), random.events().begin(),
                  random.events().end());
  }

  // Forecast model + refit policy for pstore drills, validated up front
  // (RunDrill CHECKs, so a typo must fail here with a real message).
  const std::string predictor_spec = flags.GetString("predictor", "oracle");
  if (predictor_spec != "oracle") {
    const StatusOr<PredictorSpec> spec_check =
        ParsePredictorSpec(predictor_spec);
    if (!spec_check.ok()) {
      return Fail("--predictor: " + spec_check.status().ToString());
    }
  }
  const std::string refit_policy = flags.GetString("refit-policy", "");
  if (!refit_policy.empty()) {
    const StatusOr<std::unique_ptr<RefitPolicy>> policy_check =
        ParseRefitPolicy(refit_policy);
    if (!policy_check.ok()) {
      return Fail("--refit-policy: " + policy_check.status().ToString());
    }
  }

  // One drill per requested controller.
  const std::string controller_flag = flags.GetString("controller", "pstore");
  const std::vector<std::string> controller_names =
      SplitCommaList(controller_flag);
  if (controller_names.empty()) return Fail("--controller lists nothing");
  std::vector<DrillConfig> drills;
  for (const std::string& name : controller_names) {
    StatusOr<Strategy> strategy = ParseStrategy(name);
    if (!strategy.ok() || (*strategy != Strategy::kPredictive &&
                           *strategy != Strategy::kReactive)) {
      return Fail("unknown --controller (pstore|reactive): " + name);
    }
    DrillConfig drill;
    drill.spec.label = StrategyName(*strategy);
    drill.spec.strategy = *strategy;
    drill.spec.workload = workload;
    drill.spec.sim.engine_threads = static_cast<int>(*engine_threads);
    drill.nodes = static_cast<int>(*nodes);
    drill.total_seconds = total_seconds;
    drill.faults = events;
    drill.predictor_spec = predictor_spec;
    drill.refit_policy = refit_policy;
    drills.push_back(std::move(drill));
  }

  // Structured run trace (single controller only: a Tracer is one
  // single-threaded sink).
  const std::string trace_out = flags.GetString("trace-out", "");
  obs::Tracer tracer;
  if (!trace_out.empty()) {
    if (drills.size() > 1) {
      return Fail("--trace-out needs a single --controller");
    }
    const Status opened = tracer.OpenJsonl(trace_out);
    if (!opened.ok()) return Fail(opened.ToString());
    drills[0].spec.tracer = &tracer;
  }

  // Run the drills concurrently; results come back by drill index, so
  // the printed reports are in --controller order regardless of the
  // thread count.
  std::vector<DrillResult> results(drills.size());
  {
    ThreadPool pool(ResolveThreadCount(*threads));
    pool.ParallelFor(drills.size(),
                     [&](size_t i) { results[i] = RunDrill(drills[i]); });
  }
  for (size_t i = 0; i < drills.size(); ++i) {
    if (i > 0) std::printf("\n");
    PrintDrill(drills[i], results[i], *minutes);
  }

  if (!trace_out.empty()) {
    const Status closed = tracer.Close();
    if (!closed.ok()) return Fail(closed.ToString());
    std::printf("\nTrace: %lld events -> %s (render with pstore_report "
                "--trace=%s)\n",
                static_cast<long long>(tracer.events_emitted()),
                trace_out.c_str(), trace_out.c_str());
  }

  const std::string bench_json = flags.GetString("bench-json", "");
  if (!bench_json.empty()) {
    obs::MetricsRegistry registry;
    for (size_t i = 0; i < drills.size(); ++i) {
      const DrillResult& result = results[i];
      // Single-controller drills keep the historical metric names;
      // multi-controller runs qualify them per controller.
      const std::string prefix =
          drills.size() == 1 ? "" : drills[i].spec.label + ".";
      registry.GetCounter(prefix + "engine.txn_submitted")
          ->Increment(result.submitted);
      registry.GetCounter(prefix + "engine.txn_committed")
          ->Increment(result.committed);
      registry.GetCounter(prefix + "engine.txn_unavailable")
          ->Increment(result.unavailable);
      registry.GetCounter(prefix + "migration.completed")
          ->Increment(result.reconfigs_completed);
      registry.GetCounter(prefix + "migration.failed")
          ->Increment(result.reconfigs_failed);
      registry.GetCounter(prefix + "migration.chunk_retries")
          ->Increment(result.chunk_retries);
      registry.GetCounter(prefix + "fault.crashes")
          ->Increment(result.fault_stats.crashes);
      registry.GetCounter(prefix + "fault.stragglers")
          ->Increment(result.fault_stats.stragglers);
      registry.GetGauge(prefix + "engine.avg_machines")
          ->Set(result.avg_machines);
      registry.GetCounter(prefix + "sla.p99_violations")
          ->Increment(result.sla.total.p99);
      registry.GetCounter(prefix + "sla.p99_during_fault")
          ->Increment(result.sla.during_fault.p99);
      registry.GetCounter(prefix + "sla.p99_during_migration")
          ->Increment(result.sla.during_migration.p99);
    }
    const Status written = registry.WriteJson(bench_json);
    if (!written.ok()) return Fail(written.ToString());
    std::printf("Metrics: %s\n", bench_json.c_str());
  }
  return 0;
}
