// pstore_chaos: chaos-drill driver for the live engine. Runs the B2W
// workload from a synthetic step trace under a chosen controller while a
// fault schedule (scripted crash and/or seeded-random fault streams)
// plays against the cluster, then reports recovery behaviour: chunk
// retries, failed reconfigurations, controller re-plans, unavailable
// transactions, and SLA violations attributed to fault / migration /
// baseline windows.
//
// Usage:
//   pstore_chaos [--minutes=24] [--controller=pstore|reactive]
//       [--nodes=2] [--base-rate=300] [--peak-rate=800] [--step-minute=12]
//   Scripted drill (crash node mid-scale-out):
//       pstore_chaos --crash-node=2 --crash-at=640 --recover-at=700
//   Seeded-random drill (reproducible: same --seed, same stream):
//       pstore_chaos --seed=7 --crash-rate=6 --straggler-rate=4
//       [--degrade-rate=2] [--chunk-abort-rate=12]
//       [--mean-outage=60] (seconds; also --mean-straggler, --mean-degrade)
//
// Machine-readable outputs:
//   --trace-out=run.jsonl   structured event trace across the whole
//                           stack (controller, predictor, planner,
//                           migration, faults); render with
//                           pstore_report --trace=run.jsonl
//   --bench-json=out.json   headline metrics as a JSON metrics registry

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "b2w/procedures.h"
#include "b2w/workload.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/time_series.h"
#include "controller/predictive_controller.h"
#include "controller/reactive_controller.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/metrics.h"
#include "engine/txn_executor.h"
#include "engine/workload_driver.h"
#include "fault/fault_injector.h"
#include "fault/fault_schedule.h"
#include "migration/squall_migrator.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "prediction/naive_models.h"
#include "prediction/online_predictor.h"

using namespace pstore;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

void PrintAttribution(const SlaAttribution& sla) {
  std::printf("SLA violations (windows over 500 ms), by attribution:\n");
  std::printf("  %-12s %8s %8s %8s\n", "", "p50", "p95", "p99");
  const auto row = [](const char* name, const SlaViolations& v) {
    std::printf("  %-12s %8lld %8lld %8lld\n", name,
                static_cast<long long>(v.p50), static_cast<long long>(v.p95),
                static_cast<long long>(v.p99));
  };
  row("fault", sla.during_fault);
  row("migration", sla.during_migration);
  row("baseline", sla.baseline);
  row("total", sla.total);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  const Status parsed = flags.Parse(argc - 1, argv + 1);
  if (!parsed.ok()) return Fail(parsed.ToString());

  const StatusOr<int64_t> minutes = flags.GetInt("minutes", 24);
  const StatusOr<int64_t> nodes = flags.GetInt("nodes", 2);
  const StatusOr<double> base_rate = flags.GetDouble("base-rate", 300.0);
  const StatusOr<double> peak_rate = flags.GetDouble("peak-rate", 800.0);
  const StatusOr<int64_t> step_minute = flags.GetInt("step-minute", 12);
  const StatusOr<int64_t> crash_node = flags.GetInt("crash-node", -1);
  const StatusOr<double> crash_at = flags.GetDouble("crash-at", 640.0);
  const StatusOr<double> recover_at = flags.GetDouble("recover-at", 700.0);
  const StatusOr<int64_t> seed = flags.GetInt("seed", 0);
  const StatusOr<double> crash_rate = flags.GetDouble("crash-rate", 0.0);
  const StatusOr<double> straggler_rate =
      flags.GetDouble("straggler-rate", 0.0);
  const StatusOr<double> degrade_rate = flags.GetDouble("degrade-rate", 0.0);
  const StatusOr<double> abort_rate = flags.GetDouble("chunk-abort-rate", 0.0);
  const StatusOr<double> mean_outage = flags.GetDouble("mean-outage", 60.0);
  const StatusOr<double> mean_straggler =
      flags.GetDouble("mean-straggler", 45.0);
  const StatusOr<double> mean_degrade = flags.GetDouble("mean-degrade", 90.0);
  for (const Status& status :
       {minutes.status(), nodes.status(), base_rate.status(),
        peak_rate.status(), step_minute.status(), crash_node.status(),
        crash_at.status(), recover_at.status(), seed.status(),
        crash_rate.status(), straggler_rate.status(), degrade_rate.status(),
        abort_rate.status(), mean_outage.status(), mean_straggler.status(),
        mean_degrade.status()}) {
    if (!status.ok()) return Fail(status.ToString());
  }
  if (*minutes < 1) return Fail("--minutes must be >= 1");
  const double total_seconds = static_cast<double>(*minutes) * 60.0;

  // Structured run trace (no-op unless --trace-out is given: components
  // are wired to the tracer, but without a sink every event is skipped).
  const std::string trace_out = flags.GetString("trace-out", "");
  obs::Tracer tracer;
  if (!trace_out.empty()) {
    const Status opened = tracer.OpenJsonl(trace_out);
    if (!opened.ok()) return Fail(opened.ToString());
  }

  // Load trace: base rate stepping to the peak at --step-minute, on 6 s
  // slots (the controller's monitoring granularity).
  const double slot_seconds = 6.0;
  const size_t slots =
      static_cast<size_t>(total_seconds / slot_seconds + 0.5);
  const size_t step_slot =
      static_cast<size_t>(*step_minute * 60.0 / slot_seconds + 0.5);
  TimeSeries trace(slot_seconds);
  for (size_t i = 0; i < slots; ++i) {
    trace.Append(i < step_slot ? *base_rate : *peak_rate);
  }

  // Engine: a 10-node-max cluster running B2W, same shape as the
  // controller tests so drills are comparable with known-good behaviour.
  ClusterOptions cluster_options;
  cluster_options.partitions_per_node = 6;
  cluster_options.max_nodes = 10;
  cluster_options.initial_nodes = static_cast<int>(*nodes);
  cluster_options.num_buckets = 1200;
  if (*nodes < 1 || *nodes > cluster_options.max_nodes) {
    return Fail("--nodes outside [1, 10]");
  }
  Cluster cluster(cluster_options);
  MetricsCollector metrics(1.0);
  TxnExecutor executor(&cluster, &metrics, ExecutorOptions{});
  PSTORE_CHECK_OK(b2w::RegisterProcedures(&executor));
  b2w::WorkloadOptions workload_options;
  workload_options.cart_pool = 20000;
  workload_options.checkout_pool = 8000;
  b2w::Workload workload(workload_options);
  PSTORE_CHECK_OK(workload.LoadInitialData(&cluster));

  MigrationOptions migration_options;
  migration_options.net_rate_bytes_per_sec = 200e3;
  migration_options.chunk_spacing_seconds = 0.5;
  migration_options.chunk_bytes = 256 * 1024;
  migration_options.extract_rate_bytes_per_sec = 20e6;
  EventLoop loop;
  MigrationManager migration(&loop, &cluster, &metrics, migration_options);
  executor.set_tracer(&tracer);
  migration.set_tracer(&tracer);

  DriverOptions driver_options;
  driver_options.slot_sim_seconds = slot_seconds;
  driver_options.rate_factor = 1.0;
  driver_options.seed = 21;
  WorkloadDriver driver(
      &loop, &executor, trace,
      [&workload](Rng& rng) { return workload.NextTransaction(rng); },
      driver_options);
  driver.set_tracer(&tracer);
  metrics.RecordMachines(0, cluster.active_nodes());

  // Fault schedule: scripted crash window plus optional seeded-random
  // streams, merged into one time-ordered schedule.
  std::vector<FaultEvent> events;
  if (*crash_node >= 0) {
    if (*crash_node >= cluster_options.max_nodes) {
      return Fail("--crash-node outside the cluster");
    }
    FaultEvent crash;
    crash.at = FromSeconds(*crash_at);
    crash.kind = FaultKind::kNodeCrash;
    crash.node = static_cast<int>(*crash_node);
    events.push_back(crash);
    if (*recover_at > *crash_at) {
      FaultEvent recover = crash;
      recover.at = FromSeconds(*recover_at);
      recover.kind = FaultKind::kNodeRecover;
      events.push_back(recover);
    }
  }
  if (*seed != 0) {
    FaultScheduleOptions fault_options;
    fault_options.seed = static_cast<uint64_t>(*seed);
    fault_options.horizon_seconds = total_seconds;
    fault_options.max_node = cluster_options.max_nodes - 1;
    fault_options.crash_rate_per_hour = *crash_rate;
    fault_options.mean_outage_seconds = *mean_outage;
    fault_options.chunk_abort_rate_per_hour = *abort_rate;
    fault_options.straggler_rate_per_hour = *straggler_rate;
    fault_options.mean_straggler_seconds = *mean_straggler;
    fault_options.degrade_rate_per_hour = *degrade_rate;
    fault_options.mean_degrade_seconds = *mean_degrade;
    const FaultSchedule random = FaultSchedule::SeededRandom(fault_options);
    events.insert(events.end(), random.events().begin(),
                  random.events().end());
  }
  FaultInjector injector(&loop, &cluster, &metrics,
                         FaultSchedule::Scripted(std::move(events)));
  injector.set_tracer(&tracer);
  migration.set_fault_hook(&injector);
  injector.Arm();

  // Controller under test.
  const std::string controller_name = flags.GetString("controller", "pstore");
  std::unique_ptr<OnlinePredictor> oracle;
  std::unique_ptr<PredictiveController> pstore_controller;
  std::unique_ptr<ReactiveController> reactive_controller;
  if (controller_name == "pstore") {
    OnlinePredictorOptions predictor_options;
    predictor_options.inflation = 1.1;
    predictor_options.refit_interval = 1u << 30;
    predictor_options.training_window = 10;
    oracle = std::make_unique<OnlinePredictor>(
        std::make_unique<OraclePredictor>(trace), predictor_options);
    oracle->set_tracer(&tracer, [&loop] { return loop.now(); });
    PSTORE_CHECK_OK(oracle->Warmup(trace.Slice(0, 1)));
    PredictiveControllerOptions options;
    options.slot_sim_seconds = slot_seconds;
    options.plan_slot_factor = 5;
    options.horizon_plan_slots = 20;
    options.planner_params.target_rate_per_node = 285.0;
    options.planner_params.max_rate_per_node = 350.0;
    options.planner_params.partitions_per_node = 6;
    options.planner_params.d_slots = SingleThreadFullMigrationSeconds(
        cluster.TotalDataBytes(), migration_options) / 30.0;
    pstore_controller = std::make_unique<PredictiveController>(
        &loop, &cluster, &executor, &migration, oracle.get(), options);
    pstore_controller->set_tracer(&tracer);
    pstore_controller->Start();
  } else if (controller_name == "reactive") {
    ReactiveControllerOptions options;
    options.slot_sim_seconds = slot_seconds;
    options.planner_params.target_rate_per_node = 285.0;
    options.planner_params.max_rate_per_node = 350.0;
    options.planner_params.partitions_per_node = 6;
    reactive_controller = std::make_unique<ReactiveController>(
        &loop, &cluster, &executor, &migration, options);
    reactive_controller->Start();
  } else {
    return Fail("unknown --controller (pstore|reactive): " + controller_name);
  }

  const SimTime end = FromSeconds(total_seconds);
  driver.Start(end);
  loop.RunUntil(end);

  std::printf("Chaos drill: %s controller, %lld min, %zu fault events\n\n",
              controller_name.c_str(), static_cast<long long>(*minutes),
              injector.schedule().events().size());
  std::printf("transactions:         %lld submitted, %lld committed, "
              "%lld unavailable\n",
              static_cast<long long>(executor.submitted_count()),
              static_cast<long long>(executor.committed_count()),
              static_cast<long long>(executor.unavailable_count()));
  std::printf("reconfigurations:     %lld completed, %lld failed\n",
              static_cast<long long>(migration.reconfigurations_completed()),
              static_cast<long long>(migration.reconfigurations_failed()));
  std::printf("chunk retries:        %lld (%lld from injected aborts)\n",
              static_cast<long long>(migration.chunk_retries().value()),
              static_cast<long long>(migration.chunks_aborted().value()));
  const FaultInjector::Stats& stats = injector.stats();
  std::printf("faults applied:       %lld crashes, %lld stragglers, "
              "%lld degradations, %lld/%lld chunk aborts consumed\n",
              static_cast<long long>(stats.crashes),
              static_cast<long long>(stats.stragglers),
              static_cast<long long>(stats.degradations),
              static_cast<long long>(stats.chunk_aborts_consumed),
              static_cast<long long>(stats.chunk_aborts_armed));
  if (pstore_controller != nullptr) {
    std::printf("controller:           %lld moves started, %lld failed, "
                "%lld immediate re-plans\n",
                static_cast<long long>(
                    pstore_controller->reconfigurations_started()),
                static_cast<long long>(pstore_controller->move_failures()),
                static_cast<long long>(
                    pstore_controller->replans_after_failure()));
  } else {
    std::printf("controller:           %lld scale-outs, %lld scale-ins, "
                "%lld failed moves\n",
                static_cast<long long>(reactive_controller->scale_outs()),
                static_cast<long long>(reactive_controller->scale_ins()),
                static_cast<long long>(reactive_controller->move_failures()));
  }
  std::printf("average machines:     %.2f\n\n", metrics.AverageMachines(end));

  const std::vector<WindowStats> windows = metrics.Finalize(end);
  const SlaAttribution sla = MetricsCollector::AttributeViolations(windows);
  PrintAttribution(sla);

  if (!trace_out.empty()) {
    // One sla.window event per window violating the 500 ms p99 SLA, then
    // the run's headline numbers so the trace is self-describing.
    for (const WindowStats& window : windows) {
      if (window.p99_ms <= 500.0) continue;
      PSTORE_TRACE(&tracer, ::pstore::obs::TraceCategory::kReport,
                   FromSeconds(window.start_seconds), "sla.window",
                   .With("p50_ms", window.p50_ms)
                       .With("p95_ms", window.p95_ms)
                       .With("p99_ms", window.p99_ms)
                       .With("fault", window.fault)
                       .With("migrating", window.migrating));
    }
    PSTORE_TRACE(&tracer, ::pstore::obs::TraceCategory::kReport, end,
                 "run.summary",
                 .With("controller", controller_name.c_str())
                     .With("submitted", executor.submitted_count())
                     .With("committed", executor.committed_count())
                     .With("unavailable", executor.unavailable_count())
                     .With("chunk_retries", migration.chunk_retries().value())
                     .With("avg_machines", metrics.AverageMachines(end))
                     .With("sla_p99_violations", sla.total.p99));
    const Status closed = tracer.Close();
    if (!closed.ok()) return Fail(closed.ToString());
    std::printf("\nTrace: %lld events -> %s (render with pstore_report "
                "--trace=%s)\n",
                static_cast<long long>(tracer.events_emitted()),
                trace_out.c_str(), trace_out.c_str());
  }

  const std::string bench_json = flags.GetString("bench-json", "");
  if (!bench_json.empty()) {
    obs::MetricsRegistry registry;
    registry.GetCounter("engine.txn_submitted")
        ->Increment(executor.submitted_count());
    registry.GetCounter("engine.txn_committed")
        ->Increment(executor.committed_count());
    registry.GetCounter("engine.txn_unavailable")
        ->Increment(executor.unavailable_count());
    registry.GetCounter("migration.completed")
        ->Increment(migration.reconfigurations_completed());
    registry.GetCounter("migration.failed")
        ->Increment(migration.reconfigurations_failed());
    registry.GetCounter("migration.chunk_retries")
        ->Increment(migration.chunk_retries().value());
    registry.GetCounter("fault.crashes")->Increment(stats.crashes);
    registry.GetCounter("fault.stragglers")->Increment(stats.stragglers);
    registry.GetGauge("engine.avg_machines")->Set(metrics.AverageMachines(end));
    registry.GetCounter("sla.p99_violations")->Increment(sla.total.p99);
    registry.GetCounter("sla.p99_during_fault")
        ->Increment(sla.during_fault.p99);
    registry.GetCounter("sla.p99_during_migration")
        ->Increment(sla.during_migration.p99);
    const Status written = registry.WriteJson(bench_json);
    if (!written.ok()) return Fail(written.ToString());
    std::printf("Metrics: %s\n", bench_json.c_str());
  }
  return 0;
}
