// pstore_analyze: semantic static analysis for the P-Store tree.
//
// Usage: pstore_analyze [--check=<name>[,<name>...]]... [--list-checks]
//                       [--threads=N] [--format=text|json] [PATH ...]
//
// Runs the layering, Status-discipline, include-hygiene,
// nondet-iteration, global-mutable-state, pointer-order, guarded-by,
// lock-order, dead-symbol, and hot-path-perf rule families
// (src/analysis/) over the given files or directories (default: src
// tools bench tests examples, resolved from the current directory).
// Exits 0 when clean, 1 with findings, 2 on usage errors.
//
// --check takes a comma-separated list and may repeat; --list-checks
// prints the catalog. (--rule / --list-rules are accepted as the older
// spellings of the same flags.) --threads=N tokenizes, builds the
// cross-TU symbol graph, and runs the rule families on a thread pool
// (0 = hardware concurrency); output is byte-identical to a serial
// run. --format=json emits a canonical JSON array for CI diffing.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/check.h"
#include "analysis/project.h"
#include "common/flags.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: pstore_analyze [--check=<name>[,<name>...]]... "
               "[--list-checks] [--threads=N] [--format=text|json] "
               "[PATH ...]\n");
  return 2;
}

// Splits one --check value on commas; --check=lock-order,dead-symbol
// and repeated --check flags are equivalent.
std::vector<std::string> SplitCommaList(const std::vector<std::string>& raw) {
  std::vector<std::string> names;
  for (const std::string& value : raw) {
    size_t begin = 0;
    while (begin <= value.size()) {
      size_t comma = value.find(',', begin);
      if (comma == std::string::npos) comma = value.size();
      if (comma > begin) names.push_back(value.substr(begin, comma - begin));
      begin = comma + 1;
    }
  }
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  pstore::FlagParser flags;
  const pstore::Status parsed = flags.Parse(argc - 1, argv + 1);
  if (!parsed.ok()) {
    std::fprintf(stderr, "pstore_analyze: %s\n", parsed.ToString().c_str());
    return Usage();
  }
  for (const auto& flag : flags.flags()) {
    if (flag.first != "check" && flag.first != "list-checks" &&
        flag.first != "rule" && flag.first != "list-rules" &&
        flag.first != "threads" && flag.first != "format") {
      return Usage();
    }
  }
  std::vector<std::string> roots = flags.positional();
  std::vector<std::string> rules = SplitCommaList(flags.GetStrings("check"));
  for (const std::string& rule : SplitCommaList(flags.GetStrings("rule"))) {
    rules.push_back(rule);
  }
  const bool list_rules = flags.GetBool("list-checks", false) ||
                          flags.GetBool("list-rules", false);
  const pstore::StatusOr<int64_t> threads = flags.GetInt("threads", 1);
  if (!threads.ok()) {
    std::fprintf(stderr, "pstore_analyze: %s\n",
                 threads.status().ToString().c_str());
    return 2;
  }
  const std::string format = flags.GetString("format", "text");
  if (format != "text" && format != "json") {
    std::fprintf(stderr, "pstore_analyze: unknown --format '%s'\n",
                 format.c_str());
    return 2;
  }

  pstore::analysis::Analyzer analyzer;
  if (list_rules) {
    for (const std::string& name : analyzer.RuleNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  const pstore::Status selected = analyzer.SelectRules(rules);
  if (!selected.ok()) {
    std::fprintf(stderr, "pstore_analyze: %s\n", selected.ToString().c_str());
    return 2;
  }
  if (roots.empty()) {
    roots = {"src", "tools", "bench", "tests", "examples"};
  }

  pstore::StatusOr<pstore::analysis::Project> project =
      pstore::analysis::Project::Load(roots);
  if (!project.ok()) {
    std::fprintf(stderr, "pstore_analyze: %s\n",
                 project.status().ToString().c_str());
    return 2;
  }

  // --threads=1 (the default) stays strictly serial; anything else
  // resolves through the shared pool helper (0 = hardware).
  pstore::ThreadPool pool(pstore::ResolveThreadCount(*threads));
  const std::vector<pstore::analysis::Finding> findings =
      analyzer.Run(project.value(), &pool);
  if (format == "json") {
    const std::string json = pstore::analysis::FindingsToJson(findings);
    std::fwrite(json.data(), 1, json.size(), stdout);
  } else {
    for (const pstore::analysis::Finding& finding : findings) {
      std::printf("%s\n", pstore::analysis::FormatFinding(finding).c_str());
    }
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "pstore_analyze: %zu finding(s) in %zu files\n",
                 findings.size(), project.value().files().size());
    return 1;
  }
  return 0;
}
