// pstore_fleet: multi-tenant fleet provisioning over a synthetic tenant
// mix — one shared machine pool packed by the FleetController, compared
// against dedicated per-tenant clusters.
//
// Usage:
//   pstore_fleet --tenants=100 [--days=4] [--seed=17]
//       [--mode=fleet|dedicated|both]
//   pstore_fleet --b2w=40 --wiki=20 --ycsb=20 --step=20
//
// --tenants=N picks a default family split (40% B2W, 20% Wikipedia,
// 20% YCSB, 20% step); the per-family flags override it. Per-tenant
// forecasting fans out on --threads N workers (default: hardware
// concurrency) and every output is bit-identical for any thread count.
//
// Knobs:
//   --q=285 --qhat=350         pack / serve capacity per pooled machine
//   --interference=0.02        capacity lost per extra co-located tenant
//   --partitions=2             placement units per tenant
//   --inflation=1.15           forecast inflation before packing
//   --mean-peak=60             mean per-tenant peak demand (txn/s)
//   --forecast=SPEC            per-tenant predictor spec ("ar(p=8)",
//                              "shift(spar)", ... — see
//                              prediction/predictor_spec.h); default is
//                              the built-in cheap seasonal forecaster
//   --forecast-refit=288       cycles between per-tenant model re-fits
//                              (only with --forecast)
//
// Machine-readable outputs:
//   --csv-out=fleet.csv        deterministic summary + per-tenant rows
//   --trace-out=fleet.jsonl    fleet.cycle / fleet.pack / fleet.tenant_move
//                              events (render with pstore_report)
//   --bench-json=out.json      headline metrics as a JSON metrics registry

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "fleet/fleet_simulator.h"
#include "fleet/tenant.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "prediction/predictor_spec.h"

using namespace pstore;
using namespace pstore::fleet;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

void Report(const FleetResult& result, double fine_slot_seconds) {
  const double hours =
      (result.machine_slots + result.move_machine_slots) *
      fine_slot_seconds / 3600.0;
  std::printf("machine-hours:        %.0f (%.0f held + %.0f moving)\n",
              hours, result.machine_slots * fine_slot_seconds / 3600.0,
              result.move_machine_slots * fine_slot_seconds / 3600.0);
  std::printf("peak machines:        %d\n", result.peak_machines);
  std::printf("violation slots:      %lld (%.4f%% of tenant-time)\n",
              static_cast<long long>(result.tenant_violation_slots),
              100.0 * result.tenant_violation_fraction);
  std::printf("tenants over SLA:     %d of %d\n",
              result.tenants_violating_sla, result.tenants);
  if (result.mode == FleetMode::kFleet) {
    std::printf("packs:                %lld (%lld repacks, %lld spike "
                "re-plans, %lld partition moves)\n",
                static_cast<long long>(result.cycles),
                static_cast<long long>(result.repacks),
                static_cast<long long>(result.spike_replans),
                static_cast<long long>(result.partition_moves));
  } else {
    std::printf("resizes:              %lld (%lld spike re-plans)\n",
                static_cast<long long>(result.partition_moves),
                static_cast<long long>(result.spike_replans));
  }
}

void FillMetrics(obs::MetricsRegistry* registry, const FleetResult& result,
                 double fine_slot_seconds) {
  const std::string prefix =
      std::string("fleet.") + FleetModeName(result.mode) + ".";
  registry->GetGauge(prefix + "machine_hours")
      ->Set((result.machine_slots + result.move_machine_slots) *
            fine_slot_seconds / 3600.0);
  registry->GetGauge(prefix + "violation_fraction")
      ->Set(result.tenant_violation_fraction);
  registry->GetGauge(prefix + "peak_machines")->Set(result.peak_machines);
  registry->GetCounter(prefix + "violation_slots")
      ->Increment(result.tenant_violation_slots);
  registry->GetCounter(prefix + "tenants_violating_sla")
      ->Increment(result.tenants_violating_sla);
  registry->GetCounter(prefix + "partition_moves")
      ->Increment(result.partition_moves);
  registry->GetCounter(prefix + "repacks")->Increment(result.repacks);
  registry->GetCounter(prefix + "spike_replans")
      ->Increment(result.spike_replans);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  const Status parsed = flags.Parse(argc - 1, argv + 1);
  if (!parsed.ok()) return Fail(parsed.ToString());

  const StatusOr<int64_t> tenants = flags.GetInt("tenants", 0);
  const StatusOr<int64_t> b2w = flags.GetInt("b2w", -1);
  const StatusOr<int64_t> wiki = flags.GetInt("wiki", -1);
  const StatusOr<int64_t> ycsb = flags.GetInt("ycsb", -1);
  const StatusOr<int64_t> step = flags.GetInt("step", -1);
  const StatusOr<int64_t> days = flags.GetInt("days", 4);
  const StatusOr<int64_t> seed = flags.GetInt("seed", 17);
  const StatusOr<int64_t> partitions = flags.GetInt("partitions", 2);
  const StatusOr<int64_t> threads = flags.GetInt("threads", 0);
  const StatusOr<double> q = flags.GetDouble("q", 285.0);
  const StatusOr<double> qhat = flags.GetDouble("qhat", 350.0);
  const StatusOr<double> interference = flags.GetDouble("interference", 0.02);
  const StatusOr<double> inflation = flags.GetDouble("inflation", 1.15);
  const StatusOr<double> mean_peak = flags.GetDouble("mean-peak", 60.0);
  const StatusOr<double> sla = flags.GetDouble("sla", 0.01);
  for (const Status& status :
       {tenants.status(), b2w.status(), wiki.status(), ycsb.status(),
        step.status(), days.status(), seed.status(), partitions.status(),
        threads.status(), q.status(), qhat.status(), interference.status(),
        inflation.status(), mean_peak.status(), sla.status()}) {
    if (!status.ok()) return Fail(status.ToString());
  }

  // Family counts: explicit per-family flags win; otherwise --tenants=N
  // splits 40/20/20/20 (B2W absorbing the rounding remainder).
  TenantMixOptions mix;
  if (*b2w >= 0 || *wiki >= 0 || *ycsb >= 0 || *step >= 0) {
    mix.b2w_tenants = *b2w > 0 ? static_cast<int>(*b2w) : 0;
    mix.wikipedia_tenants = *wiki > 0 ? static_cast<int>(*wiki) : 0;
    mix.ycsb_tenants = *ycsb > 0 ? static_cast<int>(*ycsb) : 0;
    mix.step_tenants = *step > 0 ? static_cast<int>(*step) : 0;
  } else if (*tenants > 0) {
    const int n = static_cast<int>(*tenants);
    mix.wikipedia_tenants = n / 5;
    mix.ycsb_tenants = n / 5;
    mix.step_tenants = n / 5;
    mix.b2w_tenants =
        n - mix.wikipedia_tenants - mix.ycsb_tenants - mix.step_tenants;
  } else {
    return Fail("--tenants=N or per-family counts (--b2w/--wiki/--ycsb/"
                "--step) required");
  }
  mix.days = static_cast<int>(*days);
  mix.seed = static_cast<uint64_t>(*seed);
  mix.mean_peak_rate = *mean_peak;
  mix.partitions_per_tenant = static_cast<int>(*partitions);
  mix.sla_target = *sla;
  if (TotalTenants(mix) < 1) return Fail("fleet has no tenants");
  if (mix.days < 2) return Fail("--days must be >= 2 (1 warmup day)");

  FleetOptions options;
  options.controller.placement.machine_capacity = *q;
  options.controller.placement.interference_per_tenant = *interference;
  options.controller.inflation = *inflation;
  // Optional spec-built per-tenant forecasters; validated here because
  // the FleetController CHECKs the spec it is given.
  const std::string forecast_spec = flags.GetString("forecast", "");
  if (!forecast_spec.empty()) {
    const StatusOr<PredictorSpec> spec_check =
        ParsePredictorSpec(forecast_spec);
    if (!spec_check.ok()) {
      return Fail("--forecast: " + spec_check.status().ToString());
    }
    const StatusOr<int64_t> forecast_refit =
        flags.GetInt("forecast-refit", 288);
    if (!forecast_refit.ok()) return Fail(forecast_refit.status().ToString());
    if (*forecast_refit < 1) return Fail("--forecast-refit must be >= 1");
    options.controller.forecast_spec = forecast_spec;
    options.controller.forecast_refit_interval =
        static_cast<size_t>(*forecast_refit);
  }
  options.machine_serve_capacity = *qhat;
  options.planner.target_rate_per_node = *q;
  options.planner.max_rate_per_node = *qhat;
  // One warmup day at per-minute fine slots; the 288 cycles match the
  // forecasters' daily seasonal period.
  options.eval_begin = 1440;

  const std::string mode_flag = flags.GetString("mode", "both");
  std::vector<FleetMode> modes;
  if (mode_flag == "both") {
    modes = {FleetMode::kFleet, FleetMode::kDedicated};
  } else {
    StatusOr<FleetMode> mode = ParseFleetMode(mode_flag);
    if (!mode.ok()) return Fail(mode.status().ToString());
    modes = {*mode};
  }

  obs::Tracer tracer;
  const std::string trace_out = flags.GetString("trace-out", "");
  if (!trace_out.empty()) {
    const Status opened = tracer.OpenJsonl(trace_out);
    if (!opened.ok()) return Fail(opened.ToString());
  }

  FleetSimulator simulator(options, MakeTenantMix(mix));
  if (!trace_out.empty()) simulator.set_tracer(&tracer);
  ThreadPool pool(ResolveThreadCount(*threads));

  std::printf("Fleet: %d tenants (%d b2w, %d wikipedia, %d ycsb, %d step)"
              " over %d days on %d thread(s)\n",
              TotalTenants(mix), mix.b2w_tenants, mix.wikipedia_tenants,
              mix.ycsb_tenants, mix.step_tenants, mix.days,
              pool.thread_count());

  obs::MetricsRegistry registry;
  std::string csv;
  for (const FleetMode mode : modes) {
    StatusOr<FleetResult> result = simulator.Simulate(mode, &pool);
    if (!result.ok()) return Fail(result.status().ToString());
    std::printf("\n[%s]\n", FleetModeName(mode));
    Report(*result, options.fine_slot_seconds);
    FillMetrics(&registry, *result, options.fine_slot_seconds);
    if (!csv.empty()) csv += '\n';
    csv += FleetCsvRows(*result);
  }

  const std::string csv_out = flags.GetString("csv-out", "");
  if (!csv_out.empty()) {
    std::FILE* file = std::fopen(csv_out.c_str(), "w");
    if (file == nullptr) return Fail("cannot open " + csv_out);
    std::fwrite(csv.data(), 1, csv.size(), file);
    if (std::fclose(file) != 0) return Fail("write failed: " + csv_out);
    std::printf("\nFleet CSV: %s\n", csv_out.c_str());
  }

  if (!trace_out.empty()) {
    const Status closed = tracer.Close();
    if (!closed.ok()) return Fail(closed.ToString());
    std::printf("\nTrace: %lld events -> %s (render with pstore_report "
                "--trace=%s)\n",
                static_cast<long long>(tracer.events_emitted()),
                trace_out.c_str(), trace_out.c_str());
  }

  const std::string bench_json = flags.GetString("bench-json", "");
  if (!bench_json.empty()) {
    const Status written = registry.WriteJson(bench_json);
    if (!written.ok()) return Fail(written.ToString());
    std::printf("Metrics: %s\n", bench_json.c_str());
  }
  return 0;
}
