// pstore_report: render a structured JSONL trace (written by
// pstore_simulate / pstore_chaos / bench harnesses via --trace-out)
// into a human-readable per-run report: headline counters, forecast
// accuracy, wall-time rollups, and a per-cycle timeline.
//
// Usage:
//   pstore_report --trace=run.jsonl [--max-rows=40] [--csv=cycles.csv]
//
// --max-rows bounds the timeline (0 = summary only, negative = all
// rows); --csv additionally writes the full per-cycle table as CSV.

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/status.h"
#include "obs/run_report.h"
#include "obs/trace_reader.h"

using namespace pstore;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  const Status parsed = flags.Parse(argc - 1, argv + 1);
  if (!parsed.ok()) return Fail(parsed.ToString());

  const std::string trace_path = flags.GetString("trace", "");
  if (trace_path.empty()) return Fail("--trace=<jsonl> is required");
  const StatusOr<int64_t> max_rows = flags.GetInt("max-rows", 40);
  if (!max_rows.ok()) return Fail(max_rows.status().ToString());
  const std::string csv_path = flags.GetString("csv", "");

  StatusOr<std::vector<obs::ParsedTraceEvent>> events =
      obs::ReadTraceFile(trace_path);
  if (!events.ok()) return Fail(events.status().ToString());

  StatusOr<obs::RunReport> report = obs::BuildRunReport(*events);
  if (!report.ok()) return Fail(report.status().ToString());

  std::printf("%s", obs::RenderRunReport(
                        *report, static_cast<int>(*max_rows)).c_str());

  if (!csv_path.empty()) {
    const Status written = obs::WriteCycleCsv(*report, csv_path);
    if (!written.ok()) return Fail(written.ToString());
    std::printf("\nPer-cycle CSV written to %s\n", csv_path.c_str());
  }
  return 0;
}
