// pstore_plan: offline capacity planning from a load trace. Fits a
// predictor on the head of the trace, forecasts from a chosen "now",
// runs the P-Store dynamic program, and prints the move plan plus the
// first move's migration schedule.
//
// Usage:
//   pstore_plan --trace=trace.csv --q=3600 --qhat=4400 --d-minutes=77
//               --partitions=6 --nodes=3 [--model=spar|hw|ar]
//               [--train-days=28] [--horizon-hours=4] [--inflation=1.15]
//               [--save-model=m.spar] [--load-model=m.spar]
//
// --save-model persists the fitted SPAR coefficients; --load-model skips
// fitting and serves a previously saved model (§6's offline-training
// workflow).
//
// Units: the trace is per-slot load (e.g. requests/minute); --q/--qhat
// are per-machine capacities in the same per-slot units.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/status.h"
#include "common/strong_id.h"
#include "common/time_series.h"
#include "planner/dp_planner.h"
#include "planner/migration_schedule.h"
#include "planner/move.h"
#include "planner/move_model.h"
#include "prediction/ar_model.h"
#include "prediction/holt_winters.h"
#include "prediction/spar_model.h"
#include "trace/trace_io.h"

using namespace pstore;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  const Status parsed = flags.Parse(argc - 1, argv + 1);
  if (!parsed.ok()) return Fail(parsed.ToString());

  const std::string trace_path = flags.GetString("trace", "");
  if (trace_path.empty()) {
    return Fail("--trace=<csv> is required (see pstore_tracegen)");
  }
  StatusOr<TimeSeries> trace = LoadTraceCsv(trace_path);
  if (!trace.ok()) return Fail(trace.status().ToString());

  const StatusOr<double> q = flags.GetDouble("q", 3600.0);
  const StatusOr<double> qhat = flags.GetDouble("qhat", 4400.0);
  const StatusOr<double> d_minutes = flags.GetDouble("d-minutes", 77.0);
  const StatusOr<int64_t> partitions = flags.GetInt("partitions", 6);
  const StatusOr<int64_t> nodes = flags.GetInt("nodes", 3);
  const StatusOr<int64_t> train_days = flags.GetInt("train-days", 28);
  const StatusOr<int64_t> horizon_hours = flags.GetInt("horizon-hours", 4);
  const StatusOr<double> inflation = flags.GetDouble("inflation", 1.15);
  for (const Status& status :
       {q.status(), qhat.status(), d_minutes.status(), partitions.status(),
        nodes.status(), train_days.status(), horizon_hours.status(),
        inflation.status()}) {
    if (!status.ok()) return Fail(status.ToString());
  }

  const double slot_seconds = trace->slot_seconds();
  const size_t slots_per_day =
      static_cast<size_t>(86400.0 / slot_seconds + 0.5);
  const size_t train_slots = *train_days * slots_per_day;
  const size_t horizon =
      static_cast<size_t>(*horizon_hours * 3600.0 / slot_seconds + 0.5);
  if (train_slots + horizon >= trace->size()) {
    return Fail("trace too short for --train-days + --horizon-hours");
  }

  // Fit the requested model on the training head (or load a saved one).
  const std::string model_name = flags.GetString("model", "spar");
  const std::string load_model = flags.GetString("load-model", "");
  std::unique_ptr<LoadPredictor> model;
  if (!load_model.empty()) {
    StatusOr<SparPredictor> loaded = SparPredictor::LoadFromFile(load_model);
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    model = std::make_unique<SparPredictor>(std::move(*loaded));
  } else if (model_name == "spar") {
    SparOptions options;
    options.period = slots_per_day;
    options.num_periods = std::min<size_t>(7, *train_days - 1);
    options.num_recent = 30;
    options.max_tau = horizon;
    options.tau_stride = std::max<size_t>(1, horizon / 48);
    model = std::make_unique<SparPredictor>(options);
  } else if (model_name == "hw") {
    HoltWintersOptions options;
    options.period = slots_per_day;
    model = std::make_unique<HoltWintersPredictor>(options);
  } else if (model_name == "ar") {
    ArOptions options;
    options.order = 30;
    model = std::make_unique<ArPredictor>(options);
  } else {
    return Fail("unknown --model (want spar, hw, or ar): " + model_name);
  }
  if (load_model.empty()) {
    const Status fit = model->Fit(trace->Slice(0, train_slots));
    if (!fit.ok()) {
      return Fail(model_name + " fit failed: " + fit.ToString());
    }
  }
  const std::string save_model = flags.GetString("save-model", "");
  if (!save_model.empty()) {
    auto* spar_model = dynamic_cast<SparPredictor*>(model.get());
    if (spar_model == nullptr) {
      return Fail("--save-model currently supports --model=spar only");
    }
    const Status saved = spar_model->SaveToFile(save_model);
    if (!saved.ok()) return Fail(saved.ToString());
    std::printf("saved model to %s\n", save_model.c_str());
  }

  // Forecast from "now" = end of the training window.
  const TimeSeries history = trace->Slice(0, train_slots);
  StatusOr<std::vector<double>> forecast =
      model->PredictHorizon(history, horizon);
  if (!forecast.ok()) return Fail(forecast.status().ToString());

  // Planning slots of 5 trace slots each, conservative max within each.
  const int plan_factor = 5;
  std::vector<double> load;
  load.push_back(history[history.size() - 1]);
  for (size_t slot = 0; slot + plan_factor <= forecast->size();
       slot += plan_factor) {
    double peak = 0.0;
    for (int j = 0; j < plan_factor; ++j) {
      peak = std::max(peak, (*forecast)[slot + j] * *inflation);
    }
    load.push_back(peak);
  }

  PlannerParams params;
  params.target_rate_per_node = *q;
  params.max_rate_per_node = *qhat;
  params.d_slots = *d_minutes * 60.0 / (slot_seconds * plan_factor);
  params.partitions_per_node = static_cast<int>(*partitions);
  const DpPlanner planner(params);

  std::printf("Trace: %s (%zu slots of %.0fs). Now = slot %zu. Model: %s. "
              "Horizon: %zuh. Q=%.0f Qhat=%.0f D=%.0fmin P=%lld N0=%lld\n\n",
              trace_path.c_str(), trace->size(), slot_seconds, train_slots,
              model->name().c_str(), static_cast<size_t>(*horizon_hours), *q,
              *qhat, *d_minutes, static_cast<long long>(*partitions),
              static_cast<long long>(*nodes));

  StatusOr<PlanResult> plan =
      planner.BestMoves(load, NodeCount(static_cast<int>(*nodes)));
  if (!plan.ok()) {
    const double peak = *std::max_element(load.begin(), load.end());
    std::printf("NO FEASIBLE PLAN (%s).\n", plan.status().ToString().c_str());
    std::printf("Reactive fallback would scale straight to %d machines for "
                "the predicted peak of %.0f.\n",
                planner.NodesFor(peak).value(), peak);
    return 2;
  }

  std::printf("Plan (planning slots of %.0f s, cost %.1f machine-slots):\n",
              slot_seconds * plan_factor, plan->total_cost);
  for (const Move& move : plan->Condensed()) {
    std::printf("  %s\n", move.ToString().c_str());
  }
  const Move* first = plan->FirstReconfiguration();
  if (first == nullptr) {
    std::printf("\nNo reconfiguration needed within the horizon.\n");
    return 0;
  }
  StatusOr<MigrationSchedule> schedule =
      BuildMigrationSchedule(first->nodes_before, first->nodes_after);
  if (schedule.ok()) {
    std::printf("\nFirst move expands to:\n%s",
                schedule->ToString().c_str());
  }
  return 0;
}
