// pstore_traceinfo: analyze a load trace CSV — summary statistics,
// detected periodicity, peak/trough structure, and recommended predictor
// and planner parameters.
//
// Usage: pstore_traceinfo --trace=trace.csv [--q=<per-node capacity>]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/status.h"
#include "common/time_series.h"
#include "trace/trace_io.h"

using namespace pstore;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  const Status parsed = flags.Parse(argc - 1, argv + 1);
  if (!parsed.ok()) return Fail(parsed.ToString());
  const std::string path = flags.GetString("trace", "");
  if (path.empty()) return Fail("--trace=<csv> is required");
  const StatusOr<double> q = flags.GetDouble("q", 0.0);
  if (!q.ok()) return Fail(q.status().ToString());

  StatusOr<TimeSeries> trace = LoadTraceCsv(path);
  if (!trace.ok()) return Fail(trace.status().ToString());
  if (trace->size() < 16) return Fail("trace too short to analyze");

  const double slot_seconds = trace->slot_seconds();
  std::printf("Trace %s: %zu slots of %.0f s (%.1f days)\n", path.c_str(),
              trace->size(), slot_seconds,
              trace->size() * slot_seconds / 86400.0);
  std::printf("  min %.0f   mean %.0f   max %.0f   stddev %.0f\n",
              trace->Min(), trace->Mean(), trace->Max(), trace->StdDev());
  std::printf("  peak/trough ratio: %.1fx\n",
              trace->Max() / std::max(1e-9, trace->Min()));

  // Periodicity: scan up to a week of lags (bounded by series length).
  const size_t max_lag =
      std::min(trace->size() / 2 - 1,
               static_cast<size_t>(7.5 * 86400.0 / slot_seconds));
  const size_t min_lag =
      std::max<size_t>(2, static_cast<size_t>(3600.0 / slot_seconds));
  StatusOr<size_t> period = DetectPeriod(*trace, min_lag, max_lag);
  if (period.ok()) {
    StatusOr<double> strength = Autocorrelation(*trace, *period);
    std::printf("  dominant period: %zu slots (%.1f hours), "
                "autocorrelation %.3f\n",
                *period, *period * slot_seconds / 3600.0,
                strength.ok() ? *strength : 0.0);
    const size_t day_lag =
        static_cast<size_t>(86400.0 / slot_seconds + 0.5);
    if (day_lag >= 1 && day_lag < trace->size()) {
      StatusOr<double> daily = Autocorrelation(*trace, day_lag);
      if (daily.ok()) {
        std::printf("  daily-lag autocorrelation: %.3f %s\n", *daily,
                    *daily > 0.7 ? "(strongly diurnal: SPAR will fit well)"
                                 : "(weak diurnal pattern)");
      }
    }
    std::printf("\nRecommended predictor: SPAR with period=%zu, n=7, "
                "m=%zu, trained on >= %zu slots (4 periods + margin).\n",
                *period, std::max<size_t>(6, *period / 48),
                7 * *period + 2 * *period);
  }

  if (*q > 0.0) {
    const int peak_nodes =
        static_cast<int>(std::ceil(trace->Max() / *q));
    const int trough_nodes =
        static_cast<int>(std::ceil(std::max(1.0, trace->Min()) / *q));
    double mean_nodes = 0.0;
    for (size_t i = 0; i < trace->size(); ++i) {
      mean_nodes += std::ceil(std::max(1.0, (*trace)[i]) / *q);
    }
    mean_nodes /= static_cast<double>(trace->size());
    std::printf(
        "\nAt Q=%.0f per machine: peak needs %d machines, trough %d; "
        "perfect elasticity would average %.2f machines (%.0f%% of "
        "static peak provisioning).\n",
        *q, peak_nodes, trough_nodes, mean_nodes,
        100.0 * mean_nodes / peak_nodes);
  }
  return 0;
}
