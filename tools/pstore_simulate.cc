// pstore_simulate: run the long-horizon capacity simulator over a trace
// CSV with one or more allocation strategies — the Fig. 12 machinery as
// a CLI for operators exploring their own traces.
//
// Usage:
//   pstore_simulate --trace=trace.csv --strategy=pstore
//       [--q=285 --qhat=350 --d-minutes=77 --partitions=6]
//       [--train-days=28] [--inflation=1.15]
//       [--predictor='spar(n=7,m=6)']
//
// --predictor takes a predictor spec (prediction/predictor_spec.h
// grammar): spar, ar(p=8), hw, mf(rank=4), shift(spar),
// ensemble(spar,ar,hw,mode=switch), ... The model is built at the
// planning granularity (period = one day of planning slots, max_tau =
// the planning horizon) and fitted on the pre-eval prefix of the
// 5-minute downsampled trace — the default spec reproduces the paper's
// SPAR(7,6) setup exactly.
//   pstore_simulate --trace=trace.csv --strategy=reactive [--watermark=1.1]
//   pstore_simulate --trace=trace.csv --strategy=static --nodes=10
//   pstore_simulate --trace=trace.csv --strategy=simple --day-nodes=10
//       --night-nodes=3
//
// --strategy accepts a comma list ("pstore,reactive,static"); the runs
// are independent RunSpecs evaluated concurrently on --threads N worker
// threads (default: hardware concurrency) with results reported in
// strategy order — identical for any thread count.
//
// --engine-threads=N sets SimOptions::engine_threads, the node-sharded
// discrete-event engine's worker count. The analytic capacity simulator
// has no engine, so here the knob is inert and output is byte-identical
// for any value; engine-backed tools (pstore_chaos, the benches) honor
// it.
//
// Optional seeded-random fault injection (identical --seed reproduces
// the identical fault stream): node crashes and stragglers degrade the
// effective capacity while active, and violations occurring under a
// fault are reported separately.
//   pstore_simulate --trace=trace.csv --seed=7 --crash-rate=0.1
//       [--mean-outage-minutes=30] [--straggler-rate=0.2]
//       [--fault-nodes=10]
//
// Machine-readable outputs:
//   --trace-out=run.jsonl   structured event trace with sweep telemetry
//                           (see pstore_report); per-cycle simulator
//                           events are included for single-strategy runs
//   --csv-out=sweep.csv     deterministic per-strategy result rows
//   --bench-json=out.json   headline metrics as a JSON metrics registry

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/status.h"
#include "common/time_series.h"
#include "fault/fault_schedule.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "prediction/predictor_spec.h"
#include "sim/capacity_simulator.h"
#include "sim/run_spec.h"
#include "trace/trace_io.h"

using namespace pstore;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

void Report(const SimResult& result, double slot_seconds) {
  const double hours = result.machine_slots * slot_seconds / 3600.0;
  std::printf("machine-hours:        %.0f\n", hours);
  std::printf("insufficient slots:   %lld (%.3f%% of time)\n",
              static_cast<long long>(result.insufficient_slots),
              100.0 * result.insufficient_fraction);
  std::printf("reconfigurations:     %d\n", result.reconfigurations);
  if (result.fault_slots > 0) {
    std::printf("fault slots:          %lld (%lld insufficient during "
                "fault)\n",
                static_cast<long long>(result.fault_slots),
                static_cast<long long>(
                    result.insufficient_during_fault_slots));
  }
}

std::vector<std::string> SplitCommaList(const std::string& value) {
  std::vector<std::string> parts;
  std::string::size_type begin = 0;
  while (begin <= value.size()) {
    const std::string::size_type comma = value.find(',', begin);
    const std::string::size_type end =
        comma == std::string::npos ? value.size() : comma;
    if (end > begin) parts.push_back(value.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return parts;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  const Status parsed = flags.Parse(argc - 1, argv + 1);
  if (!parsed.ok()) return Fail(parsed.ToString());

  const std::string trace_path = flags.GetString("trace", "");
  if (trace_path.empty()) return Fail("--trace=<csv> is required");
  StatusOr<TimeSeries> trace = LoadTraceCsv(trace_path);
  if (!trace.ok()) return Fail(trace.status().ToString());

  const StatusOr<double> q = flags.GetDouble("q", 285.0);
  const StatusOr<double> qhat = flags.GetDouble("qhat", 350.0);
  const StatusOr<double> d_minutes = flags.GetDouble("d-minutes", 77.0);
  const StatusOr<int64_t> partitions = flags.GetInt("partitions", 6);
  const StatusOr<int64_t> train_days = flags.GetInt("train-days", 28);
  const StatusOr<double> inflation = flags.GetDouble("inflation", 1.15);
  const StatusOr<int64_t> threads = flags.GetInt("threads", 0);
  // Worker threads for the node-sharded discrete-event engine. The
  // analytic capacity simulator behind this tool has no engine, so the
  // knob is inert here by design — results are identical for any value
  // (the determinism ctest pins exactly that) — but it is plumbed
  // through SimOptions for parity with the engine-backed tools.
  const StatusOr<int64_t> engine_threads = flags.GetInt("engine-threads", 1);
  for (const Status& status :
       {q.status(), qhat.status(), d_minutes.status(), partitions.status(),
        train_days.status(), inflation.status(), threads.status(),
        engine_threads.status()}) {
    if (!status.ok()) return Fail(status.ToString());
  }

  const double slot_seconds = trace->slot_seconds();
  const size_t slots_per_day =
      static_cast<size_t>(86400.0 / slot_seconds + 0.5);

  SimOptions options;
  options.q = *q;
  options.q_hat = *qhat;
  options.d_fine_slots = *d_minutes * 60.0 / slot_seconds;
  options.partitions_per_node = static_cast<int>(*partitions);
  options.inflation = *inflation;
  options.initial_nodes = 4;
  options.max_nodes = 80;
  options.engine_threads = static_cast<int>(*engine_threads);
  options.eval_begin = *train_days * slots_per_day;
  if (options.eval_begin + slots_per_day >= trace->size()) {
    return Fail("trace too short for --train-days plus one day");
  }

  // Seeded-random fault stream, mapped onto capacity windows.
  const StatusOr<int64_t> seed = flags.GetInt("seed", 0);
  const StatusOr<double> crash_rate = flags.GetDouble("crash-rate", 0.0);
  const StatusOr<double> mean_outage =
      flags.GetDouble("mean-outage-minutes", 30.0);
  const StatusOr<double> straggler_rate =
      flags.GetDouble("straggler-rate", 0.0);
  const StatusOr<int64_t> fault_nodes = flags.GetInt("fault-nodes", 10);
  for (const Status& status :
       {seed.status(), crash_rate.status(), mean_outage.status(),
        straggler_rate.status(), fault_nodes.status()}) {
    if (!status.ok()) return Fail(status.ToString());
  }
  if (*seed != 0 && (*crash_rate > 0.0 || *straggler_rate > 0.0)) {
    if (*fault_nodes < 1) return Fail("--fault-nodes must be >= 1");
    FaultScheduleOptions fault_options;
    fault_options.seed = static_cast<uint64_t>(*seed);
    fault_options.horizon_seconds =
        static_cast<double>(trace->size()) * slot_seconds;
    fault_options.max_node = static_cast<int>(*fault_nodes) - 1;
    fault_options.crash_rate_per_hour = *crash_rate;
    fault_options.mean_outage_seconds = *mean_outage * 60.0;
    fault_options.straggler_rate_per_hour = *straggler_rate;
    const FaultSchedule schedule =
        FaultSchedule::SeededRandom(fault_options);
    options.faults = ToCapacityFaults(schedule, slot_seconds,
                                      static_cast<int>(*fault_nodes));
    std::printf("Fault stream: seed %lld, %zu events, %zu capacity "
                "windows\n",
                static_cast<long long>(*seed), schedule.events().size(),
                options.faults.size());
  }
  options.fine_slot_sim_seconds = slot_seconds;

  // One RunSpec per requested strategy, all borrowing the loaded trace.
  const std::vector<std::string> strategy_names =
      SplitCommaList(flags.GetString("strategy", "pstore"));
  if (strategy_names.empty()) return Fail("--strategy lists no strategy");

  // Predictor spec for kPredictive runs; validated up front so a typo
  // fails before any strategy runs. RunOne materializes and fits one
  // instance per predictive task (see RunSpec::predictor_spec).
  const std::string predictor_spec =
      flags.GetString("predictor", "spar(n=7,m=6)");
  {
    const StatusOr<PredictorSpec> spec_check =
        ParsePredictorSpec(predictor_spec);
    if (!spec_check.ok()) {
      return Fail("--predictor: " + spec_check.status().ToString());
    }
  }

  std::vector<RunSpec> specs;
  for (const std::string& name : strategy_names) {
    StatusOr<Strategy> strategy = ParseStrategy(name);
    if (!strategy.ok()) return Fail(strategy.status().ToString());

    RunSpec spec;
    spec.label = StrategyName(*strategy);
    spec.workload.kind = WorkloadSpec::Kind::kProvided;
    spec.workload.provided = &*trace;
    spec.sim = options;
    spec.strategy = *strategy;
    switch (*strategy) {
      case Strategy::kPredictive: {
        spec.predictor_spec = predictor_spec;
        break;
      }
      case Strategy::kReactive: {
        const StatusOr<double> watermark =
            flags.GetDouble("watermark", spec.reactive.high_watermark);
        if (!watermark.ok()) return Fail(watermark.status().ToString());
        spec.reactive.high_watermark = *watermark;
        break;
      }
      case Strategy::kStatic: {
        const StatusOr<int64_t> nodes = flags.GetInt("nodes", 10);
        if (!nodes.ok()) return Fail(nodes.status().ToString());
        spec.static_nodes = static_cast<int>(*nodes);
        break;
      }
      case Strategy::kSimple: {
        spec.simple.slots_per_day = static_cast<int>(slots_per_day);
        const StatusOr<int64_t> day_nodes = flags.GetInt("day-nodes", 10);
        const StatusOr<int64_t> night_nodes = flags.GetInt("night-nodes", 3);
        if (!day_nodes.ok()) return Fail(day_nodes.status().ToString());
        if (!night_nodes.ok()) return Fail(night_nodes.status().ToString());
        spec.simple.day_nodes = static_cast<int>(*day_nodes);
        spec.simple.night_nodes = static_cast<int>(*night_nodes);
        break;
      }
    }
    specs.push_back(spec);
  }

  // Structured run trace: sweep telemetry always; per-cycle simulator
  // events only for a single-strategy run (a Tracer is single-threaded,
  // so concurrent specs cannot share it).
  const std::string trace_out = flags.GetString("trace-out", "");
  obs::Tracer tracer;
  if (!trace_out.empty()) {
    const Status opened = tracer.OpenJsonl(trace_out);
    if (!opened.ok()) return Fail(opened.ToString());
    if (specs.size() == 1) specs[0].tracer = &tracer;
  }

  SweepOptions sweep_options;
  sweep_options.threads = static_cast<int>(*threads);
  if (!trace_out.empty()) sweep_options.tracer = &tracer;

  std::printf("Strategies [%s] over %zu evaluation slots (Q=%.0f "
              "Qhat=%.0f D=%.0fmin)\n",
              flags.GetString("strategy", "pstore").c_str(),
              trace->size() - options.eval_begin, *q, *qhat, *d_minutes);
  const StatusOr<SweepResult> sweep = RunSweep(specs, sweep_options);
  if (!sweep.ok()) return Fail(sweep.status().ToString());
  std::printf("(%zu run(s) on %d thread(s))\n", specs.size(),
              sweep->threads);

  for (size_t i = 0; i < specs.size(); ++i) {
    std::printf("\n[%s]\n", specs[i].label.c_str());
    Report(sweep->results[i], slot_seconds);
  }

  const std::string csv_out = flags.GetString("csv-out", "");
  if (!csv_out.empty()) {
    const std::string rows = SweepCsvRows(specs, *sweep);
    std::FILE* file = std::fopen(csv_out.c_str(), "w");
    if (file == nullptr) return Fail("cannot open " + csv_out);
    std::fwrite(rows.data(), 1, rows.size(), file);
    if (std::fclose(file) != 0) return Fail("write failed: " + csv_out);
    std::printf("\nSweep CSV: %s\n", csv_out.c_str());
  }

  if (!trace_out.empty()) {
    const Status closed = tracer.Close();
    if (!closed.ok()) return Fail(closed.ToString());
    std::printf("\nTrace: %lld events -> %s (render with pstore_report "
                "--trace=%s)\n",
                static_cast<long long>(tracer.events_emitted()),
                trace_out.c_str(), trace_out.c_str());
  }

  const std::string bench_json = flags.GetString("bench-json", "");
  if (!bench_json.empty()) {
    obs::MetricsRegistry registry;
    for (size_t i = 0; i < specs.size(); ++i) {
      const SimResult& sim_result = sweep->results[i];
      // Single-strategy runs keep the historical "sim." metric names;
      // sweeps qualify them per strategy.
      const std::string prefix =
          specs.size() == 1 ? "sim." : "sim." + specs[i].label + ".";
      registry.GetGauge(prefix + "machine_hours")
          ->Set(sim_result.machine_slots * slot_seconds / 3600.0);
      registry.GetGauge(prefix + "insufficient_fraction")
          ->Set(sim_result.insufficient_fraction);
      registry.GetCounter(prefix + "insufficient_slots")
          ->Increment(sim_result.insufficient_slots);
      registry.GetCounter(prefix + "insufficient_during_move_slots")
          ->Increment(sim_result.insufficient_during_move_slots);
      registry.GetCounter(prefix + "insufficient_during_fault_slots")
          ->Increment(sim_result.insufficient_during_fault_slots);
      registry.GetCounter(prefix + "move_slots")
          ->Increment(sim_result.move_slots);
      registry.GetCounter(prefix + "fault_slots")
          ->Increment(sim_result.fault_slots);
      registry.GetCounter(prefix + "reconfigurations")
          ->Increment(sim_result.reconfigurations);
    }
    const Status written = registry.WriteJson(bench_json);
    if (!written.ok()) return Fail(written.ToString());
    std::printf("Metrics: %s\n", bench_json.c_str());
  }
  return 0;
}
