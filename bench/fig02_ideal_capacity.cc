// Figure 2: the ideal capacity curve mirrors a sinusoidal demand curve
// with a small buffer (2a); with an integral number of servers the
// allocation is a step function hugging the demand from above (2b).

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "planner/dp_planner.h"
#include "planner/move_model.h"

int main() {
  using namespace pstore;
  bench::PrintHeader(
      "Figure 2: ideal capacity vs. integral servers for sinusoidal demand",
      "step allocation hugs the demand curve from above");

  PlannerParams params;
  params.target_rate_per_node = 285.0;
  const DpPlanner planner(params);

  auto csv = bench::OpenCsv("fig02_ideal_capacity.csv");
  if (csv) {
    csv->WriteRow({"t", "demand", "ideal_capacity", "servers",
                   "step_capacity"});
  }

  const double buffer = 1.08;  // small headroom over demand
  std::printf("%6s %10s %14s %8s %14s\n", "t", "demand", "ideal_cap",
              "servers", "step_cap");
  double total_ideal = 0.0;
  double total_step = 0.0;
  const int kSlots = 96;
  for (int t = 0; t < kSlots; ++t) {
    const double phase = 2.0 * M_PI * t / kSlots;
    const double demand = 1500.0 + 1200.0 * std::sin(phase);
    const double ideal = demand * buffer;
    const int servers = planner.NodesFor(ideal).value();
    const double step = servers * params.target_rate_per_node;
    total_ideal += ideal;
    total_step += step;
    if (csv) {
      csv->WriteNumericRow({static_cast<double>(t), demand, ideal,
                            static_cast<double>(servers), step});
    }
    if (t % 8 == 0) {
      std::printf("%6d %10.0f %14.0f %8d %14.0f\n", t, demand, ideal,
                  servers, step);
    }
  }
  std::printf(
      "\nStep allocation overhead vs. ideal: %.1f%% (integral servers "
      "force capacity above the ideal curve).\n",
      100.0 * (total_step - total_ideal) / total_ideal);
  bench::CloseCsv(csv.get());
  return 0;
}
