// Table 2: number of SLA violations (seconds in which the per-second
// 50th/95th/99th percentile latency exceeded 500 ms) and average
// machines allocated, for the four elasticity approaches. The paper:
//
//   approach     p50  p95  p99   avg machines
//   Static-10      0   13   25   10
//   Static-4       0  157  249    4
//   Reactive      35  220  327    4.02
//   P-Store        0   37   92    5.05
//
// i.e., P-Store causes ~1/3 the violations of reactive while using
// ~half the machines of peak provisioning.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/flags.h"
#include "common/status.h"

int main(int argc, char** argv) {
  using namespace pstore;
  FlagParser flags;
  PSTORE_CHECK_OK(flags.Parse(argc - 1, argv + 1));
  const StatusOr<int64_t> threads = flags.GetInt("threads", 0);
  PSTORE_CHECK_OK(threads.status());

  bench::PrintHeader(
      "Table 2: SLA violations (500 ms) and average machines (3-day replay)",
      "P-Store ~1/3 of reactive's violations at ~1/2 of static-10's "
      "machines");

  struct Config {
    const char* label;
    Strategy strategy;
    int nodes;
  };
  const Config configs[] = {
      {"Static-10", Strategy::kStatic, 10},
      {"Static-4", Strategy::kStatic, 4},
      {"Reactive", Strategy::kReactive, 4},
      {"P-Store", Strategy::kPredictive, 4},
  };

  std::vector<bench::EngineRunConfig> run_configs;
  for (const Config& config : configs) {
    bench::EngineRunConfig run_config;
    run_config.spec.label = config.label;
    run_config.spec.strategy = config.strategy;
    run_config.nodes = config.nodes;
    run_config.replay_days = 3;
    run_configs.push_back(run_config);
  }
  const std::vector<bench::EngineRunResult> runs =
      bench::RunEngineExperiments(run_configs, static_cast<int>(*threads));

  auto csv = bench::OpenCsv("table2_sla_violations.csv");
  if (csv) {
    csv->WriteRow({"approach", "p50_violations", "p95_violations",
                   "p99_violations", "avg_machines"});
  }

  std::printf("%-12s %10s %10s %10s %14s\n", "approach", "p50 viol",
              "p95 viol", "p99 viol", "avg machines");
  for (size_t c = 0; c < runs.size(); ++c) {
    const Config& config = configs[c];
    const bench::EngineRunResult& run = runs[c];
    std::printf("%-12s %10lld %10lld %10lld %14.2f\n", config.label,
                static_cast<long long>(run.violations.p50),
                static_cast<long long>(run.violations.p95),
                static_cast<long long>(run.violations.p99),
                run.avg_machines);
    if (csv) {
      csv->WriteRow({config.label, std::to_string(run.violations.p50),
                     std::to_string(run.violations.p95),
                     std::to_string(run.violations.p99),
                     std::to_string(run.avg_machines)});
    }
  }
  const bench::EngineRunResult& static10_run = runs[0];
  const bench::EngineRunResult& reactive_run = runs[2];
  const bench::EngineRunResult& pstore_run = runs[3];

  std::printf("\nShape check:\n");
  std::printf("  P-Store p99 violations / reactive: %.2f (paper: ~0.28)\n",
              reactive_run.violations.p99 > 0
                  ? static_cast<double>(pstore_run.violations.p99) /
                        static_cast<double>(reactive_run.violations.p99)
                  : 0.0);
  std::printf("  P-Store avg machines / static-10:  %.2f (paper: ~0.50)\n",
              pstore_run.avg_machines / static10_run.avg_machines);
  bench::CloseCsv(csv.get());
  return 0;
}
