// Figure 1: load on one of B2W's databases over three days — a strong
// diurnal cycle whose peak is ~10x the trough, peaking near 2.2e4
// requests/minute. This bench regenerates the series from the synthetic
// B2W trace generator and prints its shape statistics.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/time_series.h"
#include "trace/b2w_trace_generator.h"

int main() {
  using namespace pstore;
  bench::PrintHeader(
      "Figure 1: B2W load over three days",
      "daily peaks near 2.2e4 req/min; peak ~= 10x trough");

  B2wTraceOptions options;
  options.days = 3;
  options.seed = 42;
  const TimeSeries trace = GenerateB2wTrace(options);

  auto csv = bench::OpenCsv("fig01_b2w_load.csv");
  if (csv) csv->WriteRow({"minute", "requests_per_min"});

  std::printf("%8s  %14s\n", "minute", "requests/min");
  for (size_t i = 0; i < trace.size(); ++i) {
    if (csv) csv->WriteNumericRow({static_cast<double>(i), trace[i]});
    if (i % 120 == 0) {
      std::printf("%8zu  %14.0f\n", i, trace[i]);
    }
  }

  double day_peak[3] = {0, 0, 0};
  double day_trough[3] = {1e18, 1e18, 1e18};
  for (size_t i = 0; i < trace.size(); ++i) {
    const int day = static_cast<int>(i / 1440);
    day_peak[day] = std::max(day_peak[day], trace[i]);
    day_trough[day] = std::min(day_trough[day], trace[i]);
  }
  std::printf("\n%-6s %12s %12s %12s\n", "day", "peak", "trough",
              "peak/trough");
  for (int d = 0; d < 3; ++d) {
    std::printf("%-6d %12.0f %12.0f %12.1f\n", d, day_peak[d], day_trough[d],
                day_peak[d] / day_trough[d]);
  }
  std::printf("\nMeasured: peak %.0f req/min, peak/trough ratio %.1f "
              "(paper: ~22000 req/min, ~10x).\n",
              trace.Max(), trace.Max() / trace.Min());
  bench::CloseCsv(csv.get());
  return 0;
}
