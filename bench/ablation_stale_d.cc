// Applicability probe (§4.2): "the database size is not quickly
// changing ... any significant size increase or decrease requires
// re-discovering D". As the database grows, every migration moves more
// bytes than D was calibrated for, so a planner with a stale D starts
// its moves too late and they finish mid-ramp. This bench simulates a
// growing database with the planner either re-discovering D
// continuously or keeping the original value.

#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "common/status.h"
#include "common/time_series.h"
#include "prediction/spar_model.h"
#include "sim/capacity_simulator.h"
#include "trace/b2w_trace_generator.h"

int main() {
  using namespace pstore;
  bench::PrintHeader(
      "Ablation: stale D under database growth (§4.2 assumption)",
      "the paper prescribes re-discovering D on significant size change; "
      "a stale D makes every move run long and finish mid-ramp");

  B2wTraceOptions trace_options;
  trace_options.days = 49;
  trace_options.seed = 42;
  trace_options.peak_requests_per_min = 10500.0;
  const TimeSeries trace =
      GenerateB2wTrace(trace_options).Scaled(10.0 / 60.0);
  const TimeSeries coarse = trace.DownsampleMean(5);

  SparOptions spar_options;
  spar_options.period = 288;
  spar_options.num_periods = 7;
  spar_options.num_recent = 6;
  spar_options.max_tau = 36;
  SparPredictor spar(spar_options);
  PSTORE_CHECK_OK(spar.Fit(coarse.Slice(0, 28 * 288)));

  auto csv = bench::OpenCsv("ablation_stale_d.csv");
  if (csv) {
    csv->WriteRow({"growth_per_day_percent", "planner_d", "cost",
                   "insufficient_percent", "during_moves_percent"});
  }
  std::printf("%14s %-12s %14s %16s %16s\n", "growth/day", "planner D",
              "cost", "insufficient %%", "during moves %%");
  for (const double growth : {0.0, 0.03, 0.06}) {
    for (const bool refresh : {true, false}) {
      if (growth == 0.0 && !refresh) continue;  // identical to refreshed
      SimOptions options;
      // Modest slack (Q = 320 vs Q-hat = 350) so background prediction
      // noise causes ~no violations and the staleness effect stands out;
      // one partition per machine so moves span multiple slots.
      options.q = 320.0;
      options.q_hat = 350.0;
      options.inflation = 1.0;
      options.d_fine_slots = 77.0;
      options.partitions_per_node = 1;
      options.initial_nodes = 4;
      options.max_nodes = 60;
      options.eval_begin = 28 * 1440;
      options.d_growth_per_day = growth;
      options.refresh_d = refresh;
      const CapacitySimulator sim(options);
      StatusOr<SimResult> result = sim.RunPredictive(trace, spar);
      PSTORE_CHECK_OK(result.status());
      const double during_moves =
          result->move_slots == 0
              ? 0.0
              : 100.0 *
                    static_cast<double>(
                        result->insufficient_during_move_slots) /
                    static_cast<double>(result->move_slots);
      const char* mode = refresh ? "refreshed" : "stale";
      std::printf("%13.0f%% %-12s %14.0f %16.4f %16.3f\n", 100.0 * growth,
                  mode, result->machine_slots,
                  100.0 * result->insufficient_fraction, during_moves);
      if (csv) {
        csv->WriteRow({std::to_string(100.0 * growth), mode,
                       std::to_string(result->machine_slots),
                       std::to_string(100.0 *
                                      result->insufficient_fraction),
                       std::to_string(during_moves)});
      }
    }
  }
  std::printf(
      "\nReading: with D re-discovered as the database grows, violations "
      "stay near the no-growth baseline; with a stale D the "
      "under-capacity time during moves climbs, because every migration "
      "takes longer than the plan budgeted — the §4.2 prescription in "
      "numbers.\n");
  bench::CloseCsv(csv.get());
  return 0;
}
