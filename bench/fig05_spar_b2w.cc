// Figure 5: SPAR predictions for the B2W load. (a) 60-minute-ahead
// predictions track the actual load over a held-out 24-hour window;
// (b) mean relative error grows gracefully with the forecasting period
// tau (paper: ~6% at tau=10 up to ~10.4% at tau=60).

#include <cstdio>

#include <memory>

#include "bench_util.h"
#include "common/status.h"
#include "common/time_series.h"
#include "prediction/predictor.h"
#include "prediction/predictor_spec.h"
#include "trace/b2w_trace_generator.h"

int main() {
  using namespace pstore;
  bench::PrintHeader(
      "Figure 5: SPAR predictions for B2W (train 4 weeks, n=7, m=30)",
      "(a) 60-min-ahead forecast tracks the load; (b) MRE decays "
      "gracefully with tau (~10% at tau=60)");

  B2wTraceOptions trace_options;
  trace_options.days = 30;
  trace_options.seed = 42;
  const TimeSeries trace = GenerateB2wTrace(trace_options);
  const size_t train_end = 28 * 1440;

  // Registry-built with the paper's exact options; identical numbers to
  // constructing SparPredictor directly.
  PredictorContext context;
  context.period = 1440;
  context.max_tau = 60;
  StatusOr<std::unique_ptr<LoadPredictor>> made =
      MakePredictor("spar(n=7,m=30)", context);
  if (!made.ok()) {
    std::printf("make failed: %s\n", made.status().ToString().c_str());
    return 1;
  }
  LoadPredictor& spar = **made;
  const Status fit = spar.Fit(trace.Slice(0, train_end));
  if (!fit.ok()) {
    std::printf("fit failed: %s\n", fit.ToString().c_str());
    return 1;
  }

  // (a) 60-minute-ahead predictions over the first held-out day.
  auto csv_a = bench::OpenCsv("fig05a_spar_b2w_60min.csv");
  if (csv_a) csv_a->WriteRow({"minute", "actual", "predicted_tau60"});
  std::printf("\n(a) 60-min-ahead predictions, held-out day (every 2 h):\n");
  std::printf("%8s %14s %14s %8s\n", "minute", "actual", "predicted",
              "err%%");
  for (size_t t = train_end; t + 60 < trace.size() - 1440; ++t) {
    const StatusOr<double> prediction =
        spar.PredictAhead(trace.Slice(0, t + 1), 60);
    if (!prediction.ok()) continue;
    const double actual = trace[t + 60];
    if (csv_a) {
      csv_a->WriteNumericRow(
          {static_cast<double>(t + 60 - train_end), actual, *prediction});
    }
    if ((t - train_end) % 120 == 0) {
      std::printf("%8zu %14.0f %14.0f %8.1f\n", t + 60 - train_end, actual,
                  *prediction, 100.0 * (*prediction - actual) / actual);
    }
  }

  // (b) MRE vs forecasting period over the two held-out days.
  auto csv_b = bench::OpenCsv("fig05b_spar_b2w_mre.csv");
  if (csv_b) csv_b->WriteRow({"tau_min", "mre_percent"});
  std::printf("\n(b) MRE vs forecasting period tau:\n");
  std::printf("%8s %12s\n", "tau(min)", "MRE %%");
  for (const size_t tau : {10u, 20u, 30u, 40u, 50u, 60u}) {
    const StatusOr<EvaluationResult> eval =
        EvaluatePredictor(spar, trace, train_end, tau);
    if (!eval.ok()) continue;
    std::printf("%8zu %12.2f\n", tau, 100.0 * eval->mre);
    if (csv_b) {
      csv_b->WriteNumericRow({static_cast<double>(tau), 100.0 * eval->mre});
    }
  }
  std::printf(
      "\nShape check: error grows smoothly with tau and stays in the "
      "single-digit-to-low-teens range, as in Fig. 5b.\n");
  bench::CloseCsv(csv_a.get());
  bench::CloseCsv(csv_b.get());
  return 0;
}
