// Microbenchmarks for the simulated engine: transaction submission
// throughput (the hot path of every experiment), routing cost, and
// bucket handoff.

#include <benchmark/benchmark.h>

#include <memory>

#include "b2w/procedures.h"
#include "b2w/workload.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/metrics.h"
#include "engine/murmur_hash.h"
#include "engine/sharded_loop.h"
#include "engine/txn_executor.h"
#include "micro_util.h"
#include "obs/tracer.h"

namespace pstore {
namespace {

ClusterOptions BenchCluster() {
  ClusterOptions options;
  options.partitions_per_node = 6;
  options.max_nodes = 10;
  options.initial_nodes = 4;
  options.num_buckets = 3600;
  return options;
}

void BM_MurmurHash(benchmark::State& state) {
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MurmurHash64(++key));
  }
}
BENCHMARK(BM_MurmurHash);

void BM_TxnSubmit(benchmark::State& state) {
  Cluster cluster(BenchCluster());
  MetricsCollector metrics;
  TxnExecutor executor(&cluster, &metrics, ExecutorOptions{});
  PSTORE_CHECK(b2w::RegisterProcedures(&executor).ok());
  b2w::B2wWorkloadOptions workload_options;
  workload_options.cart_pool = 100000;
  workload_options.checkout_pool = 40000;
  b2w::Workload workload(workload_options);
  PSTORE_CHECK(workload.LoadInitialData(&cluster).ok());
  Rng rng(1);
  SimTime now = 0;
  for (auto _ : state) {
    now += 300;  // ~3333 txn/s offered
    benchmark::DoNotOptimize(
        executor.Submit(workload.NextTransaction(rng), now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TxnSubmit);

// The same hot path with a live tracer attached. With the default mask
// the per-transaction engine.txn events sit in kVerbose and are skipped
// after a null + bitmask check, so this measures the cost tracing-on
// runs pay when the firehose is off (the acceptance bar is < 5% vs
// BM_TxnSubmit). state.range(0) == 1 additionally enables kVerbose, so
// every submit builds and emits an event into a counting sink.
void BM_TxnSubmitTraced(benchmark::State& state) {
  Cluster cluster(BenchCluster());
  MetricsCollector metrics;
  TxnExecutor executor(&cluster, &metrics, ExecutorOptions{});
  PSTORE_CHECK(b2w::RegisterProcedures(&executor).ok());
  b2w::B2wWorkloadOptions workload_options;
  workload_options.cart_pool = 100000;
  workload_options.checkout_pool = 40000;
  b2w::Workload workload(workload_options);
  PSTORE_CHECK(workload.LoadInitialData(&cluster).ok());
  obs::Tracer tracer;
  tracer.SetSink(std::make_unique<obs::CountingTraceSink>());
  if (state.range(0) == 1) {
    tracer.Enable(obs::TraceCategory::kVerbose);
  }
  executor.set_tracer(&tracer);
  Rng rng(1);
  SimTime now = 0;
  for (auto _ : state) {
    now += 300;  // ~3333 txn/s offered
    benchmark::DoNotOptimize(
        executor.Submit(workload.NextTransaction(rng), now));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["events"] =
      static_cast<double>(tracer.events_emitted());
}
BENCHMARK(BM_TxnSubmitTraced)->Arg(0)->Arg(1);

// The same hot path through the node-sharded engine: the serial control
// thread runs the routing/health/RNG skeleton and defers the execution
// body to the owning node's shard, with a window barrier (Flush) every
// 256 submissions — roughly the control-event cadence of a real run.
// Compare against BM_TxnSubmit for the sharding overhead at a given
// worker count; on a single-hardware-thread host the >1-thread rows
// measure pure barrier/queue cost.
void BM_ShardedSubmit(benchmark::State& state) {
  Cluster cluster(BenchCluster());
  MetricsCollector metrics;
  TxnExecutor executor(&cluster, &metrics, ExecutorOptions{});
  PSTORE_CHECK(b2w::RegisterProcedures(&executor).ok());
  b2w::B2wWorkloadOptions workload_options;
  workload_options.cart_pool = 100000;
  workload_options.checkout_pool = 40000;
  b2w::Workload workload(workload_options);
  PSTORE_CHECK(workload.LoadInitialData(&cluster).ok());
  EventLoop loop;
  ShardedEngine engine(&loop, BenchCluster().max_nodes,
                       static_cast<int>(state.range(0)));
  executor.EnableSharding(&engine);
  Rng rng(1);
  SimTime now = 0;
  int in_window = 0;
  for (auto _ : state) {
    now += 300;  // ~3333 txn/s offered
    executor.SubmitSharded(workload.NextTransaction(rng), now);
    if (++in_window == 256) {
      engine.Flush();
      in_window = 0;
    }
  }
  engine.Flush();
  executor.FoldShardStats();
  state.SetItemsProcessed(state.iterations());
  state.counters["barriers"] = static_cast<double>(engine.barriers());
}
BENCHMARK(BM_ShardedSubmit)->Arg(2)->Arg(4);

void BM_TxnFactoryOnly(benchmark::State& state) {
  b2w::Workload workload(b2w::B2wWorkloadOptions{});
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload.NextTransaction(rng));
  }
}
BENCHMARK(BM_TxnFactoryOnly);

void BM_BucketHandoff(benchmark::State& state) {
  Cluster cluster(BenchCluster());
  b2w::B2wWorkloadOptions workload_options;
  workload_options.cart_pool = 100000;
  workload_options.checkout_pool = 40000;
  b2w::Workload workload(workload_options);
  PSTORE_CHECK(workload.LoadInitialData(&cluster).ok());
  int flip = 0;
  for (auto _ : state) {
    // Bounce bucket 7 between two partitions.
    cluster.MoveBucket(7, flip ? 0 : 6);
    flip ^= 1;
  }
}
BENCHMARK(BM_BucketHandoff);

}  // namespace
}  // namespace pstore

PSTORE_MICRO_BENCH_MAIN("engine")
