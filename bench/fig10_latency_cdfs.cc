// Figure 10: CDFs of the top 1% of per-second 50th/95th/99th percentile
// latencies for the four elasticity approaches. Higher/left curves are
// better. The paper: reactive is clearly worst everywhere; static-4
// beats P-Store at p50 but is much worse at p95/p99; static-10 is best.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/flags.h"
#include "common/status.h"

namespace {

using namespace pstore;

// The top 1% (largest) of the given per-window percentile values,
// ascending — the x axis of one CDF curve.
std::vector<double> TopOnePercent(const std::vector<WindowStats>& windows,
                                  double WindowStats::*field) {
  std::vector<double> values;
  for (const WindowStats& w : windows) {
    if (w.completed > 0) values.push_back(w.*field);
  }
  std::sort(values.begin(), values.end());
  const size_t keep = std::max<size_t>(10, values.size() / 100);
  return std::vector<double>(values.end() - std::min(keep, values.size()),
                             values.end());
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  PSTORE_CHECK_OK(flags.Parse(argc - 1, argv + 1));
  const StatusOr<int64_t> threads = flags.GetInt("threads", 0);
  PSTORE_CHECK_OK(threads.status());

  bench::PrintHeader(
      "Figure 10: CDFs of the top 1% of per-second p50/p95/p99 latencies",
      "reactive worst everywhere; static-4 loses badly at p95/p99; "
      "P-Store close to static-10");

  struct Config {
    const char* label;
    Strategy strategy;
    int nodes;
  };
  const Config configs[] = {
      {"Static-10", Strategy::kStatic, 10},
      {"Static-4", Strategy::kStatic, 4},
      {"Reactive", Strategy::kReactive, 4},
      {"P-Store", Strategy::kPredictive, 4},
  };

  auto csv = bench::OpenCsv("fig10_latency_cdfs.csv");
  if (csv) {
    csv->WriteRow({"approach", "percentile", "cum_prob", "latency_ms"});
  }

  struct Curves {
    std::string label;
    std::vector<double> p50;
    std::vector<double> p95;
    std::vector<double> p99;
  };
  std::vector<bench::EngineRunConfig> run_configs;
  for (const Config& config : configs) {
    bench::EngineRunConfig run_config;
    run_config.spec.label = config.label;
    run_config.spec.strategy = config.strategy;
    run_config.nodes = config.nodes;
    run_config.replay_days = 2;
    run_configs.push_back(run_config);
  }
  const std::vector<bench::EngineRunResult> runs =
      bench::RunEngineExperiments(run_configs, static_cast<int>(*threads));

  std::vector<Curves> all;
  for (size_t c = 0; c < runs.size(); ++c) {
    const bench::EngineRunResult& run = runs[c];
    Curves curves;
    curves.label = configs[c].label;
    curves.p50 = TopOnePercent(run.windows, &WindowStats::p50_ms);
    curves.p95 = TopOnePercent(run.windows, &WindowStats::p95_ms);
    curves.p99 = TopOnePercent(run.windows, &WindowStats::p99_ms);
    all.push_back(std::move(curves));
  }

  const char* percentile_names[] = {"p50", "p95", "p99"};
  for (int which = 0; which < 3; ++which) {
    std::printf("\nTop-1%% CDF of per-second %s latencies (ms):\n",
                percentile_names[which]);
    std::printf("%-12s %8s %8s %8s %8s %8s\n", "approach", "min", "25%",
                "50%", "75%", "max");
    for (const Curves& curves : all) {
      const std::vector<double>& v = which == 0   ? curves.p50
                                     : which == 1 ? curves.p95
                                                  : curves.p99;
      if (v.empty()) continue;
      auto at = [&](double q) {
        return v[std::min(v.size() - 1,
                          static_cast<size_t>(q * (v.size() - 1)))];
      };
      std::printf("%-12s %8.0f %8.0f %8.0f %8.0f %8.0f\n",
                  curves.label.c_str(), at(0.0), at(0.25), at(0.5), at(0.75),
                  at(1.0));
      if (csv) {
        for (size_t i = 0; i < v.size(); ++i) {
          csv->WriteRow({curves.label, percentile_names[which],
                         std::to_string(static_cast<double>(i + 1) /
                                        static_cast<double>(v.size())),
                         std::to_string(v[i])});
        }
      }
    }
  }
  std::printf(
      "\nShape check: the reactive curve sits far right of P-Store for "
      "p95/p99 (its tail latencies are worse); static-10 is the leftmost "
      "curve.\n");
  bench::CloseCsv(csv.get());
  return 0;
}
