// Figure 7: increasing throughput on a single machine until it can no
// longer keep up. The paper measures saturation at ~438 txn/s with 6
// partitions per server and sets Q-hat = 350 (80%) and Q = 285 (65%).
// Our engine's service-time model is calibrated to the same knee.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "b2w/procedures.h"
#include "b2w/workload.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/time_series.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/metrics.h"
#include "engine/txn_executor.h"
#include "engine/workload_driver.h"

int main() {
  using namespace pstore;
  bench::PrintHeader(
      "Figure 7: single-server saturation ramp (6 partitions)",
      "latency stays low until ~438 txn/s, then explodes; "
      "Q-hat = 350, Q = 285");

  ClusterOptions cluster_options;
  cluster_options.partitions_per_node = 6;
  cluster_options.max_nodes = 1;
  cluster_options.initial_nodes = 1;
  cluster_options.num_buckets = 600;
  Cluster cluster(cluster_options);

  MetricsCollector metrics(1.0);
  TxnExecutor executor(&cluster, &metrics, ExecutorOptions{});
  PSTORE_CHECK_OK(b2w::RegisterProcedures(&executor));

  b2w::B2wWorkloadOptions workload_options;
  workload_options.cart_pool = 30000;
  workload_options.checkout_pool = 12000;
  b2w::Workload workload(workload_options);
  PSTORE_CHECK_OK(workload.LoadInitialData(&cluster));

  // Ramp: 60 steps of 40 s, from 50 to 640 txn/s.
  TimeSeries ramp(40.0);
  for (int step = 0; step < 60; ++step) {
    ramp.Append(50.0 + 10.0 * step);
  }
  EventLoop loop;
  DriverOptions driver_options;
  driver_options.slot_sim_seconds = 40.0;
  driver_options.rate_factor = 1.0;
  WorkloadDriver driver(
      &loop, &executor, ramp,
      [&workload](Rng& rng) { return workload.NextTransaction(rng); },
      driver_options);
  const SimTime end = FromSeconds(60 * 40.0);
  driver.Start(end);
  loop.RunUntil(end);

  const auto windows = metrics.Finalize(end);
  auto csv = bench::OpenCsv("fig07_single_node_saturation.csv");
  if (csv) {
    csv->WriteRow({"offered_txn_s", "completed_txn_s", "p50_ms", "p99_ms"});
  }
  std::printf("%12s %12s %10s %10s\n", "offered", "completed", "p50(ms)",
              "p99(ms)");
  double saturation_rate = 0.0;
  for (int step = 0; step < 60; ++step) {
    // Average the last 20 of each step's 40 windows (steady-ish state).
    int64_t completed = 0;
    double p50 = 0.0;
    double p99 = 0.0;
    int counted = 0;
    for (int w = step * 40 + 20; w < (step + 1) * 40; ++w) {
      completed += windows[w].completed;
      p50 += windows[w].p50_ms;
      p99 += windows[w].p99_ms;
      ++counted;
    }
    const double offered = ramp[step];
    const double rate = static_cast<double>(completed) / counted;
    p50 /= counted;
    p99 /= counted;
    if (csv) csv->WriteNumericRow({offered, rate, p50, p99});
    if (step % 4 == 0 || (offered > 400 && offered < 500)) {
      std::printf("%12.0f %12.1f %10.1f %10.1f\n", offered, rate, p50, p99);
    }
    if (saturation_rate == 0.0 && p99 > 500.0) {
      saturation_rate = offered;
    }
  }
  // The paper's criterion: the rate at which the server "can no longer
  // keep up" — the completed-throughput plateau.
  double plateau = 0.0;
  for (int step = 0; step < 60; ++step) {
    int64_t completed = 0;
    int counted = 0;
    for (int w = step * 40 + 20; w < (step + 1) * 40; ++w) {
      completed += windows[w].completed;
      ++counted;
    }
    plateau = std::max(plateau, static_cast<double>(completed) / counted);
  }
  std::printf(
      "\nMeasured saturation: throughput plateaus at %.0f txn/s (paper: "
      "~438); p99 first exceeds 500 ms at %.0f txn/s offered.\n",
      plateau, saturation_rate);
  std::printf("Derived operating points: Q-hat = %.0f (80%%), Q = %.0f "
              "(65%%) — the paper uses 350 and 285.\n",
              plateau * 0.8, plateau * 0.65);
  bench::CloseCsv(csv.get());
  return 0;
}
