// Microbenchmarks for the predictors: SPAR/AR/ARMA fitting cost on a
// 4-week minute-granularity history, and per-forecast cost.

#include <benchmark/benchmark.h>

#include "micro_util.h"

#include "common/time_series.h"
#include "prediction/ar_model.h"
#include "prediction/arma_model.h"
#include "prediction/spar_model.h"
#include "trace/b2w_trace_generator.h"

namespace pstore {
namespace {

TimeSeries TrainingTrace() {
  B2wTraceOptions options;
  options.days = 29;
  options.seed = 42;
  return GenerateB2wTrace(options);
}

void BM_SparFit(benchmark::State& state) {
  const TimeSeries trace = TrainingTrace();
  const TimeSeries training = trace.Slice(0, 28 * 1440);
  SparOptions options;
  options.period = 1440;
  options.num_periods = 7;
  options.num_recent = 30;
  options.max_tau = static_cast<size_t>(state.range(0));
  options.tau_stride = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    SparPredictor spar(options);
    benchmark::DoNotOptimize(spar.Fit(training));
  }
}
BENCHMARK(BM_SparFit)
    ->Args({1, 1})
    ->Args({60, 1})
    ->Args({240, 5})
    ->Unit(benchmark::kMillisecond);

void BM_SparPredictHorizon(benchmark::State& state) {
  const TimeSeries trace = TrainingTrace();
  SparOptions options;
  options.period = 1440;
  options.num_periods = 7;
  options.num_recent = 30;
  options.max_tau = 240;
  options.tau_stride = 5;
  SparPredictor spar(options);
  if (!spar.Fit(trace.Slice(0, 28 * 1440)).ok()) {
    state.SkipWithError("fit failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(spar.PredictHorizon(trace, 240));
  }
}
BENCHMARK(BM_SparPredictHorizon)->Unit(benchmark::kMicrosecond);

void BM_ArFit(benchmark::State& state) {
  const TimeSeries training = TrainingTrace().Slice(0, 28 * 1440);
  ArOptions options;
  options.order = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    ArPredictor ar(options);
    benchmark::DoNotOptimize(ar.Fit(training));
  }
}
BENCHMARK(BM_ArFit)->Arg(10)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_ArmaFit(benchmark::State& state) {
  const TimeSeries training = TrainingTrace().Slice(0, 28 * 1440);
  ArmaOptions options;
  for (auto _ : state) {
    ArmaPredictor arma(options);
    benchmark::DoNotOptimize(arma.Fit(training));
  }
}
BENCHMARK(BM_ArmaFit)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pstore

PSTORE_MICRO_BENCH_MAIN("predictor")
