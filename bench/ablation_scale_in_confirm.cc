// Ablation: the scale-in confirmation heuristic (§6: the controller
// waits for three agreeing prediction cycles before shedding machines).
// Without it, transient dips cause scale-in/scale-out flapping — each
// flap is a reconfiguration with migration overhead; with an overly
// long confirmation the cluster holds surplus machines after the peak.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/flags.h"
#include "common/status.h"

int main(int argc, char** argv) {
  using namespace pstore;
  FlagParser flags;
  PSTORE_CHECK_OK(flags.Parse(argc - 1, argv + 1));
  const StatusOr<int64_t> threads = flags.GetInt("threads", 0);
  PSTORE_CHECK_OK(threads.status());

  bench::PrintHeader(
      "Ablation: scale-in confirmation cycles (paper uses 3)",
      "too few -> reconfiguration flapping; too many -> paying for idle "
      "machines after the peak");

  auto csv = bench::OpenCsv("ablation_scale_in_confirm.csv");
  if (csv) {
    csv->WriteRow({"confirm_cycles", "reconfigurations", "avg_machines",
                   "p95_violations", "p99_violations"});
  }
  std::printf("%14s %16s %14s %10s %10s\n", "confirm cycles",
              "reconfigurations", "avg machines", "p95 viol", "p99 viol");
  const std::vector<int> confirm_cycles = {1, 3, 10, 30};
  std::vector<bench::EngineRunConfig> configs;
  for (const int cycles : confirm_cycles) {
    bench::EngineRunConfig config;
    config.spec.label = "confirm-" + std::to_string(cycles);
    config.spec.strategy = Strategy::kPredictive;
    config.nodes = 4;
    config.replay_days = 2;
    config.scale_in_confirm_cycles = cycles;
    configs.push_back(config);
  }
  const std::vector<bench::EngineRunResult> runs =
      bench::RunEngineExperiments(configs, static_cast<int>(*threads));
  for (size_t c = 0; c < runs.size(); ++c) {
    const int cycles = confirm_cycles[c];
    const bench::EngineRunResult& run = runs[c];
    std::printf("%14d %16d %14.2f %10lld %10lld\n", cycles,
                run.reconfigurations, run.avg_machines,
                static_cast<long long>(run.violations.p95),
                static_cast<long long>(run.violations.p99));
    if (csv) {
      csv->WriteRow({std::to_string(cycles),
                     std::to_string(run.reconfigurations),
                     std::to_string(run.avg_machines),
                     std::to_string(run.violations.p95),
                     std::to_string(run.violations.p99)});
    }
  }
  std::printf(
      "\nReading: reconfiguration count drops sharply from 1 to 3 "
      "confirmation cycles at nearly unchanged machine cost — the "
      "paper's heuristic sits at the knee. Very long confirmation "
      "inflates the average machine count.\n");
  bench::CloseCsv(csv.get());
  return 0;
}
