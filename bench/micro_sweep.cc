// Microbenchmarks for the parallel sweep runtime: RunSweep over a
// fig12-style strategy grid at several worker-thread counts (the
// speedup/efficiency headline), plus the raw dispatch overhead of
// ThreadPool::ParallelFor. Results land in BENCH_micro_sweep.json.
//
// The sweep output is bit-identical across thread counts (verified by
// tests/run_sweep_test.cc); this benchmark measures only the wall-clock
// side of that guarantee.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/time_series.h"
#include "micro_util.h"
#include "prediction/spar_model.h"
#include "sim/capacity_simulator.h"
#include "sim/run_spec.h"
#include "trace/b2w_trace_generator.h"

namespace pstore {
namespace {

constexpr int kDays = 21;
constexpr int kTrainDays = 14;

// Trace and predictor are built once and shared read-only by every
// spec, exactly as fig12 does at full scale.
const TimeSeries& BenchTrace() {
  static const TimeSeries* const trace = [] {
    B2wTraceOptions options;
    options.days = kDays;
    options.seed = 42;
    options.peak_requests_per_min = 10500.0;
    return new TimeSeries(GenerateB2wTrace(options).Scaled(10.0 / 60.0));
  }();
  return *trace;
}

const SparPredictor& BenchSpar() {
  static const SparPredictor* const spar = [] {
    SparOptions options;
    options.period = 1440 / 5;
    options.num_periods = 7;
    options.num_recent = 6;
    options.max_tau = 36;
    auto* predictor = new SparPredictor(options);
    PSTORE_CHECK_OK(predictor->Fit(
        BenchTrace().DownsampleMean(5).Slice(0, kTrainDays * 288)));
    return predictor;
  }();
  return *spar;
}

std::vector<RunSpec> BenchSpecs() {
  RunSpec base;
  base.workload.kind = WorkloadSpec::Kind::kProvided;
  base.workload.provided = &BenchTrace();
  base.sim.plan_slot_factor = 5;
  base.sim.horizon_plan_slots = 36;
  base.sim.q = 285.0;
  base.sim.q_hat = 350.0;
  base.sim.d_fine_slots = 77.0;
  base.sim.partitions_per_node = 6;
  base.sim.initial_nodes = 4;
  base.sim.max_nodes = 60;
  base.sim.eval_begin = kTrainDays * 1440;

  std::vector<RunSpec> specs;
  for (const double q : {240.0, 285.0, 320.0}) {
    RunSpec spec = base;
    spec.label = "spar-q" + std::to_string(static_cast<int>(q));
    spec.strategy = Strategy::kPredictive;
    spec.sim.q = q;
    spec.predictor = &BenchSpar();
    specs.push_back(spec);
  }
  for (const double watermark : {1.0, 0.8}) {
    RunSpec spec = base;
    spec.label = "reactive-w" + std::to_string(static_cast<int>(watermark * 10));
    spec.strategy = Strategy::kReactive;
    spec.reactive.high_watermark = watermark;
    specs.push_back(spec);
  }
  for (const int day_nodes : {10, 16}) {
    RunSpec spec = base;
    spec.label = "simple-d" + std::to_string(day_nodes);
    spec.strategy = Strategy::kSimple;
    spec.simple.day_nodes = day_nodes;
    spec.simple.night_nodes = 3;
    specs.push_back(spec);
  }
  for (const int nodes : {4, 8, 14}) {
    RunSpec spec = base;
    spec.label = "static-" + std::to_string(nodes);
    spec.strategy = Strategy::kStatic;
    spec.static_nodes = nodes;
    specs.push_back(spec);
  }
  return specs;
}

// One full sweep of the grid; state.range(0) = worker threads. With one
// hardware core the >1-thread numbers show pool overhead only; on a
// multi-core box threads=4 should cut wall time by >= 2x vs threads=1
// (the ISSUE's acceptance bar).
void BM_RunSweep(benchmark::State& state) {
  const std::vector<RunSpec> specs = BenchSpecs();
  SweepOptions options;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    StatusOr<SweepResult> sweep = RunSweep(specs, options);
    PSTORE_CHECK_OK(sweep.status());
    benchmark::DoNotOptimize(sweep->results.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(specs.size()));
}
// benchmark::kMillisecond is the benchmark library enumerator, not the
// common/sim_time.h constant.  pstore-analyze: allow(include)
BENCHMARK(BM_RunSweep)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

// Pool construction + one ParallelFor over trivial bodies: the fixed
// dispatch overhead a sweep pays before any real work happens.
void BM_ParallelForDispatch(benchmark::State& state) {
  ThreadPool pool(static_cast<int>(state.range(0)));
  std::vector<size_t> sink(64, 0);
  for (auto _ : state) {
    pool.ParallelFor(sink.size(), [&sink](size_t i) { sink[i] = i; });
    benchmark::DoNotOptimize(sink.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(sink.size()));
}
BENCHMARK(BM_ParallelForDispatch)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace pstore

PSTORE_MICRO_BENCH_MAIN("sweep")
