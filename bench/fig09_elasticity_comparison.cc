// Figure 9: three days of the B2W benchmark (10x accelerated) under four
// elasticity approaches: (a) static 10 machines, (b) static 4 machines,
// (c) reactive provisioning, (d) P-Store with SPAR. The paper's result:
// static-10 is clean but wasteful, static-4 cheap but slow at peak,
// reactive spikes latency at every ramp, and P-Store reconfigures ahead
// of demand with few violations at ~half the machines of static-10.
//
// The four runs are independent, so they are evaluated concurrently on
// the deterministic thread pool (--threads N, default: hardware
// concurrency); results are identical for any thread count.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/flags.h"
#include "common/status.h"

int main(int argc, char** argv) {
  using namespace pstore;
  FlagParser flags;
  PSTORE_CHECK_OK(flags.Parse(argc - 1, argv + 1));
  const StatusOr<int64_t> threads = flags.GetInt("threads", 0);
  PSTORE_CHECK_OK(threads.status());

  bench::PrintHeader(
      "Figure 9: comparison of elasticity approaches (3-day B2W replay)",
      "P-Store: few latency spikes at ~5 machines avg; reactive: spikes "
      "at every ramp; static-10 clean; static-4 overloaded at peak");

  struct Config {
    const char* label;
    Strategy strategy;
    int nodes;
    const char* csv;
  };
  const Config configs[] = {
      {"Static-10", Strategy::kStatic, 10, "fig09a_static10.csv"},
      {"Static-4", Strategy::kStatic, 4, "fig09b_static4.csv"},
      {"Reactive", Strategy::kReactive, 4, "fig09c_reactive.csv"},
      {"P-Store", Strategy::kPredictive, 4, "fig09d_pstore.csv"},
  };

  std::vector<bench::EngineRunConfig> run_configs;
  for (const Config& config : configs) {
    bench::EngineRunConfig run_config;
    run_config.spec.label = config.label;
    run_config.spec.strategy = config.strategy;
    run_config.nodes = config.nodes;
    run_config.replay_days = 3;
    run_configs.push_back(run_config);
  }
  const std::vector<bench::EngineRunResult> runs =
      bench::RunEngineExperiments(run_configs, static_cast<int>(*threads));

  for (size_t c = 0; c < runs.size(); ++c) {
    const Config& config = configs[c];
    const bench::EngineRunResult& run = runs[c];
    bench::PrintRunSummary(config.label, run);

    auto csv = bench::OpenCsv(config.csv);
    if (csv) {
      csv->WriteRow({"t_seconds", "throughput_txn_s", "avg_latency_ms",
                     "p99_ms", "machines", "migrating"});
      // 10-second aggregation, matching the paper's plotting window.
      for (size_t w = 0; w + 10 <= run.windows.size(); w += 10) {
        double completed = 0;
        double p50 = 0;
        double p99 = 0;
        int machines = 0;
        bool migrating = false;
        for (size_t i = w; i < w + 10; ++i) {
          completed += static_cast<double>(run.windows[i].completed);
          p50 = std::max(p50, run.windows[i].p50_ms);
          p99 = std::max(p99, run.windows[i].p99_ms);
          machines = run.windows[i].machines;
          migrating = migrating || run.windows[i].migrating;
        }
        csv->WriteNumericRow({run.windows[w].start_seconds, completed / 10.0,
                              p50, p99, static_cast<double>(machines),
                              migrating ? 1.0 : 0.0});
      }
    }
    bench::CloseCsv(csv.get());

    // Console: a coarse hourly picture of machines + p99.
    std::printf("    %-10s", "t(h):");
    for (size_t w = 0; w < run.windows.size(); w += 3600) {
      std::printf("%5.0f", run.windows[w].start_seconds / 3600.0);
    }
    std::printf("\n    %-10s", "machines:");
    for (size_t w = 0; w < run.windows.size(); w += 3600) {
      std::printf("%5d", run.windows[w].machines);
    }
    std::printf("\n    %-10s", "p99(ms):");
    for (size_t w = 0; w < run.windows.size(); w += 3600) {
      double p99 = 0;
      for (size_t i = w; i < std::min(w + 3600, run.windows.size()); ++i) {
        p99 = std::max(p99, run.windows[i].p99_ms);
      }
      std::printf("%5.0f", p99);
    }
    std::printf("\n\n");
  }
  std::printf(
      "Shape check: reactive shows p99 spikes at the daily ramps that "
      "P-Store avoids; P-Store's machine line stays above the load curve "
      "(see CSVs under bench_out/).\n");
  return 0;
}
