// Ablation: what do the three-phase schedule's two tricks buy?
//  (1) Just-in-time allocation: machines come up only when they start
//      receiving, vs allocating all target machines at move start.
//  (2) The phase-2 partial fill: keeps all senders busy every round, vs
//      a block-by-block schedule whose remainder block can only use r
//      senders (paper §4.4.1: 3 -> 14 takes 11 rounds instead of >= 12).

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/status.h"
#include "common/strong_id.h"
#include "planner/migration_schedule.h"
#include "planner/move_model.h"

namespace {

using namespace pstore;

// Rounds needed by a naive block-by-block schedule without the phase-2
// partial fill: full blocks of s receivers take s rounds each; the
// remainder block of r receivers can only run r transfers per round, so
// its r*s transfers take s... no — ceil(r*s / r) = s rounds of r
// transfers each, during which s - r senders idle.
int NaiveRounds(int smaller, int larger) {
  const int delta = larger - smaller;
  if (delta <= smaller) return smaller;
  const int full_blocks = delta / smaller;
  const int r = delta % smaller;
  return full_blocks * smaller + (r > 0 ? smaller : 0);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: three-phase migration schedule vs naive alternatives",
      "Table 1 / §4.4.1: 11 rounds for 3->14 (naive >= 12); JIT "
      "allocation cuts machine-time during the move");

  auto csv = bench::OpenCsv("ablation_three_phase.csv");
  if (csv) {
    csv->WriteRow({"move", "rounds_3phase", "rounds_naive", "avg_mach_jit",
                   "avg_mach_all_at_once", "cost_saving_percent"});
  }

  PlannerParams params;
  params.target_rate_per_node = 1.0;
  params.d_slots = 1.0;
  params.partitions_per_node = 1;

  std::printf("%-10s %10s %10s %12s %14s %12s\n", "move", "rounds",
              "naive rds", "avg mach", "all-at-once", "cost saved");
  const int moves[][2] = {{3, 14}, {3, 9},  {3, 5},   {2, 7},
                          {5, 12}, {4, 18}, {6, 23},  {10, 24},
                          {14, 3}, {12, 5}, {24, 10}, {7, 2}};
  for (const auto& move : moves) {
    const int b = move[0];
    const int a = move[1];
    StatusOr<MigrationSchedule> schedule = BuildMigrationSchedule(NodeCount(b), NodeCount(a));
    if (!schedule.ok()) continue;
    const int smaller = std::min(b, a);
    const int larger = std::max(b, a);
    const int naive_rounds = NaiveRounds(smaller, larger);
    const double avg_jit = AvgMachinesAllocated(NodeCount(b), NodeCount(a));
    const double avg_all = larger;  // allocate everything up front
    const double saving = 100.0 * (avg_all - avg_jit) / avg_all;
    char label[16];
    std::snprintf(label, sizeof(label), "%d->%d", b, a);
    std::printf("%-10s %10zu %10d %12.2f %14.2f %11.1f%%\n", label,
                schedule->rounds.size(), naive_rounds, avg_jit, avg_all,
                saving);
    if (csv) {
      csv->WriteRow({label, std::to_string(schedule->rounds.size()),
                     std::to_string(naive_rounds), std::to_string(avg_jit),
                     std::to_string(avg_all), std::to_string(saving)});
    }
  }
  std::printf(
      "\nReading: whenever delta %% smaller != 0 the three-phase schedule "
      "saves at least one round over block-by-block, and just-in-time "
      "allocation shaves 10-30%% off the machine-time bill of large "
      "moves (Eq. 4's avg-mach-alloc vs the full target count).\n");
  bench::CloseCsv(csv.get());
  return 0;
}
