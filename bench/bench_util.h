#ifndef PSTORE_BENCH_BENCH_UTIL_H_
#define PSTORE_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/csv_writer.h"
#include "common/time_series.h"
#include "engine/metrics.h"
#include "fault/fault_schedule.h"
#include "sim/run_spec.h"

namespace pstore {
namespace bench {

// Prints a figure/table banner with the paper reference.
void PrintHeader(const std::string& experiment, const std::string& claim);

// Opens a CSV under bench_out/ (created on demand); returns nullptr when
// the directory cannot be created (output then goes to stdout only).
std::unique_ptr<CsvWriter> OpenCsv(const std::string& name);

// Closes a CSV opened with OpenCsv and surfaces any buffered I/O failure
// on stderr, so a bench never reports success over a truncated file.
// Null writers are ignored (the bench ran without CSV output).
void CloseCsv(CsvWriter* csv);

// ---- Shared engine experiment (Figs. 7-11, Table 2) ------------------------

// Configuration of one engine run replaying the B2W benchmark at 10x
// acceleration (paper §7: one trace minute = 6 simulated seconds).
//
// The run description lives in `spec` (sim/run_spec.h), the same type
// the capacity-simulator sweeps and CLI tools construct:
//   spec.label    - name used in banners and the run.summary event
//   spec.strategy - kPredictive / kReactive / kStatic (kSimple has no
//                   engine controller and is rejected)
//   spec.seed     - trace generator seed; equal seeds, equal workloads
//   spec.tracer   - optional structured tracer wired through the whole
//                   stack (engine, driver, migration, predictor,
//                   controller, faults). The run emits sla.window events
//                   for violating windows and a final run.summary; the
//                   caller owns the tracer and must Close() it after the
//                   run.
// spec.workload is derived from the knobs below by EngineWorkload();
// callers leave it default-constructed.
struct EngineRunConfig {
  EngineRunConfig() {
    spec.label = "P-Store";
    spec.strategy = Strategy::kPredictive;
    spec.seed = 42;
  }

  RunSpec spec;
  // kPredictive only: drive the controller with a perfect oracle model
  // instead of SPAR (the paper's "P-Store Oracle" variant).
  bool oracle_predictor = false;
  // kPredictive only (and ignored under oracle_predictor): predictor
  // spec string (prediction/predictor_spec.h) for the online model —
  // e.g. "shift(spar(n=7,m=30))" or "ensemble(spar,ar,hw)". Empty keeps
  // the paper's SPAR(7,30) defaults. Must parse; the run CHECKs.
  std::string predictor_spec;
  // Optional refit-policy spec ("interval(slots=N)", "shift(...)" — see
  // prediction/refit_policy.h). Empty keeps the weekly interval refit.
  std::string refit_policy;
  // Days of trace replayed (after the training window).
  int replay_days = 3;
  // Days of history used to train SPAR (and to warm the predictor).
  int training_days = 28;
  // Machines for kStatic; initial machines otherwise.
  int nodes = 4;
  // Inject an unexpected flash-crowd spike (Fig. 11)?
  bool inject_spike = false;
  double spike_magnitude = 2.2;
  // Migration rate multiplier used by the predictive fallback.
  bool fast_reactive_fallback = false;
  // Scale-in confirmation cycles for the predictive controller (§6).
  int scale_in_confirm_cycles = 3;
  // Scale factor on the workload (and pools) to trade fidelity for run
  // time; 1.0 = paper scale (~2800 txn/s peak, ~1.1 GB database).
  double scale = 1.0;
  // Trace day carrying the Black-Friday surge (-1 = none); passed to the
  // trace generator, so it works in both training and replay windows.
  int black_friday_day = -1;
  // Scripted fault events injected during the replay (empty = no fault
  // injection; event times are simulated seconds from replay start).
  std::vector<FaultEvent> faults;
};

// Human-readable approach name derived from the spec ("Static",
// "Reactive", "P-Store (SPAR)", "P-Store (Oracle)").
const char* EngineApproachLabel(const EngineRunConfig& config);

// Result of one run: per-second window stats plus summary numbers.
struct EngineRunResult {
  std::vector<WindowStats> windows;
  SlaViolations violations;
  // Violations split into fault / migration / baseline windows.
  SlaAttribution attribution;
  double avg_machines = 0.0;
  int64_t committed = 0;
  int64_t aborted = 0;
  int64_t unavailable = 0;
  double duration_seconds = 0.0;
  int reconfigurations = 0;
  // Fault-recovery counters; nonzero only when faults were injected.
  int failed_reconfigurations = 0;
  int64_t chunk_retries = 0;
};

// Runs the full engine experiment for one approach. Deterministic for a
// given config.
EngineRunResult RunEngineExperiment(const EngineRunConfig& config);

// Runs independent engine experiments concurrently on a deterministic
// ThreadPool (threads < 1 = hardware concurrency) and returns results by
// config index, so the output is identical to running each serially.
// Concurrent configs must not share a spec.tracer (checked).
std::vector<EngineRunResult> RunEngineExperiments(
    const std::vector<EngineRunConfig>& configs, int threads);

// The workload description behind EngineTrace: a seeded B2W synthetic
// trace (txn/s units at 10x acceleration) including the training prefix,
// plus the optional Fig. 11 flash-crowd spike.
WorkloadSpec EngineWorkload(const EngineRunConfig& config);

// The per-minute B2W load trace used by the engine runs (txn/s units at
// 10x acceleration), including training prefix.
TimeSeries EngineTrace(const EngineRunConfig& config);

// Prints the standard summary block for a run.
void PrintRunSummary(const std::string& label, const EngineRunResult& run);

}  // namespace bench
}  // namespace pstore

#endif  // PSTORE_BENCH_BENCH_UTIL_H_
