// Figure 6: SPAR on the hourly Wikipedia page-view loads. The English
// edition is strongly periodic and predicts well; the German edition is
// noisier — error visibly higher but still under ~10% for 2 hours ahead
// and ~13% at 6 hours.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/status.h"
#include "common/time_series.h"
#include "prediction/predictor.h"
#include "prediction/predictor_spec.h"
#include "trace/wikipedia_trace_generator.h"

namespace {

using namespace pstore;

void RunEdition(WikipediaEdition edition, const char* name,
                CsvWriter* csv) {
  WikipediaTraceOptions trace_options;
  trace_options.edition = edition;
  trace_options.days = 35;  // 4 weeks training + 1 week evaluation
  trace_options.seed = 7;
  const TimeSeries trace = GenerateWikipediaTrace(trace_options);
  const size_t train_end = 28 * 24;

  // Registry-built SPAR, daily cycle on hourly slots; identical numbers
  // to constructing SparPredictor directly.
  PredictorContext context;
  context.period = 24;
  context.max_tau = 6;
  StatusOr<std::unique_ptr<LoadPredictor>> made =
      MakePredictor("spar(n=7,m=6)", context);
  if (!made.ok()) {
    std::printf("%s: make failed: %s\n", name,
                made.status().ToString().c_str());
    return;
  }
  LoadPredictor& spar = **made;
  const Status fit = spar.Fit(trace.Slice(0, train_end));
  if (!fit.ok()) {
    std::printf("%s: fit failed: %s\n", name, fit.ToString().c_str());
    return;
  }

  std::printf("\n%s Wikipedia (peak %.2g req/hour):\n", name, trace.Max());
  std::printf("%10s %12s\n", "tau(hours)", "MRE %%");
  for (size_t tau = 1; tau <= 6; ++tau) {
    const StatusOr<EvaluationResult> eval =
        EvaluatePredictor(spar, trace, train_end, tau);
    if (!eval.ok()) continue;
    std::printf("%10zu %12.2f\n", tau, 100.0 * eval->mre);
    if (csv) {
      csv->WriteRow({name, std::to_string(tau),
                     std::to_string(100.0 * eval->mre)});
    }
  }
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 6: SPAR on Wikipedia hourly page views (en and de)",
      "en predicts best; de error < ~10% at 2h, ~13% at 6h");
  auto csv = bench::OpenCsv("fig06_spar_wikipedia.csv");
  if (csv) csv->WriteRow({"edition", "tau_hours", "mre_percent"});
  RunEdition(WikipediaEdition::kEnglish, "English", csv.get());
  RunEdition(WikipediaEdition::kGerman, "German", csv.get());
  std::printf(
      "\nShape check: German-language error exceeds English at every tau, "
      "matching Fig. 6b.\n");
  bench::CloseCsv(csv.get());
  return 0;
}
