// Ablation: does the planner need Eq. 7's effective-capacity model, or
// would "new machines serve immediately" (the stateless assumption of
// data-center provisioning systems, §9) do? We plan a predicted ramp
// with both beliefs and then audit each plan against the *true*
// effective capacity: the naive plan schedules its scale-out so late
// that capacity is missing exactly while data is in flight — the
// under-provisioning Fig. 4c warns about.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/status.h"
#include "common/strong_id.h"
#include "planner/dp_planner.h"
#include "planner/move.h"
#include "planner/move_model.h"

namespace {

using namespace pstore;

struct Audit {
  double cost = 0.0;
  int violated_slots = 0;
  double worst_deficit = 0.0;  // max (load - true eff-cap)
  int first_move_start = -1;
};

// Walks the plan and compares the predicted load against the true
// effective capacity implied by each move's progress.
Audit AuditPlan(const PlanResult& plan, const std::vector<double>& load,
                const PlannerParams& true_params) {
  Audit audit;
  audit.cost = plan.total_cost;
  for (const Move& move : plan.moves) {
    if (move.IsReconfiguration() && audit.first_move_start < 0) {
      audit.first_move_start = move.start_slot.value();
    }
    const int duration = move.DurationSlots();
    for (int i = 1; i <= duration; ++i) {
      const double f = static_cast<double>(i) / duration;
      const double cap = EffectiveCapacity(move.nodes_before,
                                           move.nodes_after, f, true_params);
      const double deficit =
          load[static_cast<size_t>(move.start_slot.value() + i)] - cap;
      if (deficit > 1e-9) {
        ++audit.violated_slots;
        audit.worst_deficit = std::max(audit.worst_deficit, deficit);
      }
    }
  }
  return audit;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: effective-capacity planning (Eq. 7) vs instant-capacity "
      "assumption",
      "DESIGN.md decision 2 / Fig. 4c: ignoring migration lag leaves the "
      "cluster under water exactly while data is in flight");

  // One partition per machine, D = 12 slots: moves take several slots,
  // as in Fig. 4. Q = 100 per machine.
  PlannerParams params;
  params.target_rate_per_node = 100.0;
  params.max_rate_per_node = 120.0;
  params.d_slots = 12.0;
  params.partitions_per_node = 1;

  auto csv = bench::OpenCsv("ablation_effective_capacity.csv");
  if (csv) {
    csv->WriteRow({"ramp_slots", "planner", "cost", "move_start",
                   "violated_slots", "worst_deficit"});
  }

  std::printf("%10s %-20s %10s %12s %16s %14s\n", "ramp", "planner", "cost",
              "move start", "violated slots", "worst deficit");
  for (const int ramp_slots : {12, 8, 5}) {
    // Load: 280 flat, then a linear ramp to 1150 (3 -> 12 machines)
    // completing `ramp_slots` before the horizon ends.
    std::vector<double> load;
    const int horizon = 40;
    const int ramp_end = 32;
    for (int t = 0; t <= horizon; ++t) {
      double value;
      if (t <= ramp_end - ramp_slots) {
        value = 280.0;
      } else if (t >= ramp_end) {
        value = 1150.0;
      } else {
        const double f = static_cast<double>(t - (ramp_end - ramp_slots)) /
                         ramp_slots;
        value = 280.0 + f * (1150.0 - 280.0);
      }
      load.push_back(value);
    }

    for (const bool naive : {false, true}) {
      PlannerParams plan_params = params;
      plan_params.assume_instant_capacity = naive;
      const DpPlanner planner(plan_params);
      StatusOr<PlanResult> plan = planner.BestMoves(load, NodeCount(3));
      const char* name = naive ? "instant-capacity" : "effective-capacity";
      if (!plan.ok()) {
        std::printf("%10d %-20s %10s\n", ramp_slots, name, "infeasible");
        continue;
      }
      const Audit audit = AuditPlan(*plan, load, params);
      std::printf("%10d %-20s %10.1f %12d %16d %14.0f\n", ramp_slots, name,
                  audit.cost, audit.first_move_start, audit.violated_slots,
                  audit.worst_deficit);
      if (csv) {
        csv->WriteRow({std::to_string(ramp_slots), name,
                       std::to_string(audit.cost),
                       std::to_string(audit.first_move_start),
                       std::to_string(audit.violated_slots),
                       std::to_string(audit.worst_deficit)});
      }
    }
  }
  std::printf(
      "\nReading: the instant-capacity plan is a bit cheaper and starts "
      "its scale-out later, but auditing it against the true effective "
      "capacity shows capacity deficits during the migration on steep "
      "ramps — the Eq. 7 model trades a few machine-slots for zero "
      "under-provisioning. (In the full system P-Store's Q-hat slack and "
      "15%% inflation partially mask this, which is itself worth "
      "knowing.)\n");
  bench::CloseCsv(csv.get());
  return 0;
}
