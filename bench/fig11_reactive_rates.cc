// Figure 11: when an unexpected load spike makes the predictive plan
// infeasible, P-Store can migrate at the regular rate R (lower migration
// overhead, but capacity arrives late) or at R x 8 (some latency overhead
// during migration, but capacity arrives much sooner). The paper: at R
// the violation counts were 16/101/143 (p50/p95/p99); at R x 8 they were
// 22/44/51 — higher median impact but fewer total violation-seconds.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/flags.h"
#include "common/status.h"

int main(int argc, char** argv) {
  using namespace pstore;
  FlagParser flags;
  PSTORE_CHECK_OK(flags.Parse(argc - 1, argv + 1));
  const StatusOr<int64_t> threads = flags.GetInt("threads", 0);
  PSTORE_CHECK_OK(threads.status());

  bench::PrintHeader(
      "Figure 11: reacting to an unexpected spike at rate R vs R x 8",
      "R x 8 trades a little migration overhead for far fewer "
      "violation-seconds (paper: 143 -> 51 p99 violations)");

  auto csv = bench::OpenCsv("fig11_reactive_rates.csv");
  if (csv) {
    csv->WriteRow({"mode", "p50_violations", "p95_violations",
                   "p99_violations", "avg_machines"});
  }

  const char* labels[2] = {"Rate R", "Rate R x 8"};
  std::vector<bench::EngineRunConfig> configs;
  for (int fast = 0; fast < 2; ++fast) {
    bench::EngineRunConfig config;
    config.spec.label = labels[fast];
    config.spec.strategy = Strategy::kPredictive;
    config.nodes = 4;
    config.replay_days = 1;
    config.inject_spike = true;
    config.spike_magnitude = 2.2;
    config.fast_reactive_fallback = fast == 1;
    configs.push_back(config);
  }
  const std::vector<bench::EngineRunResult> results =
      bench::RunEngineExperiments(configs, static_cast<int>(*threads));
  for (size_t fast = 0; fast < results.size(); ++fast) {
    bench::PrintRunSummary(labels[fast], results[fast]);
    if (csv) {
      csv->WriteRow({labels[fast],
                     std::to_string(results[fast].violations.p50),
                     std::to_string(results[fast].violations.p95),
                     std::to_string(results[fast].violations.p99),
                     std::to_string(results[fast].avg_machines)});
    }
  }

  const long long slow_total = results[0].violations.p95 +
                               results[0].violations.p99;
  const long long fast_total = results[1].violations.p95 +
                               results[1].violations.p99;
  std::printf(
      "\nShape check: tail violation-seconds at R x 8 (%lld) vs R (%lld) "
      "— the faster migration should cut the total substantially "
      "(paper: 95 vs 244).\n",
      fast_total, slow_total);
  bench::CloseCsv(csv.get());
  return 0;
}
