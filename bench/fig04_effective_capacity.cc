// Figure 4: machines allocated and effective capacity over the course of
// three migrations (3->5, 3->9, 3->14), assuming one partition per
// server and time in units of D. The effective capacity lags the machine
// count, dramatically so for large moves — the fact the planner must
// account for (paper §4.4.4).

#include <cstdio>

#include "bench_util.h"
#include "common/strong_id.h"
#include "planner/move_model.h"

int main() {
  using namespace pstore;
  bench::PrintHeader(
      "Figure 4: servers allocated and effective capacity during migration",
      "3->5 tracks closely; 3->14 lags far below allocated machines");

  PlannerParams params;
  params.target_rate_per_node = 1.0;  // capacity in units of Q
  params.d_slots = 1.0;               // time in units of D
  params.partitions_per_node = 1;

  auto csv = bench::OpenCsv("fig04_effective_capacity.csv");
  if (csv) {
    csv->WriteRow({"case", "time_D", "machines_allocated",
                   "effective_capacity"});
  }

  const int cases[][2] = {{3, 5}, {3, 9}, {3, 14}};
  for (const auto& move : cases) {
    const int b = move[0];
    const int a = move[1];
    const double duration = MoveTime(NodeCount(b), NodeCount(a), params);
    std::printf("\nCase %d -> %d machines (move takes %.3f D)\n", b, a,
                duration);
    std::printf("%10s %10s %10s %12s\n", "time(D)", "frac", "machines",
                "eff-cap(Q)");
    const int kSteps = 22;
    for (int i = 0; i <= kSteps; ++i) {
      const double f = static_cast<double>(i) / kSteps;
      const double time_d = f * duration;
      const int machines =
          MachinesAllocatedAt(NodeCount(b), NodeCount(a), f).value();
      const double eff =
          EffectiveCapacity(NodeCount(b), NodeCount(a), f, params);
      std::printf("%10.4f %10.3f %10d %12.3f\n", time_d, f, machines, eff);
      if (csv) {
        char label[16];
        std::snprintf(label, sizeof(label), "%d->%d", b, a);
        csv->WriteRow({label, std::to_string(time_d),
                       std::to_string(machines), std::to_string(eff)});
      }
    }
    std::printf(
        "  avg machines allocated: %.3f (Algorithm 4), eff-cap at f=0.5: "
        "%.2f vs %d machines up\n",
        AvgMachinesAllocated(NodeCount(b), NodeCount(a)),
        EffectiveCapacity(NodeCount(b), NodeCount(a), 0.5, params),
        MachinesAllocatedAt(NodeCount(b), NodeCount(a), 0.5).value());
  }
  std::printf(
      "\nShape check: for 3->14 the effective capacity stays well below "
      "the allocated machine count throughout, as in Fig. 4c.\n");
  bench::CloseCsv(csv.get());
  return 0;
}
