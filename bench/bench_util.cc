#include "bench_util.h"

#include <cstdio>
#include <filesystem>
#include <memory>
#include <utility>
#include <vector>

#include "b2w/procedures.h"
#include "b2w/workload.h"
#include "common/check.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/time_series.h"
#include "controller/predictive_controller.h"
#include "controller/reactive_controller.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/metrics.h"
#include "engine/sharded_loop.h"
#include "engine/txn_executor.h"
#include "engine/workload_driver.h"
#include "fault/fault_injector.h"
#include "fault/fault_schedule.h"
#include "migration/squall_migrator.h"
#include "obs/tracer.h"
#include "planner/move_model.h"
#include "prediction/naive_models.h"
#include "prediction/online_predictor.h"
#include "prediction/predictor.h"
#include "prediction/predictor_spec.h"
#include "prediction/refit_policy.h"
#include "prediction/spar_model.h"
#include "trace/b2w_trace_generator.h"
#include "trace/spike_injector.h"

namespace pstore {
namespace bench {

void PrintHeader(const std::string& experiment, const std::string& claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper reference: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

std::unique_ptr<CsvWriter> OpenCsv(const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  if (ec) return nullptr;
  auto writer = std::make_unique<CsvWriter>("bench_out/" + name);
  if (!writer->ok()) return nullptr;
  return writer;
}

void CloseCsv(CsvWriter* csv) {
  if (csv == nullptr) return;
  const Status closed = csv->Close();
  if (!closed.ok()) {
    std::fprintf(stderr, "warning: %s\n", closed.ToString().c_str());
  }
}

const char* EngineApproachLabel(const EngineRunConfig& config) {
  switch (config.spec.strategy) {
    case Strategy::kStatic:
      return "Static";
    case Strategy::kReactive:
      return "Reactive";
    case Strategy::kPredictive:
      return config.oracle_predictor ? "P-Store (Oracle)" : "P-Store (SPAR)";
    case Strategy::kSimple:
      break;  // no engine controller; rejected by RunEngineExperiment
  }
  return "?";
}

WorkloadSpec EngineWorkload(const EngineRunConfig& config) {
  WorkloadSpec workload;
  workload.kind = WorkloadSpec::Kind::kB2wSynthetic;
  workload.b2w.days = config.training_days + config.replay_days;
  // ~1500 txn/s at 10x acceleration: 10 machines at Q-hat = 350 leave
  // comfortable headroom, 4 do not (the paper's Fig. 9 setup).
  workload.b2w.peak_requests_per_min = 9000.0;
  workload.b2w.seed = config.spec.seed;
  workload.b2w.black_friday_day = config.black_friday_day;
  // req/min -> txn/s at 10x replay speed, scaled.
  workload.scale = 10.0 / 60.0 * config.scale;
  if (config.inject_spike) {
    workload.inject_spike = true;
    // Mid-afternoon of the first replayed day, on the peak's shoulder.
    workload.spike.start_slot =
        static_cast<size_t>(config.training_days) * 1440 + 660;
    workload.spike.ramp_slots = 15;
    workload.spike.sustain_slots = 90;
    workload.spike.decay_slots = 90;
    workload.spike.magnitude = config.spike_magnitude;
  }
  return workload;
}

TimeSeries EngineTrace(const EngineRunConfig& config) {
  StatusOr<TimeSeries> trace = BuildWorkloadTrace(EngineWorkload(config));
  PSTORE_CHECK_OK(trace.status());
  return *std::move(trace);
}

EngineRunResult RunEngineExperiment(const EngineRunConfig& config) {
  // The Simple day/night schedule exists only in the capacity simulator.
  PSTORE_CHECK(config.spec.strategy != Strategy::kSimple);
  const TimeSeries trace = EngineTrace(config);
  const size_t replay_begin =
      static_cast<size_t>(config.training_days) * 1440;

  ClusterOptions cluster_options;
  cluster_options.partitions_per_node = 6;
  cluster_options.max_nodes = 16;
  cluster_options.initial_nodes = config.nodes;
  cluster_options.num_buckets = 3600;
  Cluster cluster(cluster_options);

  MetricsCollector metrics(1.0);
  TxnExecutor executor(&cluster, &metrics, ExecutorOptions{});
  PSTORE_CHECK_OK(b2w::RegisterProcedures(&executor));

  b2w::B2wWorkloadOptions workload_options;
  workload_options.cart_pool =
      static_cast<uint64_t>(300000 * config.scale);
  workload_options.checkout_pool =
      static_cast<uint64_t>(120000 * config.scale);
  b2w::Workload workload(workload_options);
  PSTORE_CHECK_OK(workload.LoadInitialData(&cluster));

  EventLoop loop;
  // Node-sharded data plane (sim.engine_threads > 1): each node's
  // transaction work runs in parallel between control events, with the
  // barrier hook keeping every control event's view fully advanced.
  // Serial runs skip the engine entirely — Submit stays inline, the
  // byte-identical golden path.
  std::unique_ptr<ShardedEngine> sharded;
  const int engine_threads =
      ResolveThreadCount(config.spec.sim.engine_threads);
  if (engine_threads > 1) {
    sharded = std::make_unique<ShardedEngine>(
        &loop, cluster_options.max_nodes, engine_threads);
    executor.EnableSharding(sharded.get());
    sharded->InstallBarrierHook();
  }
  // Paper-calibrated migration: ~250 kB/s sustained per pair with
  // 1000 kB chunks, giving D ~= 77 min for the ~1.1 GB database (§8.1).
  MigrationOptions migration_options;
  migration_options.net_rate_bytes_per_sec = 500e3;
  migration_options.chunk_spacing_seconds = 2.0;
  migration_options.chunk_bytes = 1000 * 1000;
  migration_options.extract_rate_bytes_per_sec = 20e6;
  MigrationManager migration(&loop, &cluster, &metrics, migration_options);
  executor.set_tracer(config.spec.tracer);
  migration.set_tracer(config.spec.tracer);
  metrics.RecordMachines(0, config.nodes);

  std::unique_ptr<FaultInjector> injector;
  if (!config.faults.empty()) {
    injector = std::make_unique<FaultInjector>(
        &loop, &cluster, &metrics, FaultSchedule::Scripted(config.faults));
    injector->set_tracer(config.spec.tracer);
    migration.set_fault_hook(injector.get());
    injector->Arm();
  }

  DriverOptions driver_options;
  driver_options.slot_sim_seconds = 6.0;  // one trace minute at 10x
  driver_options.rate_factor = 1.0;       // trace already in txn/s
  driver_options.start_slot = replay_begin;
  driver_options.seed = config.spec.seed * 7919 + 13;
  WorkloadDriver driver(
      &loop, &executor, trace,
      [&workload](Rng& rng) { return workload.NextTransaction(rng); },
      driver_options);
  driver.set_tracer(config.spec.tracer);

  PlannerParams planner_params;
  planner_params.target_rate_per_node = 285.0 * config.scale;
  planner_params.max_rate_per_node = 350.0 * config.scale;
  planner_params.partitions_per_node = 6;
  planner_params.d_slots =
      SingleThreadFullMigrationSeconds(cluster.TotalDataBytes(),
                                       migration_options) /
      30.0;  // planning slot = 5 trace minutes = 30 sim seconds

  std::unique_ptr<OnlinePredictor> predictor;
  std::unique_ptr<PredictiveController> predictive;
  std::unique_ptr<ReactiveController> reactive;

  if (config.spec.strategy == Strategy::kPredictive) {
    OnlinePredictorOptions online_options;
    online_options.inflation = 1.15;  // §8.2: predictions inflated by 15%
    online_options.training_window =
        static_cast<size_t>(config.training_days) * 1440;
    online_options.refit_interval = 7 * 1440;  // weekly (§7)
    std::unique_ptr<LoadPredictor> model;
    if (config.oracle_predictor) {
      model = std::make_unique<OraclePredictor>(trace);
    } else if (!config.predictor_spec.empty()) {
      // Spec-built model at the trace-minute granularity the online
      // predictor observes: daily period, 4-hour max horizon.
      PredictorContext context;
      context.period = 1440;
      context.max_tau = 240;
      StatusOr<std::unique_ptr<LoadPredictor>> made =
          MakePredictor(config.predictor_spec, context);
      PSTORE_CHECK_OK(made.status());
      model = std::move(*made);
    } else {
      SparOptions spar_options;
      spar_options.period = 1440;
      spar_options.num_periods = 7;
      spar_options.num_recent = 30;
      spar_options.max_tau = 240;  // 4 hours of trace minutes
      spar_options.tau_stride = 5;
      model = std::make_unique<SparPredictor>(spar_options);
    }
    std::unique_ptr<RefitPolicy> refit_policy;
    if (!config.refit_policy.empty()) {
      StatusOr<std::unique_ptr<RefitPolicy>> policy =
          ParseRefitPolicy(config.refit_policy);
      PSTORE_CHECK_OK(policy.status());
      refit_policy = std::move(*policy);
    }
    predictor = std::make_unique<OnlinePredictor>(
        std::move(model), online_options, std::move(refit_policy));
    predictor->set_tracer(config.spec.tracer,
                          [&loop] { return loop.now(); });
    PSTORE_CHECK_OK(predictor->Warmup(trace.Slice(0, replay_begin)));

    PredictiveControllerOptions options;
    options.slot_sim_seconds = 6.0;
    options.plan_slot_factor = 5;
    options.horizon_plan_slots = 48;  // 4 hours of trace time
    options.fast_reactive_fallback = config.fast_reactive_fallback;
    options.scale_in_confirm_cycles = config.scale_in_confirm_cycles;
    options.planner_params = planner_params;
    predictive = std::make_unique<PredictiveController>(
        &loop, &cluster, &executor, &migration, predictor.get(), options);
    predictive->set_tracer(config.spec.tracer);
    predictive->Start();
  } else if (config.spec.strategy == Strategy::kReactive) {
    ReactiveControllerOptions options;
    options.slot_sim_seconds = 6.0;
    options.planner_params = planner_params;
    reactive = std::make_unique<ReactiveController>(
        &loop, &cluster, &executor, &migration, options);
    reactive->Start();
  }

  const SimTime end = FromSeconds(config.replay_days * 1440 * 6.0);
  driver.Start(end);
  loop.RunUntil(end);
  if (sharded != nullptr) {
    // Run the tail of the final window and fold per-shard stats so the
    // accessors below report exactly what a serial run would.
    sharded->Flush();
    executor.FoldShardStats();
  }

  EngineRunResult result;
  result.windows = metrics.Finalize(end);
  result.violations = MetricsCollector::CountViolations(result.windows);
  result.attribution = MetricsCollector::AttributeViolations(result.windows);
  result.avg_machines = metrics.AverageMachines(end);
  result.committed = executor.committed_count();
  result.aborted = executor.aborted_count();
  result.unavailable = executor.unavailable_count();
  result.duration_seconds = ToSeconds(end);
  result.reconfigurations =
      static_cast<int>(migration.reconfigurations_completed());
  result.failed_reconfigurations =
      static_cast<int>(migration.reconfigurations_failed());
  result.chunk_retries = migration.chunk_retries().value();

  if (config.spec.tracer != nullptr) {
    // One sla.window event per window violating the 500 ms p99 SLA, then
    // the run's headline numbers so the trace is self-describing.
    for (const WindowStats& window : result.windows) {
      if (window.p99_ms <= 500.0) continue;
      PSTORE_TRACE(config.spec.tracer, ::pstore::obs::TraceCategory::kReport,
                   FromSeconds(window.start_seconds), "sla.window",
                   .With("p50_ms", window.p50_ms)
                       .With("p95_ms", window.p95_ms)
                       .With("p99_ms", window.p99_ms)
                       .With("fault", window.fault)
                       .With("migrating", window.migrating));
    }
    PSTORE_TRACE(config.spec.tracer, ::pstore::obs::TraceCategory::kReport,
                 end, "run.summary",
                 .With("label", config.spec.label)
                     .With("approach", EngineApproachLabel(config))
                     .With("committed", result.committed)
                     .With("unavailable", result.unavailable)
                     .With("avg_machines", result.avg_machines)
                     .With("reconfigurations", result.reconfigurations)
                     .With("chunk_retries", result.chunk_retries)
                     .With("sla_p99_violations", result.violations.p99));
  }
  return result;
}

std::vector<EngineRunResult> RunEngineExperiments(
    const std::vector<EngineRunConfig>& configs, int threads) {
  // Tracers are single-threaded sinks: concurrent runs must not share
  // one (null is fine, it means "no tracing").
  for (size_t i = 0; i < configs.size(); ++i) {
    if (configs[i].spec.tracer == nullptr) continue;
    for (size_t j = i + 1; j < configs.size(); ++j) {
      PSTORE_CHECK(configs[j].spec.tracer != configs[i].spec.tracer);
    }
  }
  std::vector<EngineRunResult> results(configs.size());
  ThreadPool pool(ResolveThreadCount(threads));
  pool.ParallelFor(configs.size(), [&](size_t i) {
    results[i] = RunEngineExperiment(configs[i]);
  });
  return results;
}

void PrintRunSummary(const std::string& label, const EngineRunResult& run) {
  std::printf(
      "%-20s  viol(p50/p95/p99)=%4lld /%5lld /%5lld  avg machines=%5.2f  "
      "reconfigs=%2d  committed=%lld\n",
      label.c_str(), static_cast<long long>(run.violations.p50),
      static_cast<long long>(run.violations.p95),
      static_cast<long long>(run.violations.p99), run.avg_machines,
      run.reconfigurations, static_cast<long long>(run.committed));
}

}  // namespace bench
}  // namespace pstore
