// Applicability probe (§4.2): "the workload has few distributed
// transactions". This bench quantifies what happens as that assumption
// erodes: a fixed offered rate near the cluster knee with a growing
// share of two-key transfers. Each distributed transaction occupies two
// partitions with 2PC overhead, so effective capacity shrinks and the
// tail collapses well before the nominal Q-hat.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/time_series.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/metrics.h"
#include "engine/txn_executor.h"
#include "engine/workload_driver.h"
#include "ycsb/ycsb_workload.h"

namespace {

using namespace pstore;

struct Result {
  double median_p99_ms = 0.0;
  double worst_p99_ms = 0.0;
  int64_t distributed = 0;
  int64_t committed = 0;
};

Result RunShare(double multi_fraction, double rate) {
  ClusterOptions cluster_options;
  cluster_options.partitions_per_node = 6;
  cluster_options.max_nodes = 2;
  cluster_options.initial_nodes = 2;
  cluster_options.num_buckets = 1200;
  Cluster cluster(cluster_options);
  MetricsCollector metrics(1.0);
  TxnExecutor executor(&cluster, &metrics, ExecutorOptions{});
  PSTORE_CHECK_OK(ycsb::Workload::RegisterProcedures(&executor));
  ycsb::YcsbWorkloadOptions options;
  options.record_count = 200000;
  options.multi_key_fraction = multi_fraction;
  ycsb::Workload workload(options);
  PSTORE_CHECK_OK(workload.LoadInitialData(&cluster));

  EventLoop loop;
  TimeSeries flat(1.0, std::vector<double>(300, rate));
  DriverOptions driver_options;
  driver_options.slot_sim_seconds = 1.0;
  driver_options.rate_factor = 1.0;
  driver_options.seed = 8;
  WorkloadDriver driver(
      &loop, &executor, flat,
      [&workload](Rng& rng) { return workload.NextTransaction(rng); },
      driver_options);
  driver.Start(300 * kSecond);
  loop.RunUntil(300 * kSecond);

  Result result;
  result.distributed = executor.distributed_count();
  result.committed = executor.committed_count();
  const auto windows = metrics.Finalize(300 * kSecond);
  std::vector<double> p99s;
  for (size_t w = 60; w < windows.size(); ++w) {
    if (windows[w].completed == 0) continue;
    p99s.push_back(windows[w].p99_ms);
    result.worst_p99_ms = std::max(result.worst_p99_ms, windows[w].p99_ms);
  }
  std::sort(p99s.begin(), p99s.end());
  if (!p99s.empty()) result.median_p99_ms = p99s[p99s.size() / 2];
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Applicability probe (§4.2): share of distributed transactions",
      "H-Store-style engines need few distributed txns for (almost) "
      "linear scalability; the tail collapses as the share grows");

  auto csv = bench::OpenCsv("ablation_distributed_txns.csv");
  if (csv) {
    csv->WriteRow({"multi_key_percent", "distributed_txns", "median_p99_ms",
                   "worst_p99_ms"});
  }
  // 2 nodes x 6 partitions saturate at ~876 single-key txn/s; drive at
  // ~75% of that.
  const double rate = 660.0;
  std::printf("%16s %16s %14s %14s\n", "multi-key share", "distributed",
              "median p99", "worst p99");
  for (const double fraction : {0.0, 0.01, 0.05, 0.10, 0.20, 0.40}) {
    const Result result = RunShare(fraction, rate);
    std::printf("%15.0f%% %16lld %14.1f %14.1f\n", 100.0 * fraction,
                static_cast<long long>(result.distributed),
                result.median_p99_ms, result.worst_p99_ms);
    if (csv) {
      csv->WriteRow({std::to_string(100.0 * fraction),
                     std::to_string(result.distributed),
                     std::to_string(result.median_p99_ms),
                     std::to_string(result.worst_p99_ms)});
    }
  }
  std::printf(
      "\nReading: a few percent of distributed transactions is "
      "absorbable; tens of percent saturate the cluster at the same "
      "offered rate — why the paper validates this assumption for B2W "
      "(every B2W transaction touches one key) before applying "
      "P-Store's uniform capacity model.\n");
  bench::CloseCsv(csv.get());
  return 0;
}
