#ifndef PSTORE_BENCH_MICRO_UTIL_H_
#define PSTORE_BENCH_MICRO_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

namespace pstore {
namespace bench {

// Shared main body for the micro benchmarks: identical to
// BENCHMARK_MAIN(), except that when the caller passed no
// --benchmark_out flag the run also writes its full results to
// BENCH_micro_<name>.json (google-benchmark's JSON format) in the
// working directory, so every invocation leaves a machine-readable
// artifact. An explicit --benchmark_out on the command line wins.
inline int MicroBenchMain(const char* name, int argc, char** argv) {
  char arg0_default[] = "benchmark";
  char* args_default = arg0_default;
  if (argv == nullptr) {
    argc = 1;
    argv = &args_default;
  }
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag;
  std::string format_flag;
  if (!has_out) {
    out_flag = std::string("--benchmark_out=BENCH_micro_") + name + ".json";
    format_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  ::benchmark::Initialize(&args_count, args.data());
  if (::benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace bench
}  // namespace pstore

// Drop-in replacement for BENCHMARK_MAIN(); `name` tags the default
// BENCH_micro_<name>.json artifact.
#define PSTORE_MICRO_BENCH_MAIN(name)                         \
  int main(int argc, char** argv) {                           \
    return ::pstore::bench::MicroBenchMain(name, argc, argv); \
  }

#endif  // PSTORE_BENCH_MICRO_UTIL_H_
