// Ablation: the prediction-inflation buffer (§8.2 inflates all
// predictions by 15%; footnote 2 notes inflation and Q are two handles
// on the same buffer). Sweeping inflation traces the same capacity-cost
// curve as sweeping Q in Fig. 12.

#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "common/status.h"
#include "common/time_series.h"
#include "prediction/spar_model.h"
#include "sim/capacity_simulator.h"
#include "trace/b2w_trace_generator.h"

int main() {
  using namespace pstore;
  bench::PrintHeader(
      "Ablation: prediction inflation sweep (paper default 15%)",
      "footnote 2: inflation and Q both move P-Store along its "
      "capacity-cost curve");

  B2wTraceOptions trace_options;
  trace_options.days = 49;
  trace_options.seed = 42;
  trace_options.peak_requests_per_min = 10500.0;
  const TimeSeries trace =
      GenerateB2wTrace(trace_options).Scaled(10.0 / 60.0);
  const TimeSeries coarse = trace.DownsampleMean(5);

  SparOptions spar_options;
  spar_options.period = 288;
  spar_options.num_periods = 7;
  spar_options.num_recent = 6;
  spar_options.max_tau = 36;
  SparPredictor spar(spar_options);
  PSTORE_CHECK_OK(spar.Fit(coarse.Slice(0, 28 * 288)));

  auto csv = bench::OpenCsv("ablation_inflation.csv");
  if (csv) csv->WriteRow({"inflation", "cost", "insufficient_percent"});
  std::printf("%10s %14s %16s\n", "inflation", "cost", "insufficient %%");
  double baseline_cost = 0.0;
  for (const double inflation : {1.0, 1.05, 1.15, 1.25, 1.40}) {
    SimOptions options;
    // Plan against Q-hat directly so the inflation is the *only* buffer
    // (with the default Q = 285 the 23% Q-hat slack hides it).
    options.q = 350.0;
    options.q_hat = 350.0;
    options.d_fine_slots = 77.0;
    options.partitions_per_node = 6;
    options.initial_nodes = 4;
    options.max_nodes = 60;
    options.eval_begin = 28 * 1440;
    options.inflation = inflation;
    const CapacitySimulator sim(options);
    StatusOr<SimResult> result = sim.RunPredictive(trace, spar);
    PSTORE_CHECK_OK(result.status());
    if (inflation == 1.15) baseline_cost = result->machine_slots;
    std::printf("%10.2f %14.0f %16.4f\n", inflation, result->machine_slots,
                100.0 * result->insufficient_fraction);
    if (csv) {
      csv->WriteRow({std::to_string(inflation),
                     std::to_string(result->machine_slots),
                     std::to_string(100.0 *
                                    result->insufficient_fraction)});
    }
  }
  (void)baseline_cost;
  std::printf(
      "\nReading: more inflation = more machines = fewer under-capacity "
      "slots, mirroring the Q sweep of Fig. 12 — the two knobs are "
      "interchangeable buffers, as the paper's footnote says.\n");
  bench::CloseCsv(csv.get());
  return 0;
}
