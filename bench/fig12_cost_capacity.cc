// Figure 12: cost vs. % of time with insufficient capacity for five
// allocation strategies, each swept across its buffer knob (Q for
// P-Store, watermark for reactive, day-machines for Simple, machine
// count for Static), simulated over months of B2W load including a
// Black-Friday surge. The paper's ordering at matched cost:
// P-Store-Oracle <= P-Store-SPAR < Reactive < Simple < Static.
//
// All 26 grid points are independent RunSpecs evaluated concurrently by
// RunSweep (--threads N, default: hardware concurrency). Results are
// collected by spec index, so the CSV is identical for any thread count.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/flags.h"
#include "common/status.h"
#include "common/time_series.h"
#include "prediction/naive_models.h"
#include "prediction/predictor.h"
#include "prediction/predictor_spec.h"
#include "sim/capacity_simulator.h"
#include "sim/run_spec.h"
#include "trace/b2w_trace_generator.h"

namespace {

using namespace pstore;

constexpr int kDays = 77;          // 11 weeks (paper: ~4.5 months)
constexpr int kTrainDays = 28;     // 4-week training window
constexpr int kBlackFriday = 70;   // surge near the end, as in Aug-Dec

SimOptions BaseOptions() {
  SimOptions options;
  options.plan_slot_factor = 5;
  options.horizon_plan_slots = 36;
  options.q = 285.0;
  options.q_hat = 350.0;
  options.d_fine_slots = 77.0;
  options.partitions_per_node = 6;
  options.initial_nodes = 4;
  options.max_nodes = 60;
  options.eval_begin = kTrainDays * 1440;
  return options;
}

struct Point {
  std::string strategy;
  std::string knob;
  double cost = 0.0;
  double insufficient_percent = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  PSTORE_CHECK_OK(flags.Parse(argc - 1, argv + 1));
  const StatusOr<int64_t> threads = flags.GetInt("threads", 0);
  PSTORE_CHECK_OK(threads.status());

  bench::PrintHeader(
      "Figure 12: cost vs %% time with insufficient capacity "
      "(long-horizon simulation incl. Black Friday)",
      "P-Store (Oracle/SPAR) dominates; reactive needs a big buffer; "
      "Simple and Static are inflexible");

  B2wTraceOptions trace_options;
  trace_options.days = kDays;
  trace_options.seed = 42;
  trace_options.peak_requests_per_min = 10500.0;
  trace_options.black_friday_day = kBlackFriday;
  const TimeSeries trace =
      GenerateB2wTrace(trace_options).Scaled(10.0 / 60.0);
  const TimeSeries coarse = trace.DownsampleMean(5);

  // Predictors, fitted once on the training window and shared read-only
  // by every predictive spec in the sweep.
  PredictorContext context;
  context.period = 1440 / 5;
  context.max_tau = 36;
  StatusOr<std::unique_ptr<LoadPredictor>> made =
      MakePredictor("spar(n=7,m=6)", context);
  PSTORE_CHECK_OK(made.status());
  LoadPredictor& spar = **made;
  PSTORE_CHECK_OK(spar.Fit(coarse.Slice(0, kTrainDays * 288)));
  OraclePredictor oracle(coarse);

  // The full strategy/knob grid, one RunSpec per point. Every spec
  // borrows the same (read-only) trace.
  std::vector<RunSpec> specs;
  std::vector<std::string> strategy_names;  // display name, by spec index
  RunSpec base;
  base.workload.kind = WorkloadSpec::Kind::kProvided;
  base.workload.provided = &trace;
  base.sim = BaseOptions();

  // P-Store with SPAR and Oracle: sweep Q.
  for (const double q : {200.0, 240.0, 285.0, 320.0, 340.0}) {
    RunSpec spec = base;
    spec.label = "Q=" + std::to_string(static_cast<int>(q));
    spec.strategy = Strategy::kPredictive;
    spec.sim.q = q;
    spec.predictor = &spar;
    strategy_names.push_back("P-Store SPAR");
    specs.push_back(spec);
    spec.sim.inflation = 1.0;
    spec.predictor = &oracle;
    strategy_names.push_back("P-Store Oracle");
    specs.push_back(spec);
  }

  // Reactive: sweep the watermark buffer.
  for (const double watermark : {1.1, 1.0, 0.9, 0.8, 0.7}) {
    RunSpec spec = base;
    char knob[32];
    std::snprintf(knob, sizeof(knob), "watermark=%.1f", watermark);
    spec.label = knob;
    spec.strategy = Strategy::kReactive;
    spec.reactive.high_watermark = watermark;
    strategy_names.push_back("Reactive");
    specs.push_back(spec);
  }

  // Simple: sweep day machines.
  for (const int day_nodes : {8, 10, 12, 16, 20}) {
    RunSpec spec = base;
    spec.label = "day=" + std::to_string(day_nodes);
    spec.strategy = Strategy::kSimple;
    spec.simple.day_nodes = day_nodes;
    spec.simple.night_nodes = 3;
    strategy_names.push_back("Simple");
    specs.push_back(spec);
  }

  // Static: sweep machine count.
  for (const int nodes : {4, 6, 8, 10, 14, 20}) {
    RunSpec spec = base;
    spec.label = std::to_string(nodes) + " machines";
    spec.strategy = Strategy::kStatic;
    spec.static_nodes = nodes;
    strategy_names.push_back("Static");
    specs.push_back(spec);
  }

  SweepOptions sweep_options;
  sweep_options.threads = static_cast<int>(*threads);
  const StatusOr<SweepResult> sweep = RunSweep(specs, sweep_options);
  PSTORE_CHECK_OK(sweep.status());
  std::printf("(%zu runs swept on %d threads)\n", specs.size(),
              sweep->threads);

  std::vector<Point> points;
  for (size_t i = 0; i < specs.size(); ++i) {
    Point point;
    point.strategy = strategy_names[i];
    point.knob = specs[i].label;
    point.cost = sweep->results[i].machine_slots;
    point.insufficient_percent =
        100.0 * sweep->results[i].insufficient_fraction;
    points.push_back(point);
    std::printf("  %-16s %-18s cost=%12.0f  insufficient=%7.3f%%\n",
                point.strategy.c_str(), point.knob.c_str(), point.cost,
                point.insufficient_percent);
  }

  // Normalize cost to P-Store SPAR at the default Q = 285.
  double default_cost = 1.0;
  for (const Point& point : points) {
    if (point.strategy == "P-Store SPAR" && point.knob == "Q=285") {
      default_cost = point.cost;
    }
  }
  auto csv = bench::OpenCsv("fig12_cost_capacity.csv");
  if (csv) {
    csv->WriteRow(
        {"strategy", "knob", "normalized_cost", "insufficient_percent"});
  }
  std::printf("\n%-16s %-18s %16s %16s\n", "strategy", "knob",
              "cost (norm.)", "insufficient %%");
  for (const Point& point : points) {
    std::printf("%-16s %-18s %16.3f %16.3f\n", point.strategy.c_str(),
                point.knob.c_str(), point.cost / default_cost,
                point.insufficient_percent);
    if (csv) {
      csv->WriteRow({point.strategy, point.knob,
                     std::to_string(point.cost / default_cost),
                     std::to_string(point.insufficient_percent)});
    }
  }
  std::printf(
      "\nShape check: at comparable cost, P-Store Oracle <= P-Store SPAR "
      "< Reactive < Simple/Static in %% time with insufficient capacity; "
      "static curves shift right (higher cost) to reduce violations.\n");
  bench::CloseCsv(csv.get());
  return 0;
}
