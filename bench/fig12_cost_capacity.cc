// Figure 12: cost vs. % of time with insufficient capacity for five
// allocation strategies, each swept across its buffer knob (Q for
// P-Store, watermark for reactive, day-machines for Simple, machine
// count for Static), simulated over months of B2W load including a
// Black-Friday surge. The paper's ordering at matched cost:
// P-Store-Oracle <= P-Store-SPAR < Reactive < Simple < Static.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/status.h"
#include "common/time_series.h"
#include "prediction/naive_models.h"
#include "prediction/spar_model.h"
#include "sim/capacity_simulator.h"
#include "trace/b2w_trace_generator.h"

namespace {

using namespace pstore;

constexpr int kDays = 77;          // 11 weeks (paper: ~4.5 months)
constexpr int kTrainDays = 28;     // 4-week training window
constexpr int kBlackFriday = 70;   // surge near the end, as in Aug-Dec

SimOptions BaseOptions() {
  SimOptions options;
  options.plan_slot_factor = 5;
  options.horizon_plan_slots = 36;
  options.q = 285.0;
  options.q_hat = 350.0;
  options.d_fine_slots = 77.0;
  options.partitions_per_node = 6;
  options.initial_nodes = 4;
  options.max_nodes = 60;
  options.eval_begin = kTrainDays * 1440;
  return options;
}

struct Point {
  std::string strategy;
  std::string knob;
  double cost = 0.0;
  double insufficient_percent = 0.0;
};

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 12: cost vs %% time with insufficient capacity "
      "(long-horizon simulation incl. Black Friday)",
      "P-Store (Oracle/SPAR) dominates; reactive needs a big buffer; "
      "Simple and Static are inflexible");

  B2wTraceOptions trace_options;
  trace_options.days = kDays;
  trace_options.seed = 42;
  trace_options.peak_requests_per_min = 10500.0;
  trace_options.black_friday_day = kBlackFriday;
  const TimeSeries trace =
      GenerateB2wTrace(trace_options).Scaled(10.0 / 60.0);
  const TimeSeries coarse = trace.DownsampleMean(5);

  // Predictors, fitted once on the training window.
  SparOptions spar_options;
  spar_options.period = 1440 / 5;
  spar_options.num_periods = 7;
  spar_options.num_recent = 6;
  spar_options.max_tau = 36;
  SparPredictor spar(spar_options);
  PSTORE_CHECK_OK(spar.Fit(coarse.Slice(0, kTrainDays * 288)));
  OraclePredictor oracle(coarse);

  std::vector<Point> points;
  auto add_point = [&](const std::string& strategy, const std::string& knob,
                       const StatusOr<SimResult>& result) {
    PSTORE_CHECK_OK(result.status());
    Point point;
    point.strategy = strategy;
    point.knob = knob;
    point.cost = result->machine_slots;
    point.insufficient_percent = 100.0 * result->insufficient_fraction;
    points.push_back(point);
    std::printf("  %-16s %-18s cost=%12.0f  insufficient=%7.3f%%\n",
                strategy.c_str(), knob.c_str(), point.cost,
                point.insufficient_percent);
  };

  // P-Store with SPAR and Oracle: sweep Q.
  for (const double q : {200.0, 240.0, 285.0, 320.0, 340.0}) {
    SimOptions options = BaseOptions();
    options.q = q;
    const CapacitySimulator sim(options);
    add_point("P-Store SPAR", "Q=" + std::to_string(static_cast<int>(q)),
              sim.RunPredictive(trace, spar));
    SimOptions oracle_options = options;
    oracle_options.inflation = 1.0;
    const CapacitySimulator oracle_sim(oracle_options);
    add_point("P-Store Oracle", "Q=" + std::to_string(static_cast<int>(q)),
              oracle_sim.RunPredictive(trace, oracle));
  }

  // Reactive: sweep the watermark buffer.
  for (const double watermark : {1.1, 1.0, 0.9, 0.8, 0.7}) {
    ReactiveSimParams params;
    params.high_watermark = watermark;
    const CapacitySimulator sim(BaseOptions());
    char knob[32];
    std::snprintf(knob, sizeof(knob), "watermark=%.1f", watermark);
    add_point("Reactive", knob, sim.RunReactive(trace, params));
  }

  // Simple: sweep day machines.
  for (const int day_nodes : {8, 10, 12, 16, 20}) {
    SimpleSimParams params;
    params.day_nodes = day_nodes;
    params.night_nodes = 3;
    const CapacitySimulator sim(BaseOptions());
    add_point("Simple", "day=" + std::to_string(day_nodes),
              sim.RunSimple(trace, params));
  }

  // Static: sweep machine count.
  for (const int nodes : {4, 6, 8, 10, 14, 20}) {
    const CapacitySimulator sim(BaseOptions());
    add_point("Static", std::to_string(nodes) + " machines",
              sim.RunStatic(trace, nodes));
  }

  // Normalize cost to P-Store SPAR at the default Q = 285.
  double default_cost = 1.0;
  for (const Point& point : points) {
    if (point.strategy == "P-Store SPAR" && point.knob == "Q=285") {
      default_cost = point.cost;
    }
  }
  auto csv = bench::OpenCsv("fig12_cost_capacity.csv");
  if (csv) {
    csv->WriteRow(
        {"strategy", "knob", "normalized_cost", "insufficient_percent"});
  }
  std::printf("\n%-16s %-18s %16s %16s\n", "strategy", "knob",
              "cost (norm.)", "insufficient %%");
  for (const Point& point : points) {
    std::printf("%-16s %-18s %16.3f %16.3f\n", point.strategy.c_str(),
                point.knob.c_str(), point.cost / default_cost,
                point.insufficient_percent);
    if (csv) {
      csv->WriteRow({point.strategy, point.knob,
                     std::to_string(point.cost / default_cost),
                     std::to_string(point.insufficient_percent)});
    }
  }
  std::printf(
      "\nShape check: at comparable cost, P-Store Oracle <= P-Store SPAR "
      "< Reactive < Simple/Static in %% time with insufficient capacity; "
      "static curves shift right (higher cost) to reduce violations.\n");
  bench::CloseCsv(csv.get());
  return 0;
}
