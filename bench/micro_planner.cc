// Microbenchmarks for the planner: DP runtime scaling with horizon and
// cluster size, move-model evaluation cost, and schedule construction.

#include <benchmark/benchmark.h>

#include "micro_util.h"

#include <cmath>
#include <vector>

#include "common/status.h"
#include "common/strong_id.h"
#include "planner/dp_planner.h"
#include "planner/migration_schedule.h"
#include "planner/move.h"
#include "planner/move_model.h"

namespace pstore {
namespace {

std::vector<double> DiurnalLoad(int horizon, double peak) {
  std::vector<double> load;
  load.reserve(horizon + 1);
  for (int t = 0; t <= horizon; ++t) {
    load.push_back(0.12 * peak +
                   0.88 * peak * 0.5 *
                       (1.0 - std::cos(2.0 * M_PI * t / horizon)));
  }
  return load;
}

void BM_DpPlanner(benchmark::State& state) {
  const int horizon = static_cast<int>(state.range(0));
  const double peak = 285.0 * static_cast<double>(state.range(1));
  PlannerParams params;
  params.target_rate_per_node = 285.0;
  params.max_rate_per_node = 350.0;
  params.d_slots = 15.4;
  params.partitions_per_node = 6;
  const DpPlanner planner(params);
  const std::vector<double> load = DiurnalLoad(horizon, peak);
  for (auto _ : state) {
    StatusOr<PlanResult> plan = planner.BestMoves(load, NodeCount(2));
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_DpPlanner)
    ->Args({24, 10})
    ->Args({48, 10})
    ->Args({96, 10})
    ->Args({48, 20})
    ->Args({48, 40});

void BM_EffectiveCapacity(benchmark::State& state) {
  PlannerParams params;
  params.target_rate_per_node = 285.0;
  double f = 0.0;
  for (auto _ : state) {
    f += 0.001;
    if (f > 1.0) f = 0.0;
    benchmark::DoNotOptimize(EffectiveCapacity(NodeCount(3), NodeCount(14), f, params));
  }
}
BENCHMARK(BM_EffectiveCapacity);

void BM_AvgMachinesAllocated(benchmark::State& state) {
  int b = 1;
  for (auto _ : state) {
    b = b % 19 + 1;
    benchmark::DoNotOptimize(AvgMachinesAllocated(NodeCount(b), NodeCount(20 - b + 1)));
  }
}
BENCHMARK(BM_AvgMachinesAllocated);

void BM_BuildMigrationSchedule(benchmark::State& state) {
  const int before = static_cast<int>(state.range(0));
  const int after = static_cast<int>(state.range(1));
  for (auto _ : state) {
    StatusOr<MigrationSchedule> schedule =
        BuildMigrationSchedule(NodeCount(before), NodeCount(after));
    benchmark::DoNotOptimize(schedule);
  }
}
BENCHMARK(BM_BuildMigrationSchedule)
    ->Args({3, 14})
    ->Args({14, 3})
    ->Args({10, 40})
    ->Args({40, 10});

}  // namespace
}  // namespace pstore

PSTORE_MICRO_BENCH_MAIN("planner")
