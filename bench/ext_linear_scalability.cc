// Extension: the scalability premise. §2 states H-Store-style engines
// scale (almost) linearly when data is uniform and distributed
// transactions are rare — it is why cap(N) = Q*N (Eq. 5) is a sound
// model. This bench measures sustained throughput at a fixed per-machine
// offered rate for growing cluster sizes and reports the scaling
// efficiency.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "b2w/procedures.h"
#include "b2w/workload.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/time_series.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/metrics.h"
#include "engine/txn_executor.h"
#include "engine/workload_driver.h"

int main() {
  using namespace pstore;
  bench::PrintHeader(
      "Extension: linear scalability of the engine (the Eq. 5 premise)",
      "uniform single-key workload: throughput ~ Q x N with flat tail "
      "latency");

  auto csv = bench::OpenCsv("ext_linear_scalability.csv");
  if (csv) {
    csv->WriteRow({"nodes", "offered_txn_s", "completed_txn_s",
                   "efficiency_percent", "worst_p99_ms"});
  }

  std::printf("%8s %12s %12s %12s %12s\n", "nodes", "offered", "completed",
              "efficiency", "worst p99");
  double per_node_rate = 285.0;  // Q per machine
  double baseline = 0.0;
  for (const int nodes : {1, 2, 4, 6, 8, 12}) {
    ClusterOptions cluster_options;
    cluster_options.partitions_per_node = 6;
    cluster_options.max_nodes = 12;
    cluster_options.initial_nodes = nodes;
    cluster_options.num_buckets = 3600;
    Cluster cluster(cluster_options);
    MetricsCollector metrics(1.0);
    TxnExecutor executor(&cluster, &metrics, ExecutorOptions{});
    PSTORE_CHECK_OK(b2w::RegisterProcedures(&executor));
    b2w::B2wWorkloadOptions workload_options;
    workload_options.cart_pool = 100000;
    workload_options.checkout_pool = 40000;
    b2w::Workload workload(workload_options);
    PSTORE_CHECK_OK(workload.LoadInitialData(&cluster));

    EventLoop loop;
    const double rate = per_node_rate * nodes;
    TimeSeries flat(1.0, std::vector<double>(120, rate));
    DriverOptions driver_options;
    driver_options.slot_sim_seconds = 1.0;
    driver_options.rate_factor = 1.0;
    driver_options.seed = 13;
    WorkloadDriver driver(
        &loop, &executor, flat,
        [&workload](Rng& rng) { return workload.NextTransaction(rng); },
        driver_options);
    driver.Start(120 * kSecond);
    loop.RunUntil(120 * kSecond);

    const auto windows = metrics.Finalize(120 * kSecond);
    int64_t completed = 0;
    double worst_p99 = 0.0;
    int counted = 0;
    for (size_t w = 20; w < windows.size(); ++w) {
      completed += windows[w].completed;
      worst_p99 = std::max(worst_p99, windows[w].p99_ms);
      ++counted;
    }
    const double rate_out = static_cast<double>(completed) / counted;
    if (nodes == 1) baseline = rate_out;
    const double efficiency =
        100.0 * rate_out / (baseline * nodes);
    std::printf("%8d %12.0f %12.1f %11.1f%% %12.1f\n", nodes, rate,
                rate_out, efficiency, worst_p99);
    if (csv) {
      csv->WriteNumericRow({static_cast<double>(nodes), rate, rate_out,
                            efficiency, worst_p99});
    }
  }
  std::printf(
      "\nReading: efficiency stays ~100%% and tail latency flat as the "
      "cluster grows — the precondition for modeling capacity as Q x N "
      "(Eq. 5). Contrast with ablation_distributed_txns, where breaking "
      "the single-key assumption destroys this.\n");
  bench::CloseCsv(csv.get());
  return 0;
}
