// Extension: the scalability premise. §2 states H-Store-style engines
// scale (almost) linearly when data is uniform and distributed
// transactions are rare — it is why cap(N) = Q*N (Eq. 5) is a sound
// model. This bench measures sustained throughput at a fixed per-machine
// offered rate for growing cluster sizes (now up to 128 nodes, past the
// paper's 10-machine testbed) and reports the scaling efficiency; a
// second sweep holds the cluster at 100 nodes and varies the sharded
// engine's worker count, reporting the wall-clock speedup of one run.
//
// Results land in BENCH_ext_linear_scalability.json (override with
// --bench-json=...). Honesty note, as with BENCH_micro_sweep: on a
// single-hardware-thread CI box the engine-threads sweep is a flat line
// — the >1-thread rows then measure barrier/pool overhead only, and the
// committed-transaction determinism check is the interesting part. The
// artifact records host.hardware_threads so readers can tell which case
// they are looking at.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "b2w/procedures.h"
#include "b2w/workload.h"
#include "bench_util.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/thread_pool.h"
#include "common/time_series.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/metrics.h"
#include "engine/sharded_loop.h"
#include "engine/txn_executor.h"
#include "engine/workload_driver.h"
#include "obs/metrics_registry.h"

namespace {

using namespace pstore;

constexpr double kPerNodeRate = 285.0;  // Q per machine
constexpr int kHorizonSeconds = 60;
constexpr int kWarmupWindows = 20;

struct RunResult {
  double completed_per_s = 0.0;
  double worst_p99_ms = 0.0;
  int64_t committed = 0;
  double wall_seconds = 0.0;
};

// One flat-rate run on `nodes` machines, with the engine sharded across
// `engine_threads` workers (1 = the classic serial path).
RunResult RunFlat(int nodes, int engine_threads) {
  ClusterOptions cluster_options;
  cluster_options.partitions_per_node = 6;
  cluster_options.max_nodes = 128;
  cluster_options.initial_nodes = nodes;
  cluster_options.num_buckets = 15360;  // 20 per partition at 128 nodes
  Cluster cluster(cluster_options);
  MetricsCollector metrics(1.0);
  TxnExecutor executor(&cluster, &metrics, ExecutorOptions{});
  PSTORE_CHECK_OK(b2w::RegisterProcedures(&executor));
  b2w::B2wWorkloadOptions workload_options;
  workload_options.cart_pool = 100000;
  workload_options.checkout_pool = 40000;
  b2w::Workload workload(workload_options);
  PSTORE_CHECK_OK(workload.LoadInitialData(&cluster));

  EventLoop loop;
  std::unique_ptr<ShardedEngine> engine;
  if (engine_threads > 1) {
    engine = std::make_unique<ShardedEngine>(&loop, cluster_options.max_nodes,
                                             engine_threads);
    executor.EnableSharding(engine.get());
    engine->InstallBarrierHook();
  }

  const double rate = kPerNodeRate * nodes;
  TimeSeries flat(1.0, std::vector<double>(kHorizonSeconds, rate));
  DriverOptions driver_options;
  driver_options.slot_sim_seconds = 1.0;
  driver_options.rate_factor = 1.0;
  driver_options.seed = 13;
  WorkloadDriver driver(
      &loop, &executor, flat,
      [&workload](Rng& rng) { return workload.NextTransaction(rng); },
      driver_options);

  const auto wall_start = std::chrono::steady_clock::now();
  driver.Start(kHorizonSeconds * kSecond);
  loop.RunUntil(kHorizonSeconds * kSecond);
  if (engine != nullptr) {
    engine->Flush();
    executor.FoldShardStats();
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;

  RunResult result;
  result.committed = executor.committed_count();
  result.wall_seconds = wall.count();
  const auto windows = metrics.Finalize(kHorizonSeconds * kSecond);
  int64_t completed = 0;
  int counted = 0;
  for (size_t w = kWarmupWindows; w < windows.size(); ++w) {
    completed += windows[w].completed;
    result.worst_p99_ms = std::max(result.worst_p99_ms, windows[w].p99_ms);
    ++counted;
  }
  result.completed_per_s = static_cast<double>(completed) / counted;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  PSTORE_CHECK_OK(flags.Parse(argc - 1, argv + 1));
  bench::PrintHeader(
      "Extension: linear scalability of the engine (the Eq. 5 premise)",
      "uniform single-key workload: throughput ~ Q x N with flat tail "
      "latency, now to 128 nodes on the node-sharded engine");

  obs::MetricsRegistry registry;
  auto csv = bench::OpenCsv("ext_linear_scalability.csv");
  if (csv) {
    csv->WriteRow({"nodes", "offered_txn_s", "completed_txn_s",
                   "efficiency_percent", "worst_p99_ms"});
  }

  // ---- Part 1: scaling curve (serial engine, the golden path) -------------
  std::printf("%8s %12s %12s %12s %12s\n", "nodes", "offered", "completed",
              "efficiency", "worst p99");
  double baseline = 0.0;
  for (const int nodes : {1, 2, 4, 8, 16, 32, 64, 100, 128}) {
    const RunResult r = RunFlat(nodes, /*engine_threads=*/1);
    if (nodes == 1) baseline = r.completed_per_s;
    const double efficiency =
        100.0 * r.completed_per_s / (baseline * nodes);
    std::printf("%8d %12.0f %12.1f %11.1f%% %12.1f\n", nodes,
                kPerNodeRate * nodes, r.completed_per_s, efficiency,
                r.worst_p99_ms);
    if (csv) {
      csv->WriteNumericRow({static_cast<double>(nodes), kPerNodeRate * nodes,
                            r.completed_per_s, efficiency, r.worst_p99_ms});
    }
    const std::string prefix = "linear.nodes." + std::to_string(nodes) + ".";
    registry.GetGauge(prefix + "completed_txn_s")->Set(r.completed_per_s);
    registry.GetGauge(prefix + "efficiency_percent")->Set(efficiency);
    registry.GetGauge(prefix + "worst_p99_ms")->Set(r.worst_p99_ms);
  }

  // ---- Part 2: engine-threads sweep at 100 nodes --------------------------
  std::printf(
      "\n%8s %12s %12s %12s\n", "threads", "wall s", "speedup", "committed");
  double serial_wall = 0.0;
  int64_t serial_committed = 0;
  for (const int threads : {1, 2, 4, 8}) {
    const RunResult r = RunFlat(/*nodes=*/100, threads);
    if (threads == 1) {
      serial_wall = r.wall_seconds;
      serial_committed = r.committed;
    } else {
      // The determinism contract, checked in-bench: any worker count
      // reproduces the serial run's transaction stream exactly.
      PSTORE_CHECK(r.committed == serial_committed);
    }
    const double speedup = serial_wall / r.wall_seconds;
    std::printf("%8d %12.2f %11.2fx %12lld\n", threads, r.wall_seconds,
                speedup, static_cast<long long>(r.committed));
    const std::string prefix =
        "sharded.threads." + std::to_string(threads) + ".";
    registry.GetGauge(prefix + "wall_seconds")->Set(r.wall_seconds);
    registry.GetGauge(prefix + "speedup_x")->Set(speedup);
    registry.GetGauge(prefix + "committed")
        ->Set(static_cast<double>(r.committed));
  }
  const int hardware = ResolveThreadCount(0);
  registry.GetGauge("host.hardware_threads")->Set(hardware);

  std::printf(
      "\nReading: efficiency stays ~100%% and tail latency flat as the "
      "cluster grows — the precondition for modeling capacity as Q x N "
      "(Eq. 5). Contrast with ablation_distributed_txns, where breaking "
      "the single-key assumption destroys this. The threads sweep holds "
      "the workload fixed at 100 nodes: identical committed counts are "
      "the determinism guarantee; the speedup column is only meaningful "
      "when host.hardware_threads > 1 (this host: %d).\n",
      hardware);
  bench::CloseCsv(csv.get());

  const std::string bench_json =
      flags.GetString("bench-json", "BENCH_ext_linear_scalability.json");
  PSTORE_CHECK_OK(registry.WriteJson(bench_json));
  std::printf("Metrics: %s\n", bench_json.c_str());
  return 0;
}
