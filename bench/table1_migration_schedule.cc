// Table 1: the schedule of parallel migrations when scaling from 3 to 14
// machines — 11 rounds in three phases, keeping all three senders busy
// every round (one fewer round than any schedule without the phase-2
// partial fill).

#include <cstdio>

#include "bench_util.h"
#include "common/status.h"
#include "common/strong_id.h"
#include "planner/migration_schedule.h"

int main() {
  using namespace pstore;
  bench::PrintHeader(
      "Table 1: parallel migration schedule for 3 -> 14 machines",
      "11 rounds in 3 phases (6 + 2 + 3); senders never idle");

  StatusOr<MigrationSchedule> schedule = BuildMigrationSchedule(NodeCount(3), NodeCount(14));
  if (!schedule.ok()) {
    std::printf("ERROR: %s\n", schedule.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", schedule->ToString().c_str());
  const Status valid = ValidateSchedule(*schedule);
  std::printf("Invariants (pair coverage, per-round exclusivity, JIT "
              "allocation): %s\n",
              valid.ToString().c_str());
  std::printf(
      "Rounds: %zu (paper: 11). Per-pair amount: 1/%d of the database.\n",
      schedule->rounds.size(),
      static_cast<int>(1.0 / schedule->per_pair_fraction + 0.5));

  // Also show the symmetric scale-in, and a case-1 and case-2 move.
  for (const auto& [b, a] : {std::pair<int, int>{14, 3}, {3, 5}, {3, 9}}) {
    StatusOr<MigrationSchedule> other = BuildMigrationSchedule(NodeCount(b), NodeCount(a));
    if (other.ok()) {
      std::printf("\n%s", other->ToString().c_str());
    }
  }
  return 0;
}
