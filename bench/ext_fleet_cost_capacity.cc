// Extension: fleet packing vs dedicated per-tenant clusters, swept over
// fleet sizes from 100 to 1000 tenants (mixed B2W / Wikipedia / YCSB /
// step workloads). The consolidation claim: a shared pool packed from
// per-tenant forecasts serves the same tenants at the same or better
// SLA outcomes for a fraction of the dedicated machine-hours, because
// uncorrelated peaks share headroom and sub-machine tenants share
// machines.
//
// Per-tenant forecasting and trace building fan out on --threads N
// workers (default: hardware concurrency); every number is identical
// for any thread count.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/flags.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "fleet/fleet_simulator.h"
#include "fleet/tenant.h"
#include "obs/metrics_registry.h"

namespace {

using namespace pstore;
using namespace pstore::fleet;

constexpr int kDays = 3;  // 1 warmup day + 2 evaluated days

FleetSimulator MakeSimulator(int tenants) {
  TenantMixOptions mix;
  mix.wikipedia_tenants = tenants / 5;
  mix.ycsb_tenants = tenants / 5;
  mix.step_tenants = tenants / 5;
  mix.b2w_tenants =
      tenants - mix.wikipedia_tenants - mix.ycsb_tenants - mix.step_tenants;
  mix.days = kDays;
  mix.seed = 17;

  FleetOptions options;
  options.eval_begin = 1440;  // warmup day, per-minute fine slots
  return FleetSimulator(options, MakeTenantMix(mix));
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  PSTORE_CHECK_OK(flags.Parse(argc - 1, argv + 1));
  const StatusOr<int64_t> threads = flags.GetInt("threads", 0);
  PSTORE_CHECK_OK(threads.status());

  bench::PrintHeader(
      "Extension: fleet packing vs dedicated clusters, 100-1000 tenants",
      "shared-pool machine-hours a fraction of dedicated at equal-or-"
      "better per-tenant SLA outcomes");

  ThreadPool pool(ResolveThreadCount(*threads));
  std::printf("(running on %d thread(s))\n\n", pool.thread_count());

  auto csv = bench::OpenCsv("ext_fleet_cost_capacity.csv");
  if (csv) {
    csv->WriteRow({"tenants", "mode", "machine_hours", "peak_machines",
                   "violation_fraction", "tenants_violating_sla",
                   "partition_moves"});
  }
  obs::MetricsRegistry registry;

  std::printf("%8s %-10s %14s %14s %12s %10s\n", "tenants", "mode",
              "machine-hours", "peak machines", "violation %", "SLA miss");
  for (const int tenants : {100, 250, 500, 1000}) {
    FleetSimulator simulator = MakeSimulator(tenants);
    const double fine_seconds = simulator.options().fine_slot_seconds;
    double fleet_hours = 0.0;
    double dedicated_hours = 0.0;
    for (const FleetMode mode : {FleetMode::kFleet, FleetMode::kDedicated}) {
      const StatusOr<FleetResult> result = simulator.Simulate(mode, &pool);
      PSTORE_CHECK_OK(result.status());
      const double hours =
          (result->machine_slots + result->move_machine_slots) *
          fine_seconds / 3600.0;
      if (mode == FleetMode::kFleet) {
        fleet_hours = hours;
      } else {
        dedicated_hours = hours;
      }
      std::printf("%8d %-10s %14.0f %14d %12.4f %10d\n", tenants,
                  FleetModeName(mode), hours, result->peak_machines,
                  100.0 * result->tenant_violation_fraction,
                  result->tenants_violating_sla);
      if (csv) {
        csv->WriteRow({std::to_string(tenants), FleetModeName(mode),
                       std::to_string(hours),
                       std::to_string(result->peak_machines),
                       std::to_string(result->tenant_violation_fraction),
                       std::to_string(result->tenants_violating_sla),
                       std::to_string(result->partition_moves)});
      }
      const std::string prefix = "fleet." + std::to_string(tenants) + "." +
                                 FleetModeName(result->mode) + ".";
      registry.GetGauge(prefix + "machine_hours")->Set(hours);
      registry.GetGauge(prefix + "violation_fraction")
          ->Set(result->tenant_violation_fraction);
      registry.GetGauge(prefix + "peak_machines")
          ->Set(result->peak_machines);
      registry.GetCounter(prefix + "tenants_violating_sla")
          ->Increment(result->tenants_violating_sla);
    }
    std::printf("%8s %-10s %13.1fx consolidation\n", "", "",
                dedicated_hours / fleet_hours);
  }

  std::printf(
      "\nShape check: fleet machine-hours stay well below dedicated at "
      "every size (sub-machine tenants share machines; uncorrelated "
      "peaks share headroom) with no extra SLA-violating tenants.\n");
  bench::CloseCsv(csv.get());

  const std::string bench_json =
      flags.GetString("bench-json", "BENCH_ext_fleet.json");
  PSTORE_CHECK_OK(registry.WriteJson(bench_json));
  std::printf("Metrics: %s\n", bench_json.c_str());
  return 0;
}
