// Figure 13: actual load vs. the effective capacity of three allocation
// strategies over two 4-day windows — ordinary days (left) and the
// Black-Friday window (right). The Simple time-of-day schedule looks
// fine on ordinary days but breaks when the pattern deviates; Static
// wastes capacity at night and still drowns on Black Friday; P-Store
// tracks the load in both, combining predictive and reactive behaviour.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/flags.h"
#include "common/status.h"
#include "common/time_series.h"
#include "prediction/spar_model.h"
#include "sim/capacity_simulator.h"
#include "sim/run_spec.h"
#include "trace/b2w_trace_generator.h"

namespace {

using namespace pstore;

constexpr int kDays = 77;
constexpr int kTrainDays = 28;
constexpr int kBlackFriday = 70;

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  PSTORE_CHECK_OK(flags.Parse(argc - 1, argv + 1));
  const StatusOr<int64_t> threads = flags.GetInt("threads", 0);
  PSTORE_CHECK_OK(threads.status());

  bench::PrintHeader(
      "Figure 13: load vs effective capacity on ordinary days and around "
      "Black Friday",
      "Simple works until the pattern deviates; P-Store handles the "
      "Black-Friday surge via predictive + reactive techniques");

  B2wTraceOptions trace_options;
  trace_options.days = kDays;
  trace_options.seed = 42;
  trace_options.peak_requests_per_min = 10500.0;
  trace_options.black_friday_day = kBlackFriday;
  const TimeSeries trace =
      GenerateB2wTrace(trace_options).Scaled(10.0 / 60.0);
  const TimeSeries coarse = trace.DownsampleMean(5);

  SimOptions options;
  options.plan_slot_factor = 5;
  options.horizon_plan_slots = 36;
  options.q = 285.0;
  options.q_hat = 350.0;
  options.d_fine_slots = 77.0;
  options.partitions_per_node = 6;
  options.initial_nodes = 4;
  options.max_nodes = 60;
  options.eval_begin = kTrainDays * 1440;

  SparOptions spar_options;
  spar_options.period = 1440 / 5;
  spar_options.num_periods = 7;
  spar_options.num_recent = 6;
  spar_options.max_tau = 36;
  SparPredictor spar(spar_options);
  PSTORE_CHECK_OK(spar.Fit(coarse.Slice(0, kTrainDays * 288)));

  // The three strategies are independent RunSpecs over the same borrowed
  // trace, evaluated concurrently (--threads N); results come back by
  // spec index.
  RunSpec base;
  base.workload.kind = WorkloadSpec::Kind::kProvided;
  base.workload.provided = &trace;
  base.sim = options;

  RunSpec pstore_spec = base;
  pstore_spec.label = "P-Store";
  pstore_spec.strategy = Strategy::kPredictive;
  pstore_spec.predictor = &spar;

  RunSpec simple_spec = base;
  simple_spec.label = "Simple";
  simple_spec.strategy = Strategy::kSimple;
  simple_spec.simple.day_nodes = 10;
  simple_spec.simple.night_nodes = 3;

  RunSpec static_spec = base;
  static_spec.label = "Static";
  static_spec.strategy = Strategy::kStatic;
  static_spec.static_nodes = 10;

  SweepOptions sweep_options;
  sweep_options.threads = static_cast<int>(*threads);
  const StatusOr<SweepResult> sweep =
      RunSweep({pstore_spec, simple_spec, static_spec}, sweep_options);
  PSTORE_CHECK_OK(sweep.status());
  const SimResult& pstore = sweep->results[0];
  const SimResult& simple = sweep->results[1];
  const SimResult& fixed = sweep->results[2];

  // Two 4-day windows, in fine slots relative to eval_begin.
  const size_t ordinary_begin = (40 - kTrainDays) * 1440;
  const size_t bf_begin = (kBlackFriday - 2 - kTrainDays) * 1440;
  const double norm = trace.Max();  // normalize like the paper's y-axis

  auto csv = bench::OpenCsv("fig13_black_friday.csv");
  if (csv) {
    csv->WriteRow({"window", "hour", "load", "pstore_cap", "simple_cap",
                   "static_cap"});
  }

  struct Window {
    const char* name;
    size_t begin;
  };
  const Window windows[] = {{"ordinary", ordinary_begin},
                            {"black_friday", bf_begin}};
  for (const Window& window : windows) {
    std::printf("\n%s window (4 days, hourly, values normalized to the "
                "trace peak):\n",
                window.name);
    std::printf("%6s %8s %10s %10s %10s\n", "hour", "load", "P-Store",
                "Simple", "Static");
    double pstore_deficit = 0.0;
    double simple_deficit = 0.0;
    double static_deficit = 0.0;
    for (size_t hour = 0; hour < 4 * 24; ++hour) {
      const size_t slot = window.begin + hour * 60;
      if (slot >= pstore.effective_capacity.size()) break;
      // Hourly max load vs min capacity: the conservative view.
      double load = 0.0;
      double pstore_cap = 1e18;
      double simple_cap = 1e18;
      double static_cap = 1e18;
      for (size_t i = slot; i < slot + 60; ++i) {
        load = std::max(load, trace[options.eval_begin + i]);
        pstore_cap = std::min(pstore_cap, pstore.effective_capacity[i]);
        simple_cap = std::min(simple_cap, simple.effective_capacity[i]);
        static_cap = std::min(static_cap, fixed.effective_capacity[i]);
        pstore_deficit +=
            std::max(0.0, trace[options.eval_begin + i] -
                              pstore.effective_capacity[i]);
        simple_deficit +=
            std::max(0.0, trace[options.eval_begin + i] -
                              simple.effective_capacity[i]);
        static_deficit +=
            std::max(0.0, trace[options.eval_begin + i] -
                              fixed.effective_capacity[i]);
      }
      if (csv) {
        csv->WriteRow({window.name, std::to_string(hour),
                       std::to_string(load / norm),
                       std::to_string(pstore_cap / norm),
                       std::to_string(simple_cap / norm),
                       std::to_string(static_cap / norm)});
      }
      if (hour % 6 == 0) {
        std::printf("%6zu %8.2f %10.2f %10.2f %10.2f\n", hour, load / norm,
                    pstore_cap / norm, simple_cap / norm, static_cap / norm);
      }
    }
    std::printf(
        "  capacity deficit (sum of load above capacity, txn/s-slots): "
        "P-Store %.0f, Simple %.0f, Static %.0f\n",
        pstore_deficit, simple_deficit, static_deficit);
  }
  std::printf(
      "\nShape check: on ordinary days all three look workable; in the "
      "Black-Friday window Simple and Static leave a large capacity "
      "deficit that P-Store avoids.\n");
  bench::CloseCsv(csv.get());
  return 0;
}
