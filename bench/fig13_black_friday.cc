// Figure 13: actual load vs. the effective capacity of three allocation
// strategies over two 4-day windows — ordinary days (left) and the
// Black-Friday window (right). The Simple time-of-day schedule looks
// fine on ordinary days but breaks when the pattern deviates; Static
// wastes capacity at night and still drowns on Black Friday; P-Store
// tracks the load in both, combining predictive and reactive behaviour.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/flags.h"
#include "common/status.h"
#include "common/time_series.h"
#include "prediction/backtest.h"
#include "prediction/predictor_spec.h"
#include "sim/capacity_simulator.h"
#include "sim/run_spec.h"
#include "trace/b2w_trace_generator.h"

namespace {

using namespace pstore;

constexpr int kDays = 77;
constexpr int kTrainDays = 28;
constexpr int kBlackFriday = 70;

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  PSTORE_CHECK_OK(flags.Parse(argc - 1, argv + 1));
  const StatusOr<int64_t> threads = flags.GetInt("threads", 0);
  PSTORE_CHECK_OK(threads.status());

  bench::PrintHeader(
      "Figure 13: load vs effective capacity on ordinary days and around "
      "Black Friday",
      "Simple works until the pattern deviates; P-Store handles the "
      "Black-Friday surge via predictive + reactive techniques");

  B2wTraceOptions trace_options;
  trace_options.days = kDays;
  trace_options.seed = 42;
  trace_options.peak_requests_per_min = 10500.0;
  trace_options.black_friday_day = kBlackFriday;
  const TimeSeries trace =
      GenerateB2wTrace(trace_options).Scaled(10.0 / 60.0);
  const TimeSeries coarse = trace.DownsampleMean(5);

  SimOptions options;
  options.plan_slot_factor = 5;
  options.horizon_plan_slots = 36;
  options.q = 285.0;
  options.q_hat = 350.0;
  options.d_fine_slots = 77.0;
  options.partitions_per_node = 6;
  options.initial_nodes = 4;
  options.max_nodes = 60;
  options.eval_begin = kTrainDays * 1440;

  // The three strategies are independent RunSpecs over the same borrowed
  // trace, evaluated concurrently (--threads N); results come back by
  // spec index. The predictive run materializes its SPAR from the spec
  // string (same numbers as the old inline SparPredictor: period 288,
  // n=7, m=6, max_tau = horizon, trained on the pre-eval prefix).
  RunSpec base;
  base.workload.kind = WorkloadSpec::Kind::kProvided;
  base.workload.provided = &trace;
  base.sim = options;

  RunSpec pstore_spec = base;
  pstore_spec.label = "P-Store";
  pstore_spec.strategy = Strategy::kPredictive;
  pstore_spec.predictor_spec = "spar(n=7,m=6)";

  RunSpec simple_spec = base;
  simple_spec.label = "Simple";
  simple_spec.strategy = Strategy::kSimple;
  simple_spec.simple.day_nodes = 10;
  simple_spec.simple.night_nodes = 3;

  RunSpec static_spec = base;
  static_spec.label = "Static";
  static_spec.strategy = Strategy::kStatic;
  static_spec.static_nodes = 10;

  SweepOptions sweep_options;
  sweep_options.threads = static_cast<int>(*threads);
  const StatusOr<SweepResult> sweep =
      RunSweep({pstore_spec, simple_spec, static_spec}, sweep_options);
  PSTORE_CHECK_OK(sweep.status());
  const SimResult& pstore = sweep->results[0];
  const SimResult& simple = sweep->results[1];
  const SimResult& fixed = sweep->results[2];

  // Two 4-day windows, in fine slots relative to eval_begin.
  const size_t ordinary_begin = (40 - kTrainDays) * 1440;
  const size_t bf_begin = (kBlackFriday - 2 - kTrainDays) * 1440;
  const double norm = trace.Max();  // normalize like the paper's y-axis

  auto csv = bench::OpenCsv("fig13_black_friday.csv");
  if (csv) {
    csv->WriteRow({"window", "hour", "load", "pstore_cap", "simple_cap",
                   "static_cap"});
  }

  struct Window {
    const char* name;
    size_t begin;
  };
  const Window windows[] = {{"ordinary", ordinary_begin},
                            {"black_friday", bf_begin}};
  for (const Window& window : windows) {
    std::printf("\n%s window (4 days, hourly, values normalized to the "
                "trace peak):\n",
                window.name);
    std::printf("%6s %8s %10s %10s %10s\n", "hour", "load", "P-Store",
                "Simple", "Static");
    double pstore_deficit = 0.0;
    double simple_deficit = 0.0;
    double static_deficit = 0.0;
    for (size_t hour = 0; hour < 4 * 24; ++hour) {
      const size_t slot = window.begin + hour * 60;
      if (slot >= pstore.effective_capacity.size()) break;
      // Hourly max load vs min capacity: the conservative view.
      double load = 0.0;
      double pstore_cap = 1e18;
      double simple_cap = 1e18;
      double static_cap = 1e18;
      for (size_t i = slot; i < slot + 60; ++i) {
        load = std::max(load, trace[options.eval_begin + i]);
        pstore_cap = std::min(pstore_cap, pstore.effective_capacity[i]);
        simple_cap = std::min(simple_cap, simple.effective_capacity[i]);
        static_cap = std::min(static_cap, fixed.effective_capacity[i]);
        pstore_deficit +=
            std::max(0.0, trace[options.eval_begin + i] -
                              pstore.effective_capacity[i]);
        simple_deficit +=
            std::max(0.0, trace[options.eval_begin + i] -
                              simple.effective_capacity[i]);
        static_deficit +=
            std::max(0.0, trace[options.eval_begin + i] -
                              fixed.effective_capacity[i]);
      }
      if (csv) {
        csv->WriteRow({window.name, std::to_string(hour),
                       std::to_string(load / norm),
                       std::to_string(pstore_cap / norm),
                       std::to_string(simple_cap / norm),
                       std::to_string(static_cap / norm)});
      }
      if (hour % 6 == 0) {
        std::printf("%6zu %8.2f %10.2f %10.2f %10.2f\n", hour, load / norm,
                    pstore_cap / norm, simple_cap / norm, static_cap / norm);
      }
    }
    std::printf(
        "  capacity deficit (sum of load above capacity, txn/s-slots): "
        "P-Store %.0f, Simple %.0f, Static %.0f\n",
        pstore_deficit, simple_deficit, static_deficit);
  }
  std::printf(
      "\nShape check: on ordinary days all three look workable; in the "
      "Black-Friday window Simple and Static leave a large capacity "
      "deficit that P-Store avoids.\n");
  bench::CloseCsv(csv.get());

  // ---- Shift acid test -----------------------------------------------
  // The Black-Friday surge is a regime shift: weekly-refit static models
  // go stale (day 70 lands just after a refit boundary, so none of them
  // has seen surge data), while the shift-aware wrapper re-fits on its
  // residual alarm and the ensemble re-selects toward whichever member
  // copes. Scored by the backtest harness on the coarse planning series;
  // the focus window is Black Friday plus two recovery days.
  const char kAcidSuite[] =
      "spar(n=7,m=6),ar(p=8),hw,mf(rank=4),"
      "shift(spar(n=7,m=6),window=72,min_mre=0.08,cooldown=288),"
      "shift(ar(p=8),window=72,min_mre=0.08,cooldown=288),"
      "ensemble(spar(n=7,m=6),hw,"
      "shift(ar(p=8),window=72,min_mre=0.08,cooldown=288),"
      "shift(spar(n=7,m=6),window=72,min_mre=0.08,cooldown=288),"
      "epoch=36,window=36)";
  const StatusOr<std::vector<PredictorSpec>> acid_specs =
      ParsePredictorSpecList(kAcidSuite);
  PSTORE_CHECK_OK(acid_specs.status());

  PredictorContext context;
  context.period = 288;
  context.max_tau = 36;

  BacktestOptions backtest_options;
  backtest_options.eval_begin = kTrainDays * 288;
  backtest_options.horizon = 12;            // 60 minutes of coarse slots
  backtest_options.refit_epoch = 7 * 288;   // weekly, like the controller
  backtest_options.focus_begin = kBlackFriday * 288;
  backtest_options.focus_end = (kBlackFriday + 3) * 288;
  backtest_options.threads = 4;

  const StatusOr<BacktestResult> acid =
      RunBacktest(*acid_specs, coarse, context, backtest_options);
  PSTORE_CHECK_OK(acid.status());

  std::printf(
      "\nShift acid test (post-shift MRE over Black Friday + 2 days, "
      "weekly re-fits):\n");
  std::printf("%-24s %12s %12s %8s\n", "model", "overall MRE%",
              "post-shift%", "updates");
  auto acid_csv = bench::OpenCsv("fig13_shift_acid.csv");
  if (acid_csv) {
    acid_csv->WriteRow({"model", "spec", "one_step_mre_pct",
                        "focus_mre_pct", "updates_changed"});
  }
  double best_static_focus = 1e18;
  double adaptive_focus = 1e18;
  for (const BacktestModelResult& model : acid->models) {
    if (!model.ok) {
      std::printf("%-24s FAILED: %s\n", model.model_name.c_str(),
                  model.error.c_str());
      continue;
    }
    std::printf("%-24s %12.2f %12.2f %8zu\n", model.model_name.c_str(),
                100.0 * model.one_step_mre, 100.0 * model.focus_mre,
                model.updates_changed);
    if (acid_csv) {
      acid_csv->WriteRow({model.model_name, model.spec,
                          std::to_string(100.0 * model.one_step_mre),
                          std::to_string(100.0 * model.focus_mre),
                          std::to_string(model.updates_changed)});
    }
    const bool adaptive = model.spec.rfind("shift", 0) == 0 ||
                          model.spec.rfind("ensemble", 0) == 0;
    if (adaptive) {
      adaptive_focus = std::min(adaptive_focus, model.focus_mre);
    } else {
      best_static_focus = std::min(best_static_focus, model.focus_mre);
    }
  }
  bench::CloseCsv(acid_csv.get());
  const bool acid_pass = adaptive_focus <= best_static_focus;
  std::printf(
      "\nShape check: best adaptive (shift-aware/ensemble) post-shift MRE "
      "%.2f%% %s best static %.2f%% — %s.\n",
      100.0 * adaptive_focus, acid_pass ? "<=" : ">",
      100.0 * best_static_focus, acid_pass ? "PASS" : "FAIL");
  return acid_pass ? 0 : 1;
}
