// Extension: end-to-end predictive provisioning on the *Wikipedia*
// workload. The paper only evaluates SPAR's prediction accuracy on
// Wikipedia (Fig. 6); here we close the loop and let P-Store provision a
// hypothetical wiki-serving cluster from those forecasts, against the
// usual baselines — checking that the approach generalizes beyond
// online retail (hourly slots, weaker periodicity, smaller peak/trough
// swing).

#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "common/status.h"
#include "common/time_series.h"
#include "prediction/spar_model.h"
#include "sim/capacity_simulator.h"
#include "trace/wikipedia_trace_generator.h"

namespace {

using namespace pstore;

// Convert page views/hour to a "requests per second"-style unit so the
// usual Q values make sense: 1e6 views/hour ~ 278 views/s; say each
// machine serves Q = 285 views/s.
TimeSeries WikiTrace(WikipediaEdition edition, int days) {
  WikipediaTraceOptions options;
  options.edition = edition;
  options.days = days;
  options.seed = 7;
  return GenerateWikipediaTrace(options).Scaled(1.0 / 3600.0);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Extension: P-Store provisioning the Wikipedia workloads",
      "beyond Fig. 6: the same pipeline (SPAR -> DP -> migration model) "
      "on an hourly, less periodic load");

  auto csv = bench::OpenCsv("ext_wikipedia_provisioning.csv");
  if (csv) {
    csv->WriteRow({"edition", "strategy", "cost_machine_hours",
                   "insufficient_percent", "reconfigurations"});
  }

  for (const auto& [edition, name] :
       {std::pair<WikipediaEdition, const char*>{WikipediaEdition::kEnglish,
                                                 "English"},
        {WikipediaEdition::kGerman, "German"}}) {
    const int days = 56;
    const int train_days = 28;
    const TimeSeries trace = WikiTrace(edition, days);

    SimOptions options;
    options.plan_slot_factor = 1;  // plan directly on hourly slots
    options.horizon_plan_slots = 12;
    options.q = 285.0;
    options.q_hat = 350.0;
    // D = 77 min = ~1.3 hourly slots.
    options.d_fine_slots = 77.0 / 60.0;
    options.partitions_per_node = 6;
    options.initial_nodes = 4;
    options.max_nodes = 40;
    options.eval_begin = static_cast<size_t>(train_days) * 24;
    const CapacitySimulator sim(options);

    SparOptions spar_options;
    spar_options.period = 24;
    spar_options.num_periods = 7;
    spar_options.num_recent = 6;
    spar_options.max_tau = options.horizon_plan_slots;
    SparPredictor spar(spar_options);
    PSTORE_CHECK_OK(spar.Fit(trace.Slice(0, train_days * 24)));

    const int peak_nodes =
        static_cast<int>(trace.Max() / options.q_hat) + 1;
    StatusOr<SimResult> pstore = sim.RunPredictive(trace, spar);
    StatusOr<SimResult> reactive = sim.RunReactive(trace, ReactiveSimParams{});
    StatusOr<SimResult> fixed = sim.RunStatic(trace, peak_nodes);
    PSTORE_CHECK_OK(pstore.status());
    PSTORE_CHECK_OK(reactive.status());
    PSTORE_CHECK_OK(fixed.status());

    std::printf("\n%s Wikipedia (peak %.0f views/s, static needs %d "
                "machines):\n",
                name, trace.Max(), peak_nodes);
    std::printf("  %-18s %16s %16s %14s\n", "strategy", "machine-hours",
                "insufficient %%", "reconfigs");
    struct Row {
      const char* label;
      const SimResult* result;
    };
    const Row rows[] = {{"P-Store (SPAR)", &*pstore},
                        {"Reactive", &*reactive},
                        {"Static-peak", &*fixed}};
    for (const Row& row : rows) {
      std::printf("  %-18s %16.0f %16.3f %14d\n", row.label,
                  row.result->machine_slots,  // hourly slots = hours
                  100.0 * row.result->insufficient_fraction,
                  row.result->reconfigurations);
      if (csv) {
        csv->WriteRow({name, row.label,
                       std::to_string(row.result->machine_slots),
                       std::to_string(100.0 *
                                      row.result->insufficient_fraction),
                       std::to_string(row.result->reconfigurations)});
      }
    }
  }
  std::printf(
      "\nReading: the wiki swing is much smaller than retail's 10x, so "
      "the absolute savings shrink, but P-Store still undercuts static "
      "peak provisioning at near-zero under-capacity time on both "
      "editions — the pipeline is not retail-specific.\n");
  bench::CloseCsv(csv.get());
  return 0;
}
