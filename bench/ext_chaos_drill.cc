// Extension: chaos drill on the Black-Friday replay. Runs the engine
// through the Black-Friday surge twice — once clean and once with a node
// crashing mid-scale-out (recovering ten trace-minutes later) — and
// reports what the fault cost: chunk retries and failed/repeated
// reconfigurations, transactions failed fast as unavailable, the time
// until the SLA was restored after the crash, and the violation windows
// attributed to the fault vs. ordinary migration overhead vs. baseline
// capacity shortfall.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"

namespace {

using namespace pstore;

constexpr int kTrainingDays = 28;
constexpr int kReplayDays = 2;
// Black Friday is the second replayed day.
constexpr int kBlackFridayDay = kTrainingDays + 1;
// Crash at 10:00 of the Black-Friday morning ramp (replay seconds: one
// full day plus 600 trace minutes at 6 s each), while the controller's
// scale-out toward the afternoon peak is in flight; recover 10 trace
// minutes later.
constexpr double kCrashSeconds = (1440.0 + 600.0) * 6.0;
constexpr double kRecoverSeconds = kCrashSeconds + 600.0;
constexpr int kCrashNode = 5;

// Seconds from the crash until service is fully restored: the end of
// the last window at or after the crash (and before `until`) in which
// clients either saw unavailability errors or a p99 SLA violation.
// 0 when the crash had no client-visible impact.
double RestoredAfterSeconds(const std::vector<WindowStats>& windows,
                            double until) {
  double last_impact = kCrashSeconds;
  for (const WindowStats& w : windows) {
    if (w.start_seconds < kCrashSeconds || w.start_seconds >= until) continue;
    const bool violated = w.completed > 0 && w.p99_ms > 500.0;
    if (w.unavailable > 0 || violated) {
      last_impact = std::max(last_impact, w.start_seconds + 1.0);
    }
  }
  return last_impact - kCrashSeconds;
}

// Windows with at least one unavailability error (the latency
// percentiles never see fast-failed transactions, so availability is
// accounted separately).
int64_t UnavailableWindows(const std::vector<WindowStats>& windows) {
  int64_t n = 0;
  for (const WindowStats& w : windows) {
    if (w.unavailable > 0) ++n;
  }
  return n;
}

void PrintRun(const char* label, const bench::EngineRunResult& run) {
  std::printf("%-16s viol(p50/p95/p99)=%4lld /%5lld /%5lld  "
              "avg machines=%5.2f  reconfigs=%2d (+%d failed)  "
              "chunk retries=%3lld  unavailable=%lld\n",
              label, static_cast<long long>(run.violations.p50),
              static_cast<long long>(run.violations.p95),
              static_cast<long long>(run.violations.p99), run.avg_machines,
              run.reconfigurations, run.failed_reconfigurations,
              static_cast<long long>(run.chunk_retries),
              static_cast<long long>(run.unavailable));
  std::printf("%-16s p99 violations by attribution: fault=%lld "
              "migration=%lld baseline=%lld\n",
              "", static_cast<long long>(run.attribution.during_fault.p99),
              static_cast<long long>(run.attribution.during_migration.p99),
              static_cast<long long>(run.attribution.baseline.p99));
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Extension: chaos drill — node crash mid-scale-out on Black Friday",
      "recovery is bounded: chunk retries + a controller re-plan restore "
      "the SLA; violations under the fault are attributed to it");

  bench::EngineRunConfig config;
  config.spec.label = "chaos-drill";
  config.spec.strategy = Strategy::kPredictive;
  config.training_days = kTrainingDays;
  config.replay_days = kReplayDays;
  config.black_friday_day = kBlackFridayDay;
  config.nodes = 4;
  config.scale = 0.5;

  std::printf("\nClean Black-Friday replay (no faults):\n");
  const bench::EngineRunResult clean = bench::RunEngineExperiment(config);
  PrintRun("clean", clean);

  std::printf("\nSame replay, node %d crashes at t=%.0fs (BF 10:00), "
              "recovers at t=%.0fs:\n",
              kCrashNode, kCrashSeconds, kRecoverSeconds);
  FaultEvent crash;
  crash.at = FromSeconds(kCrashSeconds);
  crash.kind = FaultKind::kNodeCrash;
  crash.node = kCrashNode;
  FaultEvent recover = crash;
  recover.at = FromSeconds(kRecoverSeconds);
  recover.kind = FaultKind::kNodeRecover;
  config.faults = {crash, recover};
  const bench::EngineRunResult faulted = bench::RunEngineExperiment(config);
  PrintRun("crash+recover", faulted);

  // Only look 30 trace minutes past the recovery for residual impact;
  // later violations (the Black-Friday afternoon peak) happen in the
  // clean run too and are not the crash's doing.
  const double horizon = kRecoverSeconds + 1800.0;
  const double restored = RestoredAfterSeconds(faulted.windows, horizon);
  std::printf("\nservice restored %.0f s after the crash (outage was %.0f "
              "s; clean-run reference: %.0f s)\n",
              restored, kRecoverSeconds - kCrashSeconds,
              RestoredAfterSeconds(clean.windows, horizon));
  std::printf("fault cost: %lld unavailable txns over %lld windows, "
              "%lld chunk retries, %d aborted reconfigurations "
              "(controller re-planned each)\n",
              static_cast<long long>(faulted.unavailable),
              static_cast<long long>(UnavailableWindows(faulted.windows)),
              static_cast<long long>(faulted.chunk_retries),
              faulted.failed_reconfigurations);
  PSTORE_CHECK(faulted.chunk_retries > 0);   // the crash hit a migration
  PSTORE_CHECK(restored >= kRecoverSeconds - kCrashSeconds);
  PSTORE_CHECK(restored <= horizon - kCrashSeconds);

  // Per-second trace around the crash, for plotting.
  auto csv = bench::OpenCsv("ext_chaos_drill.csv");
  if (csv) {
    csv->WriteRow({"seconds", "p99_ms", "unavailable", "machines",
                   "migrating", "fault"});
    for (const WindowStats& w : faulted.windows) {
      if (w.start_seconds < kCrashSeconds - 600.0 ||
          w.start_seconds > kRecoverSeconds + 1800.0) {
        continue;
      }
      csv->WriteRow({std::to_string(w.start_seconds),
                     std::to_string(w.p99_ms),
                     std::to_string(w.unavailable),
                     std::to_string(w.machines),
                     std::to_string(w.migrating ? 1 : 0),
                     std::to_string(w.fault ? 1 : 0)});
    }
  }
  bench::CloseCsv(csv.get());
  return 0;
}
