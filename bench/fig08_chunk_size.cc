// Figure 8: 50th/99th percentile latency while reconfiguring 1 -> 2
// machines with different migration chunk sizes, with the per-machine
// rate pinned at Q-hat. Small chunks barely disturb latency; larger
// chunks migrate faster but spike the tail. The 1000 kB setting defines
// the paper's D (~77 minutes for the full database).

#include <algorithm>
#include <cstdio>
#include <functional>
#include <vector>

#include "common/histogram.h"

#include "b2w/procedures.h"
#include "b2w/workload.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/strong_id.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/metrics.h"
#include "engine/txn_executor.h"
#include "engine/workload_driver.h"
#include "migration/squall_migrator.h"

namespace {

using namespace pstore;

struct ChunkResult {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_p99_ms = 0.0;
  double migration_seconds = 0.0;
  int violation_windows = 0;  // seconds with p99 > 500 ms
};

// Runs 1 -> 2 with the given chunk size at per-node rate Q-hat; the
// total offered rate keeps the source machine at Q-hat as data drains.
ChunkResult RunChunkExperiment(int64_t chunk_bytes, bool migrate) {
  ClusterOptions cluster_options;
  cluster_options.partitions_per_node = 6;
  cluster_options.max_nodes = 2;
  cluster_options.initial_nodes = 1;
  cluster_options.num_buckets = 1200;
  Cluster cluster(cluster_options);
  MetricsCollector metrics(1.0);
  TxnExecutor executor(&cluster, &metrics, ExecutorOptions{});
  PSTORE_CHECK_OK(b2w::RegisterProcedures(&executor));

  b2w::B2wWorkloadOptions workload_options;
  workload_options.cart_pool = 30000;   // ~110 MB: keeps runs quick
  workload_options.checkout_pool = 12000;
  b2w::Workload workload(workload_options);
  PSTORE_CHECK_OK(workload.LoadInitialData(&cluster));

  EventLoop loop;
  MigrationOptions migration_options;
  migration_options.net_rate_bytes_per_sec = 500e3;
  migration_options.chunk_spacing_seconds = 2.0;
  migration_options.chunk_bytes = chunk_bytes;
  migration_options.extract_rate_bytes_per_sec = 20e6;
  MigrationManager migration(&loop, &cluster, &metrics, migration_options);

  // Offered load: Q-hat per *source* machine. As data moves, the source
  // sheds load; the total rises so the source stays pinned (paper:
  // "total throughput varies so per-machine throughput is fixed at
  // Q-hat"). For 1 -> 2, the source's share is 1 - FractionMoved/2.
  SimTime migration_end = 0;
  if (migrate) {
    PSTORE_CHECK_OK(migration.StartReconfiguration(
        NodeCount(2), 1.0, [&](const Status&) { migration_end = loop.now(); }));
  }
  const SimTime end = FromSeconds(240.0);
  Rng rng(5);
  std::function<void()> tick = [&] {
    const SimTime tick_start = loop.now();
    if (tick_start >= end) return;
    const double moved = migration.InProgress()
                             ? migration.FractionMoved()
                             : (migrate && migration_end > 0 ? 1.0 : 0.0);
    const double source_share = 1.0 - 0.5 * moved;
    const double rate = 350.0 / source_share;
    SimTime t = tick_start + FromSeconds(rng.NextExponential(1.0 / rate));
    while (t < tick_start + kSecond && t < end) {
      executor.Submit(workload.NextTransaction(rng), t);
      t += FromSeconds(rng.NextExponential(1.0 / rate));
    }
    loop.ScheduleAt(tick_start + kSecond, tick);
  };
  loop.ScheduleAt(0, tick);
  loop.RunUntil(end);
  if (migrate && migration_end == 0) migration_end = end;

  const auto windows = metrics.Finalize(end);
  ChunkResult result;
  result.migration_seconds = migrate ? ToSeconds(migration_end) : 0.0;
  // Summarize only the windows while migration was running (or the
  // matching time range for the static baseline), skipping the first
  // few seconds of warmup.
  const size_t stats_end = migrate
                               ? static_cast<size_t>(result.migration_seconds)
                               : 120u;
  Histogram p50s;
  Histogram p99s;
  double max_p99 = 0.0;
  for (size_t w = 5; w < windows.size() && w < stats_end; ++w) {
    if (windows[w].completed == 0) continue;
    p50s.Record(static_cast<int64_t>(windows[w].p50_ms * 1000));
    p99s.Record(static_cast<int64_t>(windows[w].p99_ms * 1000));
    max_p99 = std::max(max_p99, windows[w].p99_ms);
    if (windows[w].p99_ms > 500.0) ++result.violation_windows;
  }
  result.p50_ms = static_cast<double>(p50s.ValueAtQuantile(0.5)) / 1000.0;
  result.p99_ms = static_cast<double>(p99s.ValueAtQuantile(0.5)) / 1000.0;
  result.max_p99_ms = max_p99;
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 8: latency vs migration chunk size at per-machine Q-hat",
      "1000 kB chunks ~ static latency; larger chunks finish faster but "
      "spike p99; paper derives D = 77 min from the 1000 kB run");

  auto csv = bench::OpenCsv("fig08_chunk_size.csv");
  if (csv) {
    csv->WriteRow({"config", "median_p50_ms", "median_p99_ms", "max_p99_ms",
                   "migration_s"});
  }

  std::printf("%-10s %12s %12s %12s %10s %14s\n", "config", "p50(ms)",
              "p99(ms)", "max p99(ms)", "viol(s)", "migration(s)");
  const ChunkResult baseline = RunChunkExperiment(1000 * 1000, false);
  std::printf("%-10s %12.1f %12.1f %12.1f %10d %14s\n", "static",
              baseline.p50_ms, baseline.p99_ms, baseline.max_p99_ms,
              baseline.violation_windows, "-");
  if (csv) {
    csv->WriteRow({"static", std::to_string(baseline.p50_ms),
                   std::to_string(baseline.p99_ms),
                   std::to_string(baseline.max_p99_ms), "0"});
  }
  for (const int64_t chunk_kb : {1000, 2000, 4000, 6000, 8000}) {
    const ChunkResult result = RunChunkExperiment(chunk_kb * 1000, true);
    char label[32];
    std::snprintf(label, sizeof(label), "%lld kB",
                  static_cast<long long>(chunk_kb));
    std::printf("%-10s %12.1f %12.1f %12.1f %10d %14.0f\n", label,
                result.p50_ms, result.p99_ms, result.max_p99_ms,
                result.violation_windows, result.migration_seconds);
    if (csv) {
      csv->WriteRow({label, std::to_string(result.p50_ms),
                     std::to_string(result.p99_ms),
                     std::to_string(result.max_p99_ms),
                     std::to_string(result.migration_seconds)});
    }
  }
  std::printf(
      "\nShape check: p99 grows with chunk size while migration time "
      "shrinks — the Fig. 8 tradeoff. With 1000 kB chunks the sustained "
      "pair rate is ~250 kB/s, so the full 1.1 GB database would take "
      "~74 min to move single-threaded (paper: 77 min incl. buffer).\n");
  bench::CloseCsv(csv.get());
  return 0;
}
