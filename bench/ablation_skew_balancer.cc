// Ablation / future-work extension (§10: "future work should
// investigate combining these ideas"): P-Store's planner assumes the
// hashed workload stays uniform across partitions (§4.2). Under Zipfian
// key popularity that assumption erodes; the E-Store-style hot-spot
// balancer restores it by relocating hot buckets. This bench measures
// tail latency on a skewed YCSB workload with and without balancing.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/time_series.h"
#include "controller/load_balancer.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/metrics.h"
#include "engine/txn_executor.h"
#include "engine/workload_driver.h"
#include "migration/squall_migrator.h"
#include "ycsb/ycsb_workload.h"

namespace {

using namespace pstore;

struct SkewResult {
  double p99_ms = 0.0;        // median of per-second p99 after warmup
  double worst_p99_ms = 0.0;
  int64_t buckets_moved = 0;
  double imbalance = 1.0;
};

SkewResult RunSkewed(double theta, bool balance, double rate) {
  ClusterOptions cluster_options;
  cluster_options.partitions_per_node = 6;
  cluster_options.max_nodes = 2;
  cluster_options.initial_nodes = 2;
  cluster_options.num_buckets = 1200;
  Cluster cluster(cluster_options);
  MetricsCollector metrics(1.0);
  TxnExecutor executor(&cluster, &metrics, ExecutorOptions{});
  PSTORE_CHECK_OK(ycsb::Workload::RegisterProcedures(&executor));
  ycsb::YcsbWorkloadOptions workload_options;
  workload_options.record_count = 200000;
  workload_options.zipf_theta = theta;
  workload_options.mix = ycsb::Mix::kB;
  ycsb::Workload workload(workload_options);
  PSTORE_CHECK_OK(workload.LoadInitialData(&cluster));

  EventLoop loop;
  MigrationOptions migration_options;
  MigrationManager migration(&loop, &cluster, &metrics, migration_options);
  std::unique_ptr<HotSpotBalancer> balancer;
  if (balance) {
    LoadBalancerOptions options;
    options.slot_sim_seconds = 1.0;
    options.sample_slots = 10;
    balancer = std::make_unique<HotSpotBalancer>(&loop, &cluster,
                                                 &migration, options);
    balancer->Start();
  }

  TimeSeries flat(1.0, std::vector<double>(600, rate));
  DriverOptions driver_options;
  driver_options.slot_sim_seconds = 1.0;
  driver_options.rate_factor = 1.0;
  driver_options.seed = 4;
  WorkloadDriver driver(
      &loop, &executor, flat,
      [&workload](Rng& rng) { return workload.NextTransaction(rng); },
      driver_options);
  const SimTime end = FromSeconds(600.0);
  driver.Start(end);
  loop.RunUntil(end);

  SkewResult result;
  int64_t max_accesses = 0;
  int64_t total = 0;
  for (int p = 0; p < cluster.total_active_partitions(); ++p) {
    const int64_t a = cluster.partition(p).TotalAccesses();
    max_accesses = std::max(max_accesses, a);
    total += a;
  }
  if (total > 0) {
    result.imbalance = static_cast<double>(max_accesses) /
                       (static_cast<double>(total) /
                        cluster.total_active_partitions());
  }
  result.buckets_moved = balancer ? balancer->buckets_moved() : 0;
  const auto windows = metrics.Finalize(end);
  std::vector<double> p99s;
  for (size_t w = 120; w < windows.size(); ++w) {  // skip warm-up
    if (windows[w].completed == 0) continue;
    p99s.push_back(windows[w].p99_ms);
    result.worst_p99_ms = std::max(result.worst_p99_ms, windows[w].p99_ms);
  }
  std::sort(p99s.begin(), p99s.end());
  if (!p99s.empty()) result.p99_ms = p99s[p99s.size() / 2];
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Extension: hot-spot balancing under Zipfian skew (YCSB-B, 2 nodes)",
      "paper §10 future work: predictive provisioning + E-Store-style "
      "skew management");

  auto csv = bench::OpenCsv("ablation_skew_balancer.csv");
  if (csv) {
    csv->WriteRow({"theta", "balancer", "median_p99_ms", "worst_p99_ms",
                   "imbalance", "buckets_moved"});
  }
  std::printf("%8s %10s %14s %14s %12s %14s\n", "theta", "balancer",
              "median p99", "worst p99", "imbalance", "buckets moved");
  const double rate = 560.0;  // ~0.8 of two nodes' saturation, uniform
  for (const double theta : {0.0, 0.8, 1.1}) {
    for (const bool balance : {false, true}) {
      const SkewResult result = RunSkewed(theta, balance, rate);
      std::printf("%8.1f %10s %14.1f %14.1f %12.2f %14lld\n", theta,
                  balance ? "on" : "off", result.p99_ms,
                  result.worst_p99_ms, result.imbalance,
                  static_cast<long long>(result.buckets_moved));
      if (csv) {
        csv->WriteRow({std::to_string(theta), balance ? "on" : "off",
                       std::to_string(result.p99_ms),
                       std::to_string(result.worst_p99_ms),
                       std::to_string(result.imbalance),
                       std::to_string(result.buckets_moved)});
      }
    }
  }
  std::printf(
      "\nReading: at theta = 0 the balancer stays idle (hashing already "
      "smooths the load, §8.1); as skew grows, tail latency without "
      "balancing degrades while the balancer holds it near the uniform "
      "level by relocating hot buckets.\n");
  bench::CloseCsv(csv.get());
  return 0;
}
