// §5 in-text comparison: at tau = 60 minutes on the B2W load, the MRE is
// 10.4% for SPAR, 12.2% for ARMA, and 12.5% for AR — AR-based models all
// work, but SPAR is the most accurate.

#include <cstdio>

#include "bench_util.h"
#include "common/status.h"
#include "common/time_series.h"
#include "prediction/ar_model.h"
#include "prediction/arma_model.h"
#include "prediction/holt_winters.h"
#include "prediction/naive_models.h"
#include "prediction/predictor.h"
#include "prediction/spar_model.h"
#include "trace/b2w_trace_generator.h"

int main() {
  using namespace pstore;
  bench::PrintHeader(
      "In-text (§5): SPAR vs ARMA vs AR at tau = 60 min on B2W",
      "MRE 10.4% (SPAR) < 12.2% (ARMA) < 12.5% (AR)");

  B2wTraceOptions trace_options;
  trace_options.days = 30;
  trace_options.seed = 42;
  const TimeSeries trace = GenerateB2wTrace(trace_options);
  const size_t train_end = 28 * 1440;
  const TimeSeries training = trace.Slice(0, train_end);

  SparOptions spar_options;
  spar_options.period = 1440;
  spar_options.num_periods = 7;
  spar_options.num_recent = 30;
  spar_options.max_tau = 60;
  SparPredictor spar(spar_options);

  ArmaOptions arma_options;
  arma_options.ar_order = 30;
  arma_options.ma_order = 10;
  arma_options.long_ar_order = 60;
  ArmaPredictor arma(arma_options);

  ArOptions ar_options;
  ar_options.order = 30;
  ArPredictor ar(ar_options);

  HoltWintersOptions hw_options;
  hw_options.period = 1440;
  HoltWintersPredictor holt_winters(hw_options);

  SeasonalNaivePredictor naive(1440);

  auto csv = bench::OpenCsv("text_model_comparison.csv");
  if (csv) csv->WriteRow({"model", "mre_percent", "mae", "rmse"});

  std::printf("%-16s %10s %12s %12s\n", "model", "MRE %%", "MAE", "RMSE");
  LoadPredictor* models[] = {&spar, &arma, &ar, &holt_winters, &naive};
  for (LoadPredictor* model : models) {
    const Status fit = model->Fit(training);
    if (!fit.ok()) {
      std::printf("%-16s fit failed: %s\n", model->name().c_str(),
                  fit.ToString().c_str());
      continue;
    }
    const StatusOr<EvaluationResult> eval =
        EvaluatePredictor(*model, trace, train_end, 60);
    if (!eval.ok()) {
      std::printf("%-16s eval failed: %s\n", model->name().c_str(),
                  eval.status().ToString().c_str());
      continue;
    }
    std::printf("%-16s %10.2f %12.0f %12.0f\n", model->name().c_str(),
                100.0 * eval->mre, eval->mae, eval->rmse);
    if (csv) {
      csv->WriteRow({model->name(), std::to_string(100.0 * eval->mre),
                     std::to_string(eval->mae), std::to_string(eval->rmse)});
    }
  }
  std::printf(
      "\nShape check: SPAR < ARMA/AR in MRE, with all AR-family models "
      "workable — the paper's ordering.\n");
  bench::CloseCsv(csv.get());
  return 0;
}
