// §5 in-text comparison, v2: the full predictor suite scored by the
// walk-forward backtest harness on both evaluation loads. The paper's
// in-text numbers (at tau = 60 minutes on B2W: MRE 10.4% for SPAR,
// 12.2% for ARMA, 12.5% for AR — AR-family models all work, SPAR is the
// most accurate) anchor the ordering; the suite adds Holt-Winters, the
// shift-aware wrapper, the matrix-factorization model, and the
// auto-selecting ensemble, each scored on rolling one-step and
// horizon-tau MAE/MRE with daily re-fits — the same online regime the
// controller runs.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/status.h"
#include "common/time_series.h"
#include "prediction/backtest.h"
#include "prediction/predictor_spec.h"
#include "trace/b2w_trace_generator.h"
#include "trace/wikipedia_trace_generator.h"

namespace {

using namespace pstore;

// One comma list covers the whole suite; ParsePredictorSpecList is the
// same grammar the tools' --predictor flag accepts.
const char kSuite[] =
    "spar(n=7,m=6),ar(p=8),arma(p=8,q=4),hw,shift(spar(n=7,m=6)),"
    "mf(rank=4),ensemble(spar,ar,hw)";

void RunSuite(const char* label, const TimeSeries& series,
              size_t period_slots, size_t eval_begin, size_t horizon,
              size_t refit_epoch, CsvWriter* csv) {
  const StatusOr<std::vector<PredictorSpec>> specs =
      ParsePredictorSpecList(kSuite);
  PSTORE_CHECK_OK(specs.status());

  PredictorContext context;
  context.period = period_slots;
  context.max_tau = horizon;

  BacktestOptions options;
  options.eval_begin = eval_begin;
  options.horizon = horizon;
  options.refit_epoch = refit_epoch;
  options.threads = 4;  // bit-identical for any thread count

  const StatusOr<BacktestResult> result =
      RunBacktest(*specs, series, context, options);
  PSTORE_CHECK_OK(result.status());

  std::printf("\n%s (%zu scored slots, horizon tau = %zu slots):\n", label,
              series.size() - eval_begin, horizon);
  std::printf("%-24s %5s %11s %12s %11s %12s %8s\n", "model", "rank",
              "1-step MRE%", "1-step MAE", "tau MRE%", "tau MAE",
              "updates");
  for (const BacktestModelResult& model : result->models) {
    if (!model.ok) {
      std::printf("%-24s FAILED: %s\n", model.model_name.c_str(),
                  model.error.c_str());
      continue;
    }
    std::printf("%-24s %5zu %11.2f %12.0f %11.2f %12.0f %8zu\n",
                model.model_name.c_str(), model.rank,
                100.0 * model.one_step_mre, model.one_step_mae,
                100.0 * model.horizon_mre, model.horizon_mae,
                model.updates_changed);
    if (csv != nullptr) {
      csv->WriteRow({label, model.spec, model.model_name,
                     std::to_string(model.rank),
                     std::to_string(100.0 * model.one_step_mre),
                     std::to_string(model.one_step_mae),
                     std::to_string(100.0 * model.horizon_mre),
                     std::to_string(model.horizon_mae),
                     std::to_string(model.updates_changed)});
    }
  }
}

}  // namespace

int main() {
  bench::PrintHeader(
      "In-text (§5): predictor suite at tau = 60 min on B2W + Wikipedia",
      "MRE 10.4% (SPAR) < 12.2% (ARMA) < 12.5% (AR); suite adds HW, "
      "shift-aware, MF, ensemble");

  auto csv = bench::OpenCsv("text_model_comparison.csv");
  if (csv) {
    csv->WriteRow({"trace", "spec", "model", "rank", "one_step_mre_pct",
                   "one_step_mae", "horizon_mre_pct", "horizon_mae",
                   "updates_changed"});
  }

  // B2W at the planner's 5-minute granularity: 28 training days, 2
  // evaluation days, tau = 60 min = 12 coarse slots, daily re-fits.
  B2wTraceOptions b2w_options;
  b2w_options.days = 30;
  b2w_options.seed = 42;
  const TimeSeries b2w = GenerateB2wTrace(b2w_options).DownsampleMean(5);
  RunSuite("b2w", b2w, 288, 28 * 288, 12, 288, csv.get());

  // Wikipedia (English) on hourly slots: 28 training days, 7 evaluation
  // days, tau = 6 hours, daily re-fits.
  WikipediaTraceOptions wiki_options;
  wiki_options.edition = WikipediaEdition::kEnglish;
  wiki_options.days = 35;
  wiki_options.seed = 7;
  const TimeSeries wiki = GenerateWikipediaTrace(wiki_options);
  RunSuite("wikipedia_en", wiki, 24, 28 * 24, 6, 24, csv.get());

  std::printf(
      "\nShape check: SPAR leads the AR family at the planning horizon "
      "(the paper's ordering); the ensemble tracks the best member.\n");
  bench::CloseCsv(csv.get());
  return 0;
}
